"""Ablation — in-memory block caching (§II / §VII extension).

The paper's model explicitly counts cached copies as locality
(``E_u = {D_x : stores or caches D_x}``).  Sweeps the per-node cache size
with cache-on-remote-read: once a hot pool file has been fetched, later
jobs find it resident, so locality rises for *both* managers and the two
converge — caching substitutes for allocation when memory is abundant,
while Custody's advantage is largest with no (or small) caches.
"""

from common import ablation_sweep, emit

from repro.common.units import GB
from repro.metrics.report import format_table

CACHE_SIZES = (0.0, 2 * GB, 8 * GB)
NUM_NODES = 50
WORKLOAD = "wordcount"


def run_sweep():
    return ablation_sweep(
        "cache_gb",
        CACHE_SIZES,
        lambda cache: {"cache_per_node": cache},
        workload=WORKLOAD,
        num_nodes=NUM_NODES,
        row_value=lambda cache: cache / GB,
        extra=("jct", "avg_jct"),
    )


def test_ablation_cache(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["cache/node (GB)", "spark loc%", "custody loc%", "spark JCT", "custody JCT"],
            [
                [
                    r["cache_gb"],
                    100 * r["standalone"],
                    100 * r["custody"],
                    r["standalone_jct"],
                    r["custody_jct"],
                ]
                for r in rows
            ],
            title=f"Ablation — block cache sweep ({WORKLOAD}, {NUM_NODES} nodes)",
        )
    )
    spark = [r["standalone"] for r in rows]
    custody = [r["custody"] for r in rows]
    # Caching raises the baseline's locality monotonically-ish...
    assert spark[-1] > spark[0]
    # ...Custody still dominates at every cache size...
    for r in rows:
        assert r["custody"] >= r["standalone"], r
    # ...and Custody's margin shrinks as memory substitutes for allocation.
    assert (custody[-1] - spark[-1]) <= (custody[0] - spark[0]) + 1e-9
