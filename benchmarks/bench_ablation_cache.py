"""Ablation — in-memory block caching (§II / §VII extension).

The paper's model explicitly counts cached copies as locality
(``E_u = {D_x : stores or caches D_x}``).  Sweeps the per-node cache size
with cache-on-remote-read: once a hot pool file has been fetched, later
jobs find it resident, so locality rises for *both* managers and the two
converge — caching substitutes for allocation when memory is abundant,
while Custody's advantage is largest with no (or small) caches.
"""

from common import cached_run, emit, paper_config

from repro.common.units import GB
from repro.metrics.report import format_table

CACHE_SIZES = (0.0, 2 * GB, 8 * GB)
NUM_NODES = 50
WORKLOAD = "wordcount"


def run_sweep():
    rows = []
    for cache in CACHE_SIZES:
        row = {"cache_gb": cache / GB}
        for manager in ("standalone", "custody"):
            config = paper_config(WORKLOAD, NUM_NODES, manager, cache_per_node=cache)
            metrics = cached_run(config).metrics
            row[manager] = metrics.locality_mean
            row[f"{manager}_jct"] = metrics.avg_jct
        rows.append(row)
    return rows


def test_ablation_cache(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["cache/node (GB)", "spark loc%", "custody loc%", "spark JCT", "custody JCT"],
            [
                [
                    r["cache_gb"],
                    100 * r["standalone"],
                    100 * r["custody"],
                    r["standalone_jct"],
                    r["custody_jct"],
                ]
                for r in rows
            ],
            title=f"Ablation — block cache sweep ({WORKLOAD}, {NUM_NODES} nodes)",
        )
    )
    spark = [r["standalone"] for r in rows]
    custody = [r["custody"] for r in rows]
    # Caching raises the baseline's locality monotonically-ish...
    assert spark[-1] > spark[0]
    # ...Custody still dominates at every cache size...
    for r in rows:
        assert r["custody"] >= r["standalone"], r
    # ...and Custody's margin shrinks as memory substitutes for allocation.
    assert (custody[-1] - spark[-1]) <= (custody[0] - spark[0]) + 1e-9
