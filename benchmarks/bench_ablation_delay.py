"""Ablation — delay-scheduling wait budget (interaction with allocation).

Delay scheduling [22] trades scheduler delay for locality: a longer wait
raises the chance of finding a local slot but stalls tasks.  Custody's
claim is that good *allocation* reduces reliance on waiting — at wait = 0
the baseline's locality collapses to whatever the random executor set
happens to cover, while Custody already placed local executors.
"""

from common import ablation_sweep, emit

from repro.metrics.report import format_table

WAITS = (0.0, 1.0, 3.0, 6.0)
NUM_NODES = 50
WORKLOAD = "wordcount"


def run_sweep():
    return ablation_sweep(
        "wait",
        WAITS,
        lambda wait: {"delay_wait": wait},
        workload=WORKLOAD,
        num_nodes=NUM_NODES,
        extra=("delay", "avg_scheduler_delay"),
    )


def test_ablation_delay(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["wait (s)", "spark loc%", "custody loc%", "spark delay", "custody delay"],
            [
                [
                    r["wait"],
                    100 * r["standalone"],
                    100 * r["custody"],
                    r["standalone_delay"],
                    r["custody_delay"],
                ]
                for r in rows
            ],
            title=f"Ablation — delay-scheduling wait sweep ({WORKLOAD}, {NUM_NODES} nodes)",
        )
    )
    # Waiting helps both policies' locality.
    spark = [r["standalone"] for r in rows]
    custody = [r["custody"] for r in rows]
    assert spark[-1] > spark[0]
    assert custody[-1] > custody[0]
    # Custody dominates whenever the in-app scheduler is actually
    # data-aware (wait > 0).  At wait = 0 the scheduler is pure FIFO and
    # squanders the allocation — allocation raises the locality *upper
    # bound*; the task scheduler must exploit it (§II-A's division of
    # labour).  This cell is the ablation's key finding.
    for r in rows:
        if r["wait"] > 0:
            assert r["custody"] > r["standalone"], r
    # With even a modest wait Custody is already near its ceiling: its
    # locality at wait=1 s is within 5 points of its wait=6 s value.
    at_1s = next(r["custody"] for r in rows if r["wait"] == 1.0)
    assert at_1s > custody[-1] - 0.05
