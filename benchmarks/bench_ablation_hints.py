"""Ablation — enforcing Custody's scheduling suggestions (§V).

The paper explicitly does *not* impose the allocator's task→executor
assignments on applications: "we do not impose the applications to follow
the instructions included in our allocation results such that each
application can adopt an independent scheduling strategy without
modification."  This bench quantifies the choice: enforcing the hints via a
hint-aware delay scheduler should change essentially nothing, because delay
scheduling already realises the hinted placements on the granted executors.
"""

from common import cached_run, emit, paper_config

from repro.metrics.report import format_table

NUM_NODES = 50
WORKLOAD = "wordcount"


def run_comparison():
    rows = []
    for enforce in (False, True):
        config = paper_config(
            WORKLOAD, NUM_NODES, "custody", custody_enforce_hints=enforce
        )
        metrics = cached_run(config).metrics
        rows.append(
            {
                "enforce": enforce,
                "locality": metrics.locality_mean,
                "jct": metrics.avg_jct,
                "delay": metrics.avg_scheduler_delay,
            }
        )
    return rows


def test_ablation_hints(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    emit(
        format_table(
            ["hints enforced", "loc%", "avg JCT (s)", "sched delay (s)"],
            [
                [str(r["enforce"]), 100 * r["locality"], r["jct"], r["delay"]]
                for r in rows
            ],
            title=f"Ablation §V — enforcing scheduling suggestions ({WORKLOAD})",
        )
    )
    off, on = rows[0], rows[1]
    # The paper's decision holds: enforcement changes (almost) nothing.
    assert abs(on["locality"] - off["locality"]) < 0.02
    assert abs(on["jct"] - off["jct"]) < 0.05 * off["jct"]
