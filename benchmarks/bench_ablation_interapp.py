"""Ablation — inter-application ordering (§IV-A, Algorithm 1).

Compares MINLOCALITY (serve the least-localized application first, with
re-sorting after every grant) against a fixed round-robin application order
on random contended instances, measuring the max-min objective: the *worst*
application's fraction of fully-promised jobs, plus Jain's index.
"""

import numpy as np

from common import emit

from repro.core.allocation import two_level_allocate
from repro.core.demand import AppDemand, JobDemand, TaskDemand
from repro.core.fairness import jains_index
from repro.core.intraapp import greedy_intra_app
from repro.metrics.report import format_table


def round_robin_allocate(apps, executors):
    """Data-aware intra-app (Algorithm 2) but a *fixed* app order — the
    ablated variant: everything of app 1, then app 2, etc."""
    available = list(executors)
    assignments = {}
    for app in apps:
        result = greedy_intra_app(app, available, budget=app.budget)
        taken = set(result.granted)
        available = [e for e in available if e not in taken]
        assignments[app.app_id] = result.assignment
    return assignments


def contended_instance(rng, n_apps=3, n_execs=9, n_jobs=3):
    """Hot executors: all apps draw candidates from a small hot subset."""
    executors = [f"E{i}" for i in range(n_execs)]
    hot = executors[: n_execs // 2]
    apps = []
    tid = 0
    for a in range(n_apps):
        jobs = []
        for j in range(n_jobs):
            n_tasks = int(rng.integers(1, 3))
            tasks = []
            for _ in range(n_tasks):
                k = int(rng.integers(1, 3))
                cands = rng.choice(len(hot), size=k, replace=False)
                tasks.append(TaskDemand.of(f"t{tid}", [hot[int(c)] for c in cands]))
                tid += 1
            jobs.append(JobDemand(f"A{a}J{j}", tuple(tasks)))
        apps.append(AppDemand(app_id=f"A{a}", jobs=tuple(jobs), quota=n_execs // n_apps))
    return apps, executors


def promised_job_fractions(apps, assignments):
    fractions = []
    for app in apps:
        assignment = assignments.get(app.app_id, {})
        full = sum(
            1
            for j in app.jobs
            if j.unsatisfied > 0 and all(t.task_id in assignment for t in j.tasks)
        )
        fractions.append(full / len(app.jobs))
    return fractions


def run_ablation(trials=60, seed=17):
    rng = np.random.default_rng(seed)
    stats = {"minlocality": {"worst": 0.0, "jain": 0.0}, "round-robin": {"worst": 0.0, "jain": 0.0}}
    for _ in range(trials):
        apps, executors = contended_instance(rng)
        plan = two_level_allocate(apps, executors, fill=False)
        by_app = {a.app_id: {} for a in apps}
        owner = {t.task_id: a.app_id for a in apps for j in a.jobs for t in j.tasks}
        for task_id, executor in plan.assignment.items():
            by_app[owner[task_id]][task_id] = executor
        for name, assignments in (
            ("minlocality", by_app),
            ("round-robin", round_robin_allocate(apps, executors)),
        ):
            fractions = promised_job_fractions(apps, assignments)
            stats[name]["worst"] += min(fractions) / trials
            stats[name]["jain"] += jains_index([f + 1e-12 for f in fractions]) / trials
    return stats


def test_ablation_interapp(benchmark):
    stats = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        format_table(
            ["ordering", "mean worst-app local-job fraction", "mean Jain index"],
            [
                [name, stats[name]["worst"], stats[name]["jain"]]
                for name in ("round-robin", "minlocality")
            ],
            title="Ablation §IV-A — inter-application ordering under contention",
        )
    )
    assert stats["minlocality"]["worst"] >= stats["round-robin"]["worst"]
    assert stats["minlocality"]["jain"] >= stats["round-robin"]["jain"] - 1e-9
