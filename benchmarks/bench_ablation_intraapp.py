"""Ablation — intra-application strategy (§IV-B).

Compares three intra-app allocators on random demand instances:

* **priority** (Algorithm 2, greedy whole-job-first — Custody's choice);
* **fair** (round-robin one task per job — the strawman of Fig. 4);
* **optimal** (exact constrained bipartite matching via min-cost flow).

The paper's argument: priority maximises *fully-local jobs* (the metric that
matters for JCT, since partially-local jobs still straggle), which the fair
strategy sacrifices even when it matches more individual tasks.
"""

import numpy as np

from common import emit

from repro.core.demand import AppDemand, JobDemand, TaskDemand
from repro.core.intraapp import greedy_intra_app, optimal_intra_app, plan_value
from repro.metrics.report import format_table


def fair_intra_app(app, idle_executors, budget):
    """Round-robin one task per job — the Fig. 4 fairness-based strawman."""
    available = set(idle_executors)
    order = {e: i for i, e in enumerate(idle_executors)}
    assignment = {}
    cursors = {j.job_id: 0 for j in app.jobs}
    progress = True
    while len(assignment) < budget and progress:
        progress = False
        for job in app.jobs:
            if len(assignment) >= budget:
                break
            i = cursors[job.job_id]
            while i < len(job.tasks):
                task = job.tasks[i]
                i += 1
                usable = [c for c in task.candidates if c in available]
                if usable:
                    choice = min(usable, key=lambda e: order[e])
                    available.discard(choice)
                    assignment[task.task_id] = choice
                    progress = True
                    break
            cursors[job.job_id] = i
    return assignment


def random_app(rng, n_jobs=4, n_execs=12):
    executors = [f"E{i}" for i in range(n_execs)]
    jobs = []
    tid = 0
    for j in range(n_jobs):
        n_tasks = int(rng.integers(1, 6))
        tasks = []
        for _ in range(n_tasks):
            k = int(rng.integers(1, 4))
            cands = rng.choice(n_execs, size=k, replace=False)
            tasks.append(TaskDemand.of(f"t{tid}", [f"E{int(c)}" for c in cands]))
            tid += 1
        jobs.append(JobDemand(f"J{j}", tuple(tasks)))
    budget = int(rng.integers(2, n_execs // 2 + 1))
    app = AppDemand(app_id="A", jobs=tuple(jobs), quota=budget)
    return app, executors, budget


def run_ablation(trials=50, seed=13):
    rng = np.random.default_rng(seed)
    totals = {"priority": [0, 0.0], "fair": [0, 0.0], "optimal": [0, 0.0]}
    for _ in range(trials):
        app, executors, budget = random_app(rng)
        strategies = {
            "priority": greedy_intra_app(app, executors, budget=budget).assignment,
            "fair": fair_intra_app(app, executors, budget),
            "optimal": optimal_intra_app(app, executors, budget=budget).assignment,
        }
        for name, assignment in strategies.items():
            jobs, credit = plan_value(assignment, app)
            totals[name][0] += jobs
            totals[name][1] += credit
    return {name: (jobs, credit) for name, (jobs, credit) in totals.items()}


def test_ablation_intraapp(benchmark):
    totals = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        format_table(
            ["strategy", "fully-local jobs (50 instances)", "Σ 1/µ credit"],
            [[name, *totals[name]] for name in ("fair", "priority", "optimal")],
            title="Ablation §IV-B — intra-application strategies",
        )
    )
    # Priority beats the fair strawman on the job-level objective...
    assert totals["priority"][0] > totals["fair"][0]
    # ...and stays within the 2-approximation of the optimum's credit.
    assert totals["priority"][1] >= 0.5 * totals["optimal"][1]
