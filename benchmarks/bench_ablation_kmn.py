"""Ablation — KMN-style input choice ([10], related work).

KMN observes that approximation jobs needing any K of N input blocks give
the scheduler *choice*: it serves the most-local K and drops the rest.
Sweeps K/N and measures how much choice substitutes for — and composes
with — Custody's data-aware allocation.
"""

from common import ablation_sweep, emit

from repro.metrics.report import format_table

FRACTIONS = (1.0, 0.9, 0.75)
NUM_NODES = 50
WORKLOAD = "wordcount"


def run_sweep():
    return ablation_sweep(
        "fraction",
        FRACTIONS,
        lambda f: {"kmn_fraction": None if f >= 1.0 else f},
        workload=WORKLOAD,
        num_nodes=NUM_NODES,
        extra=("jct", "avg_jct"),
    )


def test_ablation_kmn(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["K/N", "spark loc%", "custody loc%", "spark JCT", "custody JCT"],
            [
                [
                    r["fraction"],
                    100 * r["standalone"],
                    100 * r["custody"],
                    r["standalone_jct"],
                    r["custody_jct"],
                ]
                for r in rows
            ],
            title=f"Ablation — KMN input choice ({WORKLOAD}, {NUM_NODES} nodes)",
        )
    )
    spark = [r["standalone"] for r in rows]
    spark_jct = [r["standalone_jct"] for r in rows]
    # Choice raises the baseline's locality and reduces its JCT...
    assert spark[-1] >= spark[0]
    assert spark_jct[-1] <= spark_jct[0]
    # ...and Custody still wins (or ties) at every K/N.
    for r in rows:
        assert r["custody"] >= r["standalone"] - 0.01, r
        assert r["custody_jct"] <= r["standalone_jct"] * 1.02, r
