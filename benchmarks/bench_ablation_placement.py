"""Ablation — replica placement policy (§VII).

The paper notes Scarlett-style popularity-based replication "reinforces the
foundation of Custody" by eliminating hot spots.  Compares uniform random
placement against the popularity-proportional policy (hot pool files get
more replicas) under both managers.
"""

from common import ablation_sweep, emit

from repro.metrics.report import format_table

NUM_NODES = 50
WORKLOAD = "wordcount"


def run_comparison():
    return ablation_sweep(
        "placement",
        ("random", "popularity"),
        lambda placement: {"placement": placement},
        workload=WORKLOAD,
        num_nodes=NUM_NODES,
        extra=("jct", "avg_jct"),
    )


def test_ablation_placement(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    emit(
        format_table(
            ["placement", "spark loc%", "custody loc%", "spark JCT", "custody JCT"],
            [
                [
                    r["placement"],
                    100 * r["standalone"],
                    100 * r["custody"],
                    r["standalone_jct"],
                    r["custody_jct"],
                ]
                for r in rows
            ],
            title=f"Ablation §VII — placement policy ({WORKLOAD}, {NUM_NODES} nodes)",
        )
    )
    by_placement = {r["placement"]: r for r in rows}
    # Custody dominates the baseline under either placement policy.
    for r in rows:
        assert r["custody"] > r["standalone"], r
    # Popularity-based replication raises locality for both managers
    # (hot files gain replicas, so more nodes can serve them).
    assert (
        by_placement["popularity"]["standalone"]
        >= by_placement["random"]["standalone"] - 0.02
    )
    assert (
        by_placement["popularity"]["custody"]
        >= by_placement["random"]["custody"] - 0.02
    )
