"""Ablation — the node→rack→any delay-scheduling ladder.

Spark's real delay scheduler descends a locality ladder.  On a multi-rack
cluster with rack-aware replica placement, enabling the rack rung converts
off-rack ("any") reads into rack-local ones without hurting node locality.
"""

from common import cached_run, emit, paper_config

from repro.metrics.report import format_table

NUM_NODES = 50
NODES_PER_RACK = 10
WORKLOAD = "wordcount"


def run_comparison():
    rows = []
    for rack_wait in (None, 2.0):
        row = {"rack_wait": rack_wait}
        for manager in ("standalone", "custody"):
            config = paper_config(
                WORKLOAD,
                NUM_NODES,
                manager,
                rack_wait=rack_wait,
                nodes_per_rack=NODES_PER_RACK,
                placement="rack-aware",
                delay_wait=1.0,
            )
            metrics = cached_run(config).metrics
            levels = metrics.locality_levels
            row[f"{manager}_node"] = levels.get("node", 0.0)
            row[f"{manager}_rack"] = levels.get("rack", 0.0)
            row[f"{manager}_any"] = levels.get("any", 0.0)
        rows.append(row)
    return rows


def test_ablation_rack_ladder(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    emit(
        format_table(
            ["rack rung", "spark node%", "spark rack%", "spark any%",
             "custody node%", "custody rack%", "custody any%"],
            [
                [
                    "on" if r["rack_wait"] else "off",
                    100 * r["standalone_node"],
                    100 * r["standalone_rack"],
                    100 * r["standalone_any"],
                    100 * r["custody_node"],
                    100 * r["custody_rack"],
                    100 * r["custody_any"],
                ]
                for r in rows
            ],
            title=(
                f"Ablation — locality ladder ({WORKLOAD}, {NUM_NODES} nodes, "
                f"{NODES_PER_RACK}/rack, rack-aware placement)"
            ),
        )
    )
    off, on = rows[0], rows[1]
    # The rack rung never increases off-rack reads for either manager...
    assert on["standalone_any"] <= off["standalone_any"] + 1e-9
    assert on["custody_any"] <= off["custody_any"] + 1e-9
    # ...and node-level locality is essentially preserved.
    assert on["standalone_node"] >= off["standalone_node"] - 0.05
    assert on["custody_node"] >= off["custody_node"] - 0.05