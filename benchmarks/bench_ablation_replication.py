"""Ablation — replication level (§VII, caching and storage management).

Replication is the foundation of locality: more replicas mean more nodes
can serve a block.  Sweeps the HDFS replication factor and measures locality
under both managers.  Custody extracts high locality already at low
replication (it *chooses* the right executors), so the baseline's benefit
from extra replicas is larger.
"""

from common import ablation_sweep, emit

from repro.metrics.report import format_table

REPLICATION_LEVELS = (1, 2, 3, 5)
NUM_NODES = 50
WORKLOAD = "wordcount"


def run_sweep():
    return ablation_sweep(
        "replication",
        REPLICATION_LEVELS,
        lambda replication: {"replication": replication},
        workload=WORKLOAD,
        num_nodes=NUM_NODES,
    )


def test_ablation_replication(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["replication", "spark loc%", "custody loc%"],
            [
                [r["replication"], 100 * r["standalone"], 100 * r["custody"]]
                for r in rows
            ],
            title=f"Ablation §VII — replication sweep ({WORKLOAD}, {NUM_NODES} nodes)",
        )
    )
    # Baseline locality grows with replication.
    spark = [r["standalone"] for r in rows]
    assert spark[-1] > spark[0]
    # Custody dominates at every level.
    for r in rows:
        assert r["custody"] > r["standalone"], r
    # Custody's advantage is largest when replication is scarce.
    gain_r1 = rows[0]["custody"] - rows[0]["standalone"]
    gain_r5 = rows[-1]["custody"] - rows[-1]["standalone"]
    assert gain_r1 > gain_r5
