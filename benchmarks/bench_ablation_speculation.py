"""Ablation — speculative execution under injected stragglers (§IV-B).

The paper defers straggler handling to "existing straggler mitigation
schemes" ([26] GRASS, [27] clone-based, [10] KMN).  This bench injects slow
nodes (8x CPU slowdown on 20% of the cluster) and measures how much a
clone-based speculation policy recovers, with and without Custody.
"""

from common import JOBS_PER_APP, NUM_APPS, SEED, emit, paper_config

from repro.experiments.runner import run_experiment
from repro.faults.plan import FaultPlan, NodeSlowdown
from repro.metrics.report import format_table

NUM_NODES = 30
WORKLOAD = "sort"
SLOW_NODES = 6
SLOW_FACTOR = 8.0


def straggler_plan():
    return FaultPlan(
        [
            NodeSlowdown(
                at=0.0,
                node_id=f"worker-{i:03d}",
                duration=1e6,
                factor=SLOW_FACTOR,
            )
            for i in range(SLOW_NODES)
        ]
    )


def run_matrix():
    rows = []
    for manager in ("standalone", "custody"):
        for speculation in (False, True):
            config = paper_config(
                WORKLOAD, NUM_NODES, manager, speculation=speculation
            )
            result = run_experiment(config, fault_plan=straggler_plan())
            rows.append(
                {
                    "manager": manager,
                    "speculation": speculation,
                    "jct": result.metrics.avg_jct,
                    "launches": result.speculative_launches,
                    "wins": result.speculative_wins,
                }
            )
    return rows


def test_ablation_speculation(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    emit(
        format_table(
            ["manager", "speculation", "avg JCT (s)", "clones", "clone wins"],
            [
                [r["manager"], str(r["speculation"]), r["jct"], r["launches"], r["wins"]]
                for r in rows
            ],
            title=(
                f"Ablation — speculation with {SLOW_NODES}/{NUM_NODES} nodes "
                f"slowed {SLOW_FACTOR:.0f}x ({WORKLOAD})"
            ),
        )
    )
    by = {(r["manager"], r["speculation"]): r for r in rows}
    # Speculation recovers JCT under both managers.
    for manager in ("standalone", "custody"):
        assert by[(manager, True)]["jct"] < by[(manager, False)]["jct"]
        assert by[(manager, True)]["launches"] > 0
    # Custody + speculation is the best cell overall.
    best = min(rows, key=lambda r: r["jct"])
    assert best["manager"] == "custody" and best["speculation"]
