"""Scaling bench — incremental allocation control plane vs reference.

Times full Custody allocation rounds (release, demand build, two-level
max-min, grant application) under single-app-per-instant churn at growing
tenant counts (see :mod:`repro.experiments.allocbench` for the workload
model) and verifies the two control planes produce identical plans every
round.

Four entry points:

* ``pytest benchmarks/bench_alloc_scale.py`` — the ``bench``-marked test
  runs the 4→64-tenant trajectory and asserts the acceptance floors
  (speedup and p99 tail at the 32-tenant size);
* ``python benchmarks/bench_alloc_scale.py --smoke`` — the CI perf gate:
  a small fixed point with conservative speedup and tail floors, exits
  non-zero on regression;
* ``python benchmarks/bench_alloc_scale.py --tail-gate [PATH]`` — the
  artifact gate: checks the committed ``BENCH_alloc.json`` trajectory
  against the p99/p50 tail ratio and absolute p99 ceilings without
  re-measuring;
* ``python benchmarks/bench_alloc_scale.py`` — the printable trajectory,
  written to ``BENCH_alloc.json``.
"""

import argparse
import json
import sys

import pytest

from common import emit

from repro.experiments.allocbench import run_alloc_bench, write_alloc_trajectory
from repro.metrics.report import format_table

#: CI smoke gate: at this scale the cached control plane must beat the
#: from-scratch rebuild by at least this factor.  The measured margin is
#: ~7x, so the floor only trips on a genuine algorithmic regression.
SMOKE_SIZE = (8, 12, 12, 3)  # apps, jobs/app, tasks/job, replication
SMOKE_ROUNDS = 120
SMOKE_MIN_SPEEDUP = 3.0

#: Acceptance floor from the issue: >=10x at the 32-tenant size.
#: Measured ~25x there (96% demand-cache hit rate).
ACCEPTANCE_SIZE = (32, 30, 24, 3)
ACCEPTANCE_MIN_SPEEDUP = 10.0

#: The scale-out point beyond the original acceptance size: 64 tenants on
#: a 128-node cluster, the regime the parallel sweep fabric targets.
SCALE_OUT_SIZE = (64, 30, 24, 3)

#: The printable trajectory.
TRAJECTORY = [(4, 6, 8, 2), (8, 12, 12, 3), (16, 20, 16, 3),
              ACCEPTANCE_SIZE, SCALE_OUT_SIZE]

#: Tail gates.  Historically the 32-tenant incremental p99 sat ~16x above
#: its p50 (cyclic-GC collections walking the twin worlds inside timed
#: rounds); with the collector quiesced the measured ratio is ~2.5-4x at
#: the large sizes.  Three checks:
#:
#: * ``incremental_gc_collections`` must be 0 at every size — the direct,
#:   machine-independent signal that collector pauses are back in the
#:   timed rounds;
#: * p99/p50 at the sizes the regression hit (>= 32 tenants): smaller
#:   points legitimately carry a structural tail — over 200 rounds each
#:   app drains and rebuilds its backlog (a full demand-cache-miss round)
#:   often enough that p99 lands on a rebuild, while at >= 32 tenants
#:   apps are visited too rarely to drain, so the ratio there isolates
#:   pause regressions from workload mix;
#: * the absolute p99 ceiling pins the issue's acceptance number at the
#:   32-tenant point (measured ~7ms against the 30ms ceiling).
TAIL_MAX_P99_OVER_P50 = 8.0
TAIL_MAX_P99_MS_AT_32 = 30.0
TAIL_MIN_APPS = 32


def _emit_points(points) -> None:
    emit(format_table(
        ["apps", "jobs/app", "tasks/job", "repl", "reference s",
         "incremental s", "speedup", "cache hit", "inc p50 ms",
         "inc p99 ms", "gc rounds"],
        [[p.apps, p.jobs_per_app, p.tasks_per_job, p.replication,
          p.reference_seconds, p.incremental_seconds, p.speedup,
          p.demand_cache_hit_rate, p.incremental_p50_ms,
          p.incremental_p99_ms, p.incremental_gc_collections]
         for p in points],
        title="allocation control-plane scaling (plan-equality checked per round)",
    ))


def _tail_violations(rows) -> list:
    """Tail-gate checks over (apps, p50_ms, p99_ms) rows."""
    violations = []
    for apps, p50, p99 in rows:
        if apps >= TAIL_MIN_APPS and p50 > 0 and p99 / p50 > TAIL_MAX_P99_OVER_P50:
            violations.append(
                f"{apps} apps: incremental p99 {p99:.2f}ms is "
                f"{p99 / p50:.1f}x its p50 {p50:.2f}ms "
                f"(gate {TAIL_MAX_P99_OVER_P50}x) — the tail is back"
            )
        if apps == ACCEPTANCE_SIZE[0] and p99 > TAIL_MAX_P99_MS_AT_32:
            violations.append(
                f"{apps} apps: incremental p99 {p99:.2f}ms exceeds the "
                f"{TAIL_MAX_P99_MS_AT_32}ms acceptance ceiling"
            )
    return violations


@pytest.mark.bench
@pytest.mark.slow
def test_bench_alloc_scale():
    """Trajectory through 64 tenants; asserts the 32-tenant floors."""
    points = run_alloc_bench(TRAJECTORY, rounds=200)
    _emit_points(points)
    write_alloc_trajectory(points)
    sizes = [(p.apps, p.jobs_per_app, p.tasks_per_job, p.replication)
             for p in points]
    assert ACCEPTANCE_SIZE in sizes and SCALE_OUT_SIZE in sizes
    top = points[sizes.index(ACCEPTANCE_SIZE)]
    assert top.plans_equal
    assert top.speedup >= ACCEPTANCE_MIN_SPEEDUP, (
        f"incremental control plane only {top.speedup:.1f}x faster at "
        f"{top.apps} apps (need >= {ACCEPTANCE_MIN_SPEEDUP}x)"
    )
    tail = _tail_violations(
        [(p.apps, p.incremental_p50_ms, p.incremental_p99_ms) for p in points]
    )
    assert not tail, "; ".join(tail)


def smoke() -> int:
    """CI perf gate: one modest point, conservative floors, loud verdict."""
    points = run_alloc_bench([SMOKE_SIZE], rounds=SMOKE_ROUNDS)
    point = points[0]
    print(
        f"smoke: {point.apps} apps x {point.jobs_per_app} jobs x "
        f"{point.tasks_per_job} tasks (r={point.replication}), "
        f"{point.rounds} rounds — reference {point.reference_seconds:.3f}s, "
        f"incremental {point.incremental_seconds:.3f}s, "
        f"speedup {point.speedup:.1f}x (gate {SMOKE_MIN_SPEEDUP}x), "
        f"cache hit {point.demand_cache_hit_rate:.0%}, "
        f"p50 {point.incremental_p50_ms:.2f}ms / "
        f"p99 {point.incremental_p99_ms:.2f}ms, "
        f"gc-in-rounds {point.incremental_gc_collections}, "
        f"plans equal: {point.plans_equal}"
    )
    failed = False
    if point.speedup < SMOKE_MIN_SPEEDUP:
        print("PERF REGRESSION: incremental control plane lost its edge",
              file=sys.stderr)
        failed = True
    tail = _tail_violations(
        [(point.apps, point.incremental_p50_ms, point.incremental_p99_ms)]
    )
    for violation in tail:
        print(f"TAIL REGRESSION: {violation}", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("smoke ok")
    return 0


def tail_gate(path: str) -> int:
    """Artifact gate: check the committed trajectory's tail columns."""
    data = json.loads(open(path).read())
    rows = [(p["apps"], p["incremental_p50_ms"], p["incremental_p99_ms"])
            for p in data["points"]]
    violations = _tail_violations(rows)
    for apps, p50, p99 in rows:
        ratio = p99 / p50 if p50 > 0 else float("inf")
        print(f"  {apps:>3} apps: p50 {p50:8.3f}ms  p99 {p99:8.3f}ms  "
              f"ratio {ratio:5.1f}x")
    if violations:
        print(f"tail gate FAILED on {path}:", file=sys.stderr)
        for v in violations:
            print(f"  - {v}", file=sys.stderr)
        return 1
    print(f"tail gate ok: {path} p99/p50 <= {TAIL_MAX_P99_OVER_P50}x from "
          f"{TAIL_MIN_APPS} apps up, 32-tenant p99 <= {TAIL_MAX_P99_MS_AT_32}ms")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI perf gate")
    parser.add_argument("--tail-gate", nargs="?", const="BENCH_alloc.json",
                        default=None, metavar="PATH", dest="tail_gate",
                        help="check an existing trajectory artifact's p99 "
                             "tail without re-measuring")
    parser.add_argument("--rounds", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_alloc.json")
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    if args.tail_gate:
        return tail_gate(args.tail_gate)
    points = run_alloc_bench(TRAJECTORY, rounds=args.rounds, seed=args.seed)
    for p in points:
        print(f"apps={p.apps:>3} jobs/app={p.jobs_per_app:>3} "
              f"tasks/job={p.tasks_per_job:>3} repl={p.replication} "
              f"ref={p.reference_seconds:.4f}s inc={p.incremental_seconds:.4f}s "
              f"speedup={p.speedup:.1f}x cache-hit={p.demand_cache_hit_rate:.0%} "
              f"p99 {p.reference_p99_ms:.2f}ms -> {p.incremental_p99_ms:.2f}ms "
              f"(gc {p.incremental_gc_collections})")
    if args.out:
        print(f"saved: {write_alloc_trajectory(points, args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
