"""Scaling bench — incremental allocation control plane vs reference.

Times full Custody allocation rounds (release, demand build, two-level
max-min, grant application) under single-app-per-instant churn at growing
tenant counts (see :mod:`repro.experiments.allocbench` for the workload
model) and verifies the two control planes produce identical plans every
round.

Three entry points:

* ``pytest benchmarks/bench_alloc_scale.py`` — the ``bench``-marked test
  runs the 4→32-tenant trajectory and asserts the acceptance floor (≥10×
  at the largest size);
* ``python benchmarks/bench_alloc_scale.py --smoke`` — the CI perf gate:
  a small fixed point with a conservative speedup floor, exits non-zero
  on regression;
* ``python benchmarks/bench_alloc_scale.py`` — the printable trajectory,
  written to ``BENCH_alloc.json``.
"""

import argparse
import sys

import pytest

from common import emit

from repro.experiments.allocbench import run_alloc_bench, write_alloc_trajectory
from repro.metrics.report import format_table

#: CI smoke gate: at this scale the cached control plane must beat the
#: from-scratch rebuild by at least this factor.  The measured margin is
#: ~7x, so the floor only trips on a genuine algorithmic regression.
SMOKE_SIZE = (8, 12, 12, 3)  # apps, jobs/app, tasks/job, replication
SMOKE_ROUNDS = 120
SMOKE_MIN_SPEEDUP = 3.0

#: Acceptance floor from the issue: >=10x at the largest swept size.
#: Measured ~25x there (32 tenants, 96% demand-cache hit rate).
ACCEPTANCE_SIZE = (32, 30, 24, 3)
ACCEPTANCE_MIN_SPEEDUP = 10.0

#: The printable trajectory (the acceptance size is the last entry).
TRAJECTORY = [(4, 6, 8, 2), (8, 12, 12, 3), (16, 20, 16, 3), ACCEPTANCE_SIZE]


def _emit_points(points) -> None:
    emit(format_table(
        ["apps", "jobs/app", "tasks/job", "repl", "reference s",
         "incremental s", "speedup", "cache hit"],
        [[p.apps, p.jobs_per_app, p.tasks_per_job, p.replication,
          p.reference_seconds, p.incremental_seconds, p.speedup,
          p.demand_cache_hit_rate] for p in points],
        title="allocation control-plane scaling (plan-equality checked per round)",
    ))


@pytest.mark.bench
@pytest.mark.slow
def test_bench_alloc_scale():
    """Trajectory through 32 tenants; asserts the acceptance speedup floor."""
    points = run_alloc_bench(TRAJECTORY, rounds=200)
    _emit_points(points)
    write_alloc_trajectory(points)
    top = points[-1]
    assert (top.apps, top.jobs_per_app, top.tasks_per_job, top.replication) \
        == ACCEPTANCE_SIZE
    assert top.plans_equal
    assert top.speedup >= ACCEPTANCE_MIN_SPEEDUP, (
        f"incremental control plane only {top.speedup:.1f}x faster at "
        f"{top.apps} apps (need >= {ACCEPTANCE_MIN_SPEEDUP}x)"
    )


def smoke() -> int:
    """CI perf gate: one modest point, conservative floor, loud verdict."""
    points = run_alloc_bench([SMOKE_SIZE], rounds=SMOKE_ROUNDS)
    point = points[0]
    print(
        f"smoke: {point.apps} apps x {point.jobs_per_app} jobs x "
        f"{point.tasks_per_job} tasks (r={point.replication}), "
        f"{point.rounds} rounds — reference {point.reference_seconds:.3f}s, "
        f"incremental {point.incremental_seconds:.3f}s, "
        f"speedup {point.speedup:.1f}x (gate {SMOKE_MIN_SPEEDUP}x), "
        f"cache hit {point.demand_cache_hit_rate:.0%}, "
        f"plans equal: {point.plans_equal}"
    )
    if point.speedup < SMOKE_MIN_SPEEDUP:
        print("PERF REGRESSION: incremental control plane lost its edge",
              file=sys.stderr)
        return 1
    print("smoke ok")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI perf gate")
    parser.add_argument("--rounds", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_alloc.json")
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    points = run_alloc_bench(TRAJECTORY, rounds=args.rounds, seed=args.seed)
    for p in points:
        print(f"apps={p.apps:>3} jobs/app={p.jobs_per_app:>3} "
              f"tasks/job={p.tasks_per_job:>3} repl={p.replication} "
              f"ref={p.reference_seconds:.4f}s inc={p.incremental_seconds:.4f}s "
              f"speedup={p.speedup:.1f}x cache-hit={p.demand_cache_hit_rate:.0%} "
              f"p99 {p.reference_p99_ms:.2f}ms -> {p.incremental_p99_ms:.2f}ms")
    if args.out:
        print(f"saved: {write_alloc_trajectory(points, args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
