"""Related-work comparison (§VII) — all four cluster managers.

Beyond the paper's standalone baseline, runs the same workload trace under
YARN-style capacity pools and Mesos-style offers.  Expected ordering:
Custody's locality is the best; YARN (data-unaware, demand-sized pools) is
the worst; Mesos sits between — delay scheduling can reject its way to
locality but pays offer-cycle latency in JCT.
"""

from common import cached_run, emit, paper_config

from repro.metrics.report import format_table

NUM_NODES = 50
WORKLOAD = "wordcount"
MANAGERS = ("standalone", "yarn", "mesos", "custody")


def run_comparison():
    rows = []
    for manager in MANAGERS:
        metrics = cached_run(paper_config(WORKLOAD, NUM_NODES, manager)).metrics
        rows.append(
            {
                "manager": manager,
                "locality": metrics.locality_mean,
                "jct": metrics.avg_jct,
                "delay": metrics.avg_scheduler_delay,
                "min_local_jobs": metrics.min_local_job_fraction,
            }
        )
    return rows


def test_baseline_managers(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    emit(
        format_table(
            ["manager", "loc%", "avg JCT (s)", "sched delay (s)", "worst-app local jobs%"],
            [
                [
                    r["manager"],
                    100 * r["locality"],
                    r["jct"],
                    r["delay"],
                    100 * r["min_local_jobs"],
                ]
                for r in rows
            ],
            title=f"Related work — cluster managers ({WORKLOAD}, {NUM_NODES} nodes)",
        )
    )
    by = {r["manager"]: r for r in rows}
    assert by["custody"]["locality"] >= max(
        by[m]["locality"] for m in ("standalone", "yarn", "mesos")
    )
    assert by["custody"]["jct"] <= min(
        by[m]["jct"] for m in ("standalone", "yarn", "mesos")
    )
    assert by["yarn"]["locality"] < by["custody"]["locality"]
