"""Fig. 10 — scheduler delay vs cluster size.

Paper: under delay scheduling a task waits for an executor holding its
input; Custody's allocation makes suitable executors appear sooner, so the
average scheduler delay is *lower* than standalone's despite the extra
allocation machinery (the "allocation overhead" turns out negative).
"""

from common import CLUSTER_SIZES, WORKLOADS, compare, emit

from repro.metrics.report import format_table


def regenerate_fig10():
    rows = []
    for size in CLUSTER_SIZES:
        for workload in WORKLOADS:
            results = compare(workload, size)
            spark = results["standalone"].metrics.avg_scheduler_delay
            custody = results["custody"].metrics.avg_scheduler_delay
            assert spark is not None and custody is not None
            rows.append(
                {
                    "cluster": size,
                    "workload": workload,
                    "spark": spark,
                    "custody": custody,
                }
            )
    return rows


def test_fig10_scheduler_delay(benchmark):
    rows = benchmark.pedantic(regenerate_fig10, rounds=1, iterations=1)
    emit(
        format_table(
            ["cluster", "workload", "spark delay (s)", "custody delay (s)"],
            [[r["cluster"], r["workload"], r["spark"], r["custody"]] for r in rows],
            title="Fig. 10 — average scheduler delay of input tasks",
        )
    )
    # Custody's delay is lower on average; individual cells can tie or even
    # invert slightly when the small cluster is overloaded (sort on 25
    # nodes), so the per-cell guard only rejects gross regressions.
    for r in rows:
        assert r["custody"] <= r["spark"] * 1.25 + 0.05, r
    mean_spark = sum(r["spark"] for r in rows) / len(rows)
    mean_custody = sum(r["custody"] for r in rows) / len(rows)
    assert mean_custody < mean_spark
    # On the paper's 100-node cluster Custody is lower for every workload.
    for r in rows:
        if r["cluster"] == 100:
            assert r["custody"] <= r["spark"], r
