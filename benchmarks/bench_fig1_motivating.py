"""Fig. 1 — the motivating example: data-unaware vs data-aware allocation.

Paper: four workers each storing one block and hosting one executor; two
applications each need two blocks.  Round-robin allocation caps each app at
50% locality; the data-aware allocation reaches 100% for both.
"""

from common import emit

from repro.experiments.scenarios import fig1_motivating_example
from repro.metrics.report import format_table


def test_fig1_motivating(benchmark):
    result = benchmark(fig1_motivating_example)
    emit(
        format_table(
            ["app", "data-unaware locality", "data-aware locality"],
            [
                [app, result.data_unaware[app], result.data_aware[app]]
                for app in sorted(result.data_unaware)
            ],
            title="Fig. 1 — motivating example",
        )
    )
    assert result.data_unaware == {"A1": 0.5, "A2": 0.5}
    assert result.data_aware == {"A1": 1.0, "A2": 1.0}
