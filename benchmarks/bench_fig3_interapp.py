"""Fig. 3 — naive fairness vs locality-aware fairness across applications.

Paper: both applications demand the same two hot blocks.  Counting only
executor *numbers*, giving one app both hot executors looks fair but leaves
the other with zero local jobs; Algorithm 1 equalises at one local job each.
"""

from common import emit

from repro.core.fairness import is_maxmin_fair_improvement, jains_index
from repro.experiments.scenarios import fig3_interapp_example
from repro.metrics.report import format_table


def test_fig3_interapp(benchmark):
    result = benchmark(fig3_interapp_example)
    emit(
        format_table(
            ["app", "naive-fair local jobs", "locality-fair local jobs"],
            [
                [app, result.naive_fair[app], result.locality_fair[app]]
                for app in sorted(result.naive_fair)
            ],
            title="Fig. 3 — inter-application strategies on contested blocks",
        )
    )
    assert result.locality_fair == {"A3": 1, "A4": 1}
    assert is_maxmin_fair_improvement(
        list(result.locality_fair.values()), list(result.naive_fair.values())
    )
    assert jains_index(list(result.locality_fair.values())) == 1.0
