"""Fig. 4/5 — fairness-based vs priority-based intra-application allocation.

Paper: one application, two 2-task jobs, an executor budget of two.  The
fairness-based choice gives each job one local task and both jobs finish in
2.0 time units (stragglers); the priority choice makes job 1 perfectly
local (0.5) without slowing job 2 (2.0): average 1.25.
"""

import pytest

from common import emit

from repro.experiments.scenarios import fig45_intraapp_example
from repro.metrics.report import format_table


def test_fig45_intraapp(benchmark):
    result = benchmark.pedantic(fig45_intraapp_example, rounds=1, iterations=1)
    emit(
        format_table(
            ["strategy", "job 1 JCT", "job 2 JCT", "average"],
            [
                ["fairness-based", *result.fairness_jcts, result.fairness_avg],
                ["priority-based", *result.priority_jcts, result.priority_avg],
            ],
            title="Fig. 5 — completion times under intra-app strategies (time units)",
        )
    )
    assert result.fairness_avg == pytest.approx(2.0, abs=1e-6)
    assert result.priority_avg == pytest.approx(1.25, abs=1e-6)
