"""Fig. 7 — data locality of input tasks, Custody vs Spark standalone.

Paper's series (Fig. 7a–c): per-job % of local input tasks (mean ± std) for
PageRank / WordCount / Sort on 25-, 50- and 100-node clusters.  Reported
gains range from ~14% to 56%, growing with cluster size; Custody's locality
is insensitive to cluster size while the baseline's degrades.
"""

from common import CLUSTER_SIZES, WORKLOADS, compare, emit

from repro.metrics.locality import locality_gain
from repro.metrics.report import format_table


def regenerate_fig7():
    rows = []
    for size in CLUSTER_SIZES:
        for workload in WORKLOADS:
            results = compare(workload, size)
            spark = results["standalone"].metrics
            custody = results["custody"].metrics
            rows.append(
                {
                    "cluster": size,
                    "workload": workload,
                    "spark": spark.locality_mean,
                    "spark_std": spark.locality_std,
                    "custody": custody.locality_mean,
                    "custody_std": custody.locality_std,
                    "gain": locality_gain(custody.locality_mean, spark.locality_mean),
                }
            )
    return rows


def test_fig7_locality(benchmark):
    rows = benchmark.pedantic(regenerate_fig7, rounds=1, iterations=1)
    emit(
        format_table(
            ["cluster", "workload", "spark loc%", "±", "custody loc%", "±", "gain%"],
            [
                [
                    r["cluster"],
                    r["workload"],
                    100 * r["spark"],
                    100 * r["spark_std"],
                    100 * r["custody"],
                    100 * r["custody_std"],
                    100 * r["gain"],
                ]
                for r in rows
            ],
            title="Fig. 7 — % local input tasks (Custody vs Spark standalone)",
        )
    )
    # Shape assertions: Custody wins every cell.
    for r in rows:
        assert r["custody"] > r["spark"], r
    # Custody's locality is far less sensitive to cluster size than the
    # baseline's and sits high everywhere (the §VI-C observation).
    for workload in WORKLOADS:
        series = [r["custody"] for r in rows if r["workload"] == workload]
        assert min(series) > 0.80, (workload, series)
    # The mean relative gain does not shrink as the cluster grows.
    def mean_gain(size):
        return sum(r["gain"] for r in rows if r["cluster"] == size) / len(WORKLOADS)

    assert mean_gain(CLUSTER_SIZES[-1]) >= mean_gain(CLUSTER_SIZES[0]) - 0.02
