"""Fig. 8 — average job completion times, Custody vs Spark standalone.

Paper's series (Fig. 8a–c): average JCT per workload on 25/50/100 nodes;
Custody reduces JCT by over 8% in all groups, with PageRank benefiting
least (its iterations are shuffle-bound, §VI-B).
"""

from common import CLUSTER_SIZES, WORKLOADS, compare, emit

from repro.metrics.report import format_table


def regenerate_fig8():
    rows = []
    for size in CLUSTER_SIZES:
        for workload in WORKLOADS:
            results = compare(workload, size)
            spark = results["standalone"].metrics.avg_jct
            custody = results["custody"].metrics.avg_jct
            assert spark is not None and custody is not None
            rows.append(
                {
                    "cluster": size,
                    "workload": workload,
                    "spark": spark,
                    "custody": custody,
                    "reduction": (spark - custody) / spark,
                }
            )
    return rows


def test_fig8_jct(benchmark):
    rows = benchmark.pedantic(regenerate_fig8, rounds=1, iterations=1)
    emit(
        format_table(
            ["cluster", "workload", "spark JCT (s)", "custody JCT (s)", "reduction%"],
            [
                [r["cluster"], r["workload"], r["spark"], r["custody"], 100 * r["reduction"]]
                for r in rows
            ],
            title="Fig. 8 — average job completion time (Custody vs Spark standalone)",
        )
    )
    # Shape: Custody never materially regresses JCT anywhere...
    for r in rows:
        assert r["reduction"] > -0.03, r
    # ...and wins clearly on the single-shuffle workloads in every cluster.
    for r in rows:
        if r["workload"] in ("wordcount", "sort"):
            assert r["reduction"] > 0.0, r
    # PageRank's gain is the smallest of the three workloads on the largest
    # cluster (the paper's §VI-B observation).
    big = {r["workload"]: r["reduction"] for r in rows if r["cluster"] == CLUSTER_SIZES[-1]}
    assert big["pagerank"] <= max(big["wordcount"], big["sort"])
