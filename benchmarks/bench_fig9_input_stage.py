"""Fig. 9 — average completion time of the input (map) stage, 100 nodes.

Paper: on the 100-node cluster, Custody's improved locality shortens the
input stages of all three workloads; downstream stages are untouched, which
is why Fig. 8's JCT gains are smaller than Fig. 7's locality gains.
"""

from common import WORKLOADS, compare, emit

from repro.metrics.report import format_table

NUM_NODES = 100


def regenerate_fig9():
    rows = []
    for workload in WORKLOADS:
        results = compare(workload, NUM_NODES)
        spark = results["standalone"].metrics.avg_input_stage_time
        custody = results["custody"].metrics.avg_input_stage_time
        assert spark is not None and custody is not None
        rows.append({"workload": workload, "spark": spark, "custody": custody})
    return rows


def test_fig9_input_stage(benchmark):
    rows = benchmark.pedantic(regenerate_fig9, rounds=1, iterations=1)
    emit(
        format_table(
            ["workload", "spark input stage (s)", "custody input stage (s)"],
            [[r["workload"], r["spark"], r["custody"]] for r in rows],
            title=f"Fig. 9 — average input-stage time, {NUM_NODES}-node cluster",
        )
    )
    for r in rows:
        assert r["custody"] < r["spark"], r
