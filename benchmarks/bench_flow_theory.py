"""Theory bench (§III) — the flow-network view of data-aware sharing.

Quantifies the design decision the paper argues for: the exact problem is a
maximum concurrent flow with integral constraints (NP-hard); Custody's
two-level heuristic decouples it.  On random small instances we measure how
close the heuristic's min-locality fraction comes to (a) the exact integral
optimum (brute force) and (b) the LP relaxation's λ* upper bound.
"""

import numpy as np

from common import emit

from repro.core.allocation import two_level_allocate
from repro.core.demand import AppDemand, JobDemand, TaskDemand
from repro.core.flownetwork import (
    ConcurrentFlowInstance,
    brute_force_optimum,
    lp_concurrent_flow_bound,
)
from repro.metrics.report import format_table


def random_instance(rng, n_apps=2, n_execs=6, tasks_per_app=3):
    executors = [f"E{i}" for i in range(n_execs)]
    apps = []
    for a in range(n_apps):
        tasks = []
        for t in range(tasks_per_app):
            k = int(rng.integers(1, 4))
            cands = rng.choice(n_execs, size=min(k, n_execs), replace=False)
            tasks.append(TaskDemand.of(f"A{a}T{t}", [f"E{int(c)}" for c in cands]))
        apps.append(
            AppDemand(
                app_id=f"A{a}",
                jobs=(JobDemand(f"A{a}J0", tuple(tasks)),),
                quota=n_execs // n_apps,
            )
        )
    return apps, executors


def heuristic_min_fraction(apps, executors):
    plan = two_level_allocate(apps, executors, fill=False)
    fractions = []
    for app in apps:
        satisfied = sum(
            1 for j in app.jobs for t in j.tasks if t.task_id in plan.assignment
        )
        fractions.append(satisfied / app.total_unsatisfied)
    return min(fractions)


def run_theory_comparison(trials=20, seed=7):
    rng = np.random.default_rng(seed)
    rows = []
    for trial in range(trials):
        apps, executors = random_instance(rng)
        inst = ConcurrentFlowInstance.of(apps, executors)
        lp = lp_concurrent_flow_bound(inst)
        opt, _ = brute_force_optimum(inst)
        heuristic = heuristic_min_fraction(apps, executors)
        rows.append({"trial": trial, "lp": lp, "optimum": opt, "heuristic": heuristic})
    return rows


def test_flow_theory(benchmark):
    rows = benchmark.pedantic(run_theory_comparison, rounds=1, iterations=1)
    mean_lp = sum(r["lp"] for r in rows) / len(rows)
    mean_opt = sum(r["optimum"] for r in rows) / len(rows)
    mean_heur = sum(r["heuristic"] for r in rows) / len(rows)
    emit(
        format_table(
            ["quantity", "mean min-locality fraction"],
            [
                ["LP relaxation λ* (upper bound)", mean_lp],
                ["exact integral optimum", mean_opt],
                ["two-level heuristic", mean_heur],
            ],
            title="§III theory — heuristic vs optimum vs LP bound (20 random instances)",
        )
    )
    for r in rows:
        assert r["lp"] >= r["optimum"] - 1e-9, r
        assert r["optimum"] >= r["heuristic"] - 1e-9, r
    # On these instance sizes the heuristic stays close to optimal.
    assert mean_heur >= 0.8 * mean_opt
