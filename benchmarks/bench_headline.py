"""The abstract's headline numbers on the 100-node cluster.

Paper: +36.9% input-task locality and −14.9% average JCT versus Spark's
default cluster manager, averaged over the three workloads.  Our simulator
is not the authors' Linode testbed, so the *magnitudes* differ; the bench
asserts the directions and prints measured vs paper.
"""

from common import WORKLOADS, compare, emit

from repro.metrics.locality import locality_gain
from repro.metrics.report import format_table

PAPER_LOCALITY_GAIN = 0.369
PAPER_JCT_REDUCTION = 0.149
NUM_NODES = 100


def regenerate_headline():
    locality_gains, jct_reductions = [], []
    for workload in WORKLOADS:
        results = compare(workload, NUM_NODES)
        spark = results["standalone"].metrics
        custody = results["custody"].metrics
        locality_gains.append(
            locality_gain(custody.locality_mean, spark.locality_mean)
        )
        jct_reductions.append((spark.avg_jct - custody.avg_jct) / spark.avg_jct)
    return {
        "locality_gain": sum(locality_gains) / len(locality_gains),
        "jct_reduction": sum(jct_reductions) / len(jct_reductions),
    }


def test_headline_numbers(benchmark):
    measured = benchmark.pedantic(regenerate_headline, rounds=1, iterations=1)
    emit(
        format_table(
            ["metric", "paper", "measured"],
            [
                ["locality gain %", 100 * PAPER_LOCALITY_GAIN, 100 * measured["locality_gain"]],
                ["JCT reduction %", 100 * PAPER_JCT_REDUCTION, 100 * measured["jct_reduction"]],
            ],
            title=f"Headline (abstract) — {NUM_NODES}-node cluster, 3-workload mean",
        )
    )
    assert measured["locality_gain"] > 0.0
    assert measured["jct_reduction"] > 0.0
