"""Scaling bench — incremental rate engine vs full-recompute reference.

Times per-event rate reallocation under flow churn at 10²–10⁵ concurrent
flows (see :mod:`repro.experiments.netbench` for the workload model) and
verifies the two allocators produce identical rate vectors.

Three entry points:

* ``pytest benchmarks/bench_network_scale.py`` — the ``bench``-marked test
  runs the 10²–10⁴ trajectory and asserts the acceptance floor (≥5× at 10⁴
  concurrent flows);
* ``python benchmarks/bench_network_scale.py --smoke`` — the CI perf gate:
  a small fixed point with a conservative speedup floor, exits non-zero on
  regression;
* ``python benchmarks/bench_network_scale.py [--full]`` — the printable
  trajectory (``--full`` extends to 10⁵ flows), written to
  ``BENCH_network.json``.
"""

import argparse
import sys

import pytest

from common import emit

from repro.experiments.netbench import run_scale_bench, write_trajectory
from repro.metrics.report import format_table

#: CI smoke gate: at this scale the component recompute must beat the full
#: recompute by at least this factor.  The measured margin is >15x, so the
#: floor only trips on a genuine algorithmic regression, not scheduler noise.
SMOKE_FLOWS = 2000
SMOKE_EVENTS = 15
SMOKE_MIN_SPEEDUP = 2.0

#: Acceptance floor from the issue: >=5x at 10^4 concurrent flows.
ACCEPTANCE_FLOWS = 10_000
ACCEPTANCE_MIN_SPEEDUP = 5.0


def _emit_points(points) -> None:
    emit(format_table(
        ["flows", "nodes", "reference s", "incremental s", "speedup",
         "flows/recompute"],
        [[p.flows, p.nodes, p.reference_seconds, p.incremental_seconds,
          p.speedup, p.mean_component] for p in points],
        title="rate-engine scaling (equal-rate checked per point)",
    ))


@pytest.mark.bench
@pytest.mark.slow
def test_bench_network_scale():
    """Trajectory through 10^4 flows; asserts the acceptance speedup floor."""
    points = run_scale_bench([100, 1000, ACCEPTANCE_FLOWS], events=20)
    _emit_points(points)
    write_trajectory(points)
    top = points[-1]
    assert top.flows == ACCEPTANCE_FLOWS
    assert top.speedup >= ACCEPTANCE_MIN_SPEEDUP, (
        f"incremental engine only {top.speedup:.1f}x faster at {top.flows} flows "
        f"(need >= {ACCEPTANCE_MIN_SPEEDUP}x)"
    )


def smoke() -> int:
    """CI perf gate: one modest point, conservative floor, loud verdict."""
    points = run_scale_bench([SMOKE_FLOWS], events=SMOKE_EVENTS)
    point = points[0]
    print(
        f"smoke: {point.flows} flows, {point.events} events — "
        f"reference {point.reference_seconds:.3f}s, "
        f"incremental {point.incremental_seconds:.3f}s, "
        f"speedup {point.speedup:.1f}x "
        f"(gate {SMOKE_MIN_SPEEDUP}x), max rate delta {point.max_abs_rate_delta:g}"
    )
    if point.speedup < SMOKE_MIN_SPEEDUP:
        print("PERF REGRESSION: incremental engine lost its edge", file=sys.stderr)
        return 1
    print("smoke ok")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI perf gate")
    parser.add_argument("--full", action="store_true",
                        help="extend the trajectory to 10^5 flows")
    parser.add_argument("--events", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_network.json")
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    counts = [100, 1000, 10_000] + ([100_000] if args.full else [])
    points = run_scale_bench(counts, events=args.events, seed=args.seed)
    for p in points:
        print(f"flows={p.flows:>7} nodes={p.nodes:>6} "
              f"ref={p.reference_seconds:.4f}s inc={p.incremental_seconds:.4f}s "
              f"speedup={p.speedup:.1f}x flows/recompute={p.mean_component:.1f}")
    if args.out:
        print(f"saved: {write_trajectory(points, args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
