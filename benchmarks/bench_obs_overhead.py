"""Observability overhead bench — metrics-on vs metrics-off wall time.

The registry's contract is "observe, never perturb": the same trajectory
(checked per pair) and near-zero wall-clock cost.  This bench times the
identical experiment dark and lit, interleaved best-of-N to shed scheduler
noise, and gates the relative overhead.

Three entry points:

* ``pytest benchmarks/bench_obs_overhead.py`` — the ``bench``-marked test
  runs the two-point trajectory and asserts the <5% acceptance ceiling;
* ``python benchmarks/bench_obs_overhead.py --smoke`` — the CI perf gate:
  one point, same ceiling, exits non-zero on regression;
* ``python benchmarks/bench_obs_overhead.py`` — prints the trajectory and
  writes ``BENCH_obs.json``.
"""

import argparse
import json
import sys
import time
from dataclasses import dataclass, replace
from typing import List, Sequence

import pytest

from common import emit, paper_config

from repro.experiments.runner import run_experiment
from repro.metrics.report import format_table

#: Acceptance ceiling from the issue: metrics-on may cost at most this
#: fraction of the dark run's wall time.  Measured overhead is ~1-2%, so
#: the gate only trips on a genuinely hot instrument.
MAX_OVERHEAD = 0.05

#: (workload, nodes, apps, jobs/app) points; the smoke gate uses the first.
#: Points are sized so a single run takes >0.5s — shorter runs put timer
#: noise in the same decade as the overhead being measured.
TRAJECTORY = [
    ("wordcount", 50, 4, 12),
    ("sort", 50, 4, 8),
]
REPEATS = 9


@dataclass
class OverheadPoint:
    workload: str
    nodes: int
    apps: int
    jobs_per_app: int
    repeats: int
    dark_seconds: float
    lit_seconds: float
    overhead: float
    metric_families: int
    lockstep: bool


def _time_run(config) -> float:
    start = time.perf_counter()
    run_experiment(config)
    return time.perf_counter() - start


def measure_point(workload: str, nodes: int, apps: int, jobs: int,
                  repeats: int = REPEATS, seed: int = 0) -> OverheadPoint:
    dark_cfg = paper_config(workload, nodes, "custody", num_apps=apps,
                            jobs_per_app=jobs, seed=seed)
    lit_cfg = replace(dark_cfg, metrics=True)

    # One unmeasured pair warms allocators and import-time caches, and
    # proves the lockstep property on this exact point.
    dark_result = run_experiment(dark_cfg)
    lit_result = run_experiment(lit_cfg)
    lockstep = (dark_result.metrics == lit_result.metrics
                and dark_result.sim_time == lit_result.sim_time)

    # Interleave the pairs so slow drift (thermal, noisy neighbours) hits
    # both variants alike, then compare the sums of each variant's three
    # fastest runs: a single-min ratio amplifies one lucky outlier, while
    # the low-tail sum tracks the noise-free time far more stably.
    darks, lits = [], []
    for _ in range(repeats):
        darks.append(_time_run(dark_cfg))
        lits.append(_time_run(lit_cfg))
    tail = max(1, min(3, repeats))
    dark_best = sum(sorted(darks)[:tail]) / tail
    lit_best = sum(sorted(lits)[:tail]) / tail
    overhead = (lit_best - dark_best) / dark_best
    return OverheadPoint(
        workload=workload, nodes=nodes, apps=apps, jobs_per_app=jobs,
        repeats=repeats, dark_seconds=dark_best, lit_seconds=lit_best,
        overhead=overhead,
        metric_families=len(lit_result.registry.snapshot()["metrics"]),
        lockstep=lockstep,
    )


def write_trajectory(points: Sequence[OverheadPoint],
                     path: str = "BENCH_obs.json") -> str:
    payload = {
        "benchmark": "metrics_registry_overhead",
        "format_version": 1,
        "max_overhead": MAX_OVERHEAD,
        "points": [
            {k: getattr(p, k) for k in (
                "workload", "nodes", "apps", "jobs_per_app", "repeats",
                "dark_seconds", "lit_seconds", "overhead",
                "metric_families", "lockstep")}
            for p in points
        ],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _emit_points(points: Sequence[OverheadPoint]) -> None:
    emit(format_table(
        ["workload", "nodes", "apps", "jobs/app", "dark s", "lit s",
         "overhead", "families", "lockstep"],
        [[p.workload, p.nodes, p.apps, p.jobs_per_app,
          p.dark_seconds, p.lit_seconds, f"{p.overhead:+.1%}",
          p.metric_families, p.lockstep] for p in points],
        title="metrics registry overhead (best-of-%d, lockstep checked)" % REPEATS,
    ))


def _run(points_spec) -> List[OverheadPoint]:
    return [measure_point(*spec) for spec in points_spec]


@pytest.mark.bench
@pytest.mark.slow
@pytest.mark.metrics
def test_bench_obs_overhead():
    """Both trajectory points stay under the overhead ceiling, in lockstep."""
    points = _run(TRAJECTORY)
    _emit_points(points)
    write_trajectory(points)
    for p in points:
        assert p.lockstep, f"metrics perturbed the {p.workload} trajectory"
        assert p.overhead < MAX_OVERHEAD, (
            f"metrics overhead {p.overhead:.1%} on {p.workload}/{p.nodes} "
            f"nodes (ceiling {MAX_OVERHEAD:.0%})"
        )


def smoke() -> int:
    """CI perf gate: one point, hard ceiling, loud verdict."""
    point = measure_point(*TRAJECTORY[0], repeats=7)
    print(
        f"smoke: {point.workload} x{point.nodes} nodes — "
        f"dark {point.dark_seconds:.3f}s, lit {point.lit_seconds:.3f}s, "
        f"overhead {point.overhead:+.1%} (ceiling {MAX_OVERHEAD:.0%}), "
        f"{point.metric_families} families, lockstep: {point.lockstep}"
    )
    if not point.lockstep:
        print("REGRESSION: metrics changed the simulated trajectory",
              file=sys.stderr)
        return 1
    if point.overhead >= MAX_OVERHEAD:
        print("PERF REGRESSION: metrics registry is no longer cheap",
              file=sys.stderr)
        return 1
    print("smoke ok")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI perf gate")
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--out", default="BENCH_obs.json")
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    points = [measure_point(*spec, repeats=args.repeats) for spec in TRAJECTORY]
    for p in points:
        print(f"{p.workload:>10} nodes={p.nodes:>3} apps={p.apps} "
              f"jobs/app={p.jobs_per_app} dark={p.dark_seconds:.3f}s "
              f"lit={p.lit_seconds:.3f}s overhead={p.overhead:+.1%} "
              f"families={p.metric_families} lockstep={p.lockstep}")
    if args.out:
        print(f"saved: {write_trajectory(points, args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
