"""Shared bench infrastructure.

* Scale control: benches default to a CI-friendly fraction of the paper's
  setup (8 jobs per application instead of 30).  Set ``REPRO_FULL=1`` to run
  the full §VI-A configuration.
* Result cache: several figures share the same underlying experiment runs
  (Fig. 7 and Fig. 8 both need standalone-vs-custody sweeps), so runs are
  memoised per process.
* Printing: pytest captures stdout, so benches print their figure tables
  through ``emit`` which writes via ``__stderr__`` — visible under
  ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment

FULL_SCALE = os.environ.get("REPRO_FULL", "") == "1"

#: Jobs per application (paper: 30) and applications (paper: 4).
JOBS_PER_APP = 30 if FULL_SCALE else 8
NUM_APPS = 4
#: Cluster sizes of Fig. 7/8's panels.
CLUSTER_SIZES = (25, 50, 100)
WORKLOADS = ("pagerank", "wordcount", "sort")
SEED = 0

_cache: Dict[Tuple, ExperimentResult] = {}


def cached_run(config: ExperimentConfig) -> ExperimentResult:
    """run_experiment memoised on the (hashable, frozen) config."""
    key = tuple(sorted(config.__dict__.items()))
    result = _cache.get(key)
    if result is None:
        result = run_experiment(config)
        _cache[key] = result
    return result


def paper_config(workload: str, num_nodes: int, manager: str, **overrides) -> ExperimentConfig:
    """The §VI-A configuration at bench scale."""
    params = dict(
        manager=manager,
        workload=workload,
        num_nodes=num_nodes,
        num_apps=NUM_APPS,
        jobs_per_app=JOBS_PER_APP,
        seed=SEED,
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def compare(workload: str, num_nodes: int, **overrides) -> Dict[str, ExperimentResult]:
    """Standalone vs Custody on the shared trace."""
    return {
        manager: cached_run(paper_config(workload, num_nodes, manager, **overrides))
        for manager in ("standalone", "custody")
    }


def ablation_sweep(
    key: str,
    values: Sequence[Any],
    overrides: Callable[[Any], Dict[str, Any]],
    *,
    workload: str = "wordcount",
    num_nodes: int = 50,
    row_value: Optional[Callable[[Any], Any]] = None,
    extra: Optional[Tuple[str, str]] = None,
    managers: Sequence[str] = ("standalone", "custody"),
) -> List[Dict[str, Any]]:
    """The standalone-vs-custody parameter sweep every ablation bench runs.

    For each value, runs both managers on the paper configuration with
    ``overrides(value)`` applied and builds one row: ``{key: value,
    "<manager>": locality_mean, ...}``.  ``row_value`` remaps the stored
    value for display (e.g. bytes -> GB); ``extra=(suffix, attr)`` adds a
    second metric column per manager (e.g. ``("jct", "avg_jct")``).
    """
    rows: List[Dict[str, Any]] = []
    for value in values:
        row: Dict[str, Any] = {
            key: row_value(value) if row_value is not None else value
        }
        for manager in managers:
            metrics = cached_run(
                paper_config(workload, num_nodes, manager, **overrides(value))
            ).metrics
            row[manager] = metrics.locality_mean
            if extra is not None:
                suffix, attr = extra
                row[f"{manager}_{suffix}"] = getattr(metrics, attr)
        rows.append(row)
    return rows


def emit(text: str) -> None:
    """Print a figure table so it survives pytest's capture."""
    stream = sys.__stderr__ or sys.stderr
    stream.write("\n" + text + "\n")
    stream.flush()
