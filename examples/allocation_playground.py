#!/usr/bin/env python3
"""Allocation playground: the core algorithms on a hand-built instance.

Works entirely in :mod:`repro.core` — no simulator — so you can see exactly
what Algorithms 1+2 decide for a problem you describe, and compare against
the exact optimum and the LP relaxation's upper bound (§III).

The instance: three applications share nine executors; a hot pair of
executors (E0, E1) is wanted by everyone, plus each app has some private
demand.

Usage::

    python examples/allocation_playground.py
"""

from repro.core.allocation import two_level_allocate
from repro.core.demand import AppDemand, JobDemand, TaskDemand, validate_plan
from repro.core.flownetwork import (
    ConcurrentFlowInstance,
    brute_force_optimum,
    lp_concurrent_flow_bound,
)
from repro.core.intraapp import plan_value
from repro.metrics.report import format_table

EXECUTORS = [f"E{i}" for i in range(9)]


def build_apps():
    """Three tenants; everyone wants the hot executors E0/E1."""

    def t(tid, *cands):
        return TaskDemand.of(tid, cands)

    return [
        AppDemand(
            app_id="analytics",
            jobs=(
                JobDemand("an-etl", (t("an-etl-0", "E0"), t("an-etl-1", "E2"))),
                JobDemand("an-adhoc", (t("an-adhoc-0", "E1"),)),
            ),
            quota=3,
        ),
        AppDemand(
            app_id="ml-train",
            jobs=(
                JobDemand("ml-epoch", (t("ml-0", "E0", "E3"), t("ml-1", "E1", "E4"))),
            ),
            quota=3,
        ),
        AppDemand(
            app_id="reporting",
            jobs=(
                JobDemand("rp-daily", (t("rp-0", "E0"),)),
                JobDemand("rp-weekly", (t("rp-1", "E1"), t("rp-2", "E5"))),
            ),
            quota=3,
        ),
    ]


def main() -> None:
    apps = build_apps()

    plan = two_level_allocate(apps, EXECUTORS, fill=False)
    validate_plan(plan, apps, EXECUTORS)

    rows = []
    for app in apps:
        local_jobs, credit = plan_value(
            {t: e for t, e in plan.assignment.items()
             if any(t == td.task_id for j in app.jobs for td in j.tasks)},
            app,
        )
        rows.append(
            [
                app.app_id,
                " ".join(sorted(plan.executors_of(app.app_id))) or "-",
                local_jobs,
                f"{credit:.2f}",
            ]
        )
    print(
        format_table(
            ["app", "granted executors", "fully-local jobs", "Σ 1/µ credit"],
            rows,
            title="Two-level allocation (Algorithms 1 + 2)",
        ),
        end="\n\n",
    )
    print("Task promises:")
    for task_id, executor in sorted(plan.assignment.items()):
        print(f"  {task_id:12s} -> {executor}")
    print()

    instance = ConcurrentFlowInstance.of(apps, EXECUTORS)
    lp = lp_concurrent_flow_bound(instance)
    optimum, ownership = brute_force_optimum(instance)
    heuristic_fracs = []
    for app in apps:
        satisfied = sum(
            1 for j in app.jobs for t in j.tasks if t.task_id in plan.assignment
        )
        heuristic_fracs.append(satisfied / app.total_unsatisfied)
    print(
        format_table(
            ["quantity", "min-locality fraction"],
            [
                ["LP relaxation λ* (upper bound)", f"{lp:.3f}"],
                ["exact integral optimum", f"{optimum:.3f}"],
                ["two-level heuristic", f"{min(heuristic_fracs):.3f}"],
            ],
            title="Theory check (§III)",
        )
    )
    hot = {e: ownership.get(e, "-") for e in ("E0", "E1")}
    print(f"\nOne optimal ownership of the hot executors: {hot}")


if __name__ == "__main__":
    main()
