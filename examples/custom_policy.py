#!/usr/bin/env python3
"""Extending the framework: a custom cluster manager and placement policy.

Shows the extension points a downstream user has:

1. A custom :class:`ClusterManager` — here ``GreedyLocalityManager``, which
   is data-aware like Custody but serves applications first-come-first-
   served with **no** max-min fairness (no Algorithm 1).  Comparing it with
   Custody isolates the value of the inter-application level.
2. A custom :class:`PlacementPolicy` — ``CornerRackPlacement``, which packs
   all replicas into the first rack, a pathological layout that stresses
   both managers.

The example wires these into the simulator by hand (the same assembly
`repro.experiments.runner` does), so it doubles as a tour of the API.

Usage::

    python examples/custom_policy.py
"""

from typing import List

import numpy as np

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.common.rng import RngStreams
from repro.common.units import BlockSpec, MB
from repro.core.demand import AppDemand, JobDemand, TaskDemand
from repro.core.intraapp import greedy_intra_app
from repro.hdfs.filesystem import HDFS
from repro.hdfs.placement import PlacementPolicy
from repro.managers.base import ClusterManager
from repro.managers.custody import CustodyManager
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import comparison_table
from repro.network.fabric import NetworkFabric
from repro.scheduling.driver import ApplicationDriver
from repro.scheduling.policies import DelayScheduler
from repro.simulation.engine import Simulation
from repro.workload.application import Application
from repro.workload.generators import JobFactory, profile_by_name
from repro.workload.trace import common_schedule


class GreedyLocalityManager(ClusterManager):
    """Data-aware allocation without inter-application fairness.

    On every job boundary each application (in registration order, i.e.
    first come, first served) greedily grabs the free executors its pending
    input tasks want, via Algorithm 2's intra-app procedure only.
    """

    name = "greedy-locality"

    def on_job_submitted(self, driver, job):
        self._serve_all()

    def on_job_finished(self, driver, job):
        self._serve_all()

    def _serve_all(self):
        self.allocation_rounds += 1
        for driver in self.drivers.values():  # fixed order: no fairness
            free_by_node = {}
            for executor in self.free_pool():
                free_by_node.setdefault(executor.node_id, []).append(
                    executor.executor_id
                )
            owned = {e.node_id for e in driver.executors}
            jobs = {}
            for task in driver.runnable_tasks:
                if not task.is_input or task.started_at is not None:
                    continue
                replica_nodes = driver.hdfs.namenode.locations(task.block.block_id)
                if owned & set(replica_nodes):
                    continue
                candidates = [
                    ex for n in replica_nodes for ex in free_by_node.get(n, ())
                ]
                jobs.setdefault(task.job_id, []).append(
                    TaskDemand.of(task.task_id, candidates)
                )
            if not jobs:
                continue
            demand = AppDemand(
                app_id=driver.app_id,
                jobs=tuple(JobDemand(j, tuple(ts)) for j, ts in sorted(jobs.items())),
                quota=self.quota,
                held=min(driver.executor_count, self.quota),
            )
            result = greedy_intra_app(
                demand, [e.executor_id for e in self.free_pool()]
            )
            for executor_id in result.granted:
                self.grant(driver, self.cluster.executor(executor_id))


class CornerRackPlacement(PlacementPolicy):
    """Pathological placement: every replica lands in the first rack."""

    def choose_nodes(self, block, count, node_ids, topology, rng) -> List[str]:
        first_rack = topology.nodes_in(topology.racks[0].rack_id)
        count = min(count, len(first_rack))
        picks = rng.choice(len(first_rack), size=count, replace=False)
        return [first_rack[int(i)] for i in picks]


def run(manager_factory, label: str):
    """Assemble the full stack by hand and run one 4-app trace."""
    streams = RngStreams(seed=3)
    sim = Simulation()
    fabric = NetworkFabric(sim)
    cluster = Cluster(
        ClusterConfig(num_nodes=24, executors_per_node=2, executor_slots=4,
                      nodes_per_rack=8),
        fabric=fabric,
    )
    hdfs = HDFS(
        cluster,
        block_spec=BlockSpec(size=128 * MB, replication=3),
        placement=CornerRackPlacement(),
        rng=streams.get("hdfs.placement"),
    )
    factory = JobFactory(hdfs, streams.get("workload.jobs"), pool_size=4)
    profile = profile_by_name("wordcount")
    app_ids = [f"app-{i}" for i in range(4)]
    trace = common_schedule(app_ids, 6, streams.get("workload.arrivals"))

    manager = manager_factory(sim, cluster)
    drivers = {}
    for app_id in app_ids:
        driver = ApplicationDriver(
            sim, Application(app_id), cluster, hdfs, fabric, DelayScheduler(wait=3.0)
        )
        drivers[app_id] = driver
        manager.register_driver(driver)
    jobs = {
        (e.app_id, e.job_index): factory.build_job(e.app_id, profile)
        for e in trace
    }
    for event in trace:
        sim.schedule_at(event.time, drivers[event.app_id].submit_job,
                        jobs[(event.app_id, event.job_index)])
    sim.run()
    return MetricsCollector().collect([d.app for d in drivers.values()])


def main() -> None:
    print("All replicas packed into rack 0 (8 of 24 nodes) — a hot-rack stress test\n")
    results = {
        "greedy-locality": run(
            lambda sim, cluster: GreedyLocalityManager(sim, cluster, num_apps=4),
            "greedy",
        ),
        "custody": run(
            lambda sim, cluster: CustodyManager(sim, cluster, num_apps=4),
            "custody",
        ),
    }
    print(comparison_table(results, title="Custom manager vs Custody"))
    print()
    print(
        "Note the fairness column: without Algorithm 1's MINLOCALITY ordering\n"
        "the first-registered apps monopolise the hot rack's executors."
    )


if __name__ == "__main__":
    main()
