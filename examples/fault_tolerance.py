#!/usr/bin/env python3
"""Fault tolerance: stragglers, crashes and disk loss under Custody.

Injects a hostile environment into a Custody-managed cluster —

* 20% of nodes run 8x slower for the whole run (stragglers),
* three executors crash mid-run and restart after 10 s,
* one DataNode loses its disk (all replicas) and HDFS re-replicates —

and compares three configurations: a healthy baseline, the faulty run, and
the faulty run with speculative execution enabled.  Every job still
completes in all three; speculation claws back most of the straggler
damage.

Usage::

    python examples/fault_tolerance.py
"""

from repro import ExperimentConfig, run_experiment
from repro.faults.plan import DiskFailure, ExecutorFailure, FaultPlan, NodeSlowdown
from repro.metrics.report import format_table

BASE = ExperimentConfig(
    manager="custody",
    workload="sort",
    num_nodes=30,
    num_apps=4,
    jobs_per_app=6,
    seed=17,
)


def hostile_plan() -> FaultPlan:
    """Stragglers + crashes + disk loss."""
    plan = FaultPlan(
        [
            NodeSlowdown(at=0.0, node_id=f"worker-{i:03d}", duration=1e6, factor=8.0)
            for i in range(6)
        ]
    )
    for i, executor in enumerate(("executor-010", "executor-021", "executor-032")):
        plan.add(ExecutorFailure(at=15.0 + 5 * i, executor_id=executor, restart_delay=10.0))
    plan.add(DiskFailure(at=25.0, node_id="worker-015"))
    return plan


def main() -> None:
    rows = []
    scenarios = [
        ("healthy", False, None),
        ("faulty", False, hostile_plan()),
        ("faulty + speculation", True, hostile_plan()),
    ]
    results = {}
    for label, speculation, plan in scenarios:
        config = ExperimentConfig(
            **{**BASE.__dict__, "speculation": speculation}
        )
        result = run_experiment(config, fault_plan=plan)
        results[label] = result
        injector = result.fault_injector
        rows.append(
            [
                label,
                result.metrics.finished_jobs,
                result.metrics.avg_jct,
                result.speculative_launches or "-",
                injector.tasks_requeued if injector else "-",
                f"{injector.replicas_lost}/{injector.replicas_restored}"
                if injector
                else "-",
            ]
        )

    print("6/30 nodes 8x slow, 3 executor crashes, 1 disk loss\n")
    print(
        format_table(
            ["scenario", "jobs done", "avg JCT (s)", "clones", "requeued",
             "replicas lost/restored"],
            rows,
            title="Custody under faults",
        )
    )
    healthy = results["healthy"].metrics.avg_jct
    faulty = results["faulty"].metrics.avg_jct
    rescued = results["faulty + speculation"].metrics.avg_jct
    recovered = (faulty - rescued) / (faulty - healthy) if faulty > healthy else 1.0
    print(
        f"\nStraggler damage: {faulty - healthy:+.1f} s avg JCT; "
        f"speculation recovered {100 * recovered:.0f}% of it."
    )


if __name__ == "__main__":
    main()
