#!/usr/bin/env python3
"""Multi-tenant contention: max-min fairness on hot datasets.

The scenario §IV-A motivates: several applications repeatedly analyse the
same *popular* datasets (a steep Zipf skew over a small file pool), so the
executors on replica-holding nodes become contested.  The example compares
how evenly each manager distributes *perfect-locality jobs* across tenants,
reporting the per-application local-job fraction, the max-min objective
(the worst tenant), and Jain's fairness index.

Usage::

    python examples/multi_tenant_contention.py
"""

from repro import ExperimentConfig, run_experiment
from repro.core.fairness import jains_index
from repro.metrics.locality import local_job_fraction
from repro.metrics.report import format_table


def main() -> None:
    base = ExperimentConfig(
        workload="pagerank",       # fixed-size jobs -> clean job-level locality
        num_nodes=30,
        num_apps=4,
        jobs_per_app=10,
        pool_size=3,               # tiny pool -> heavy contention
        popularity_skew=2.0,       # steep Zipf: one file is white-hot
        seed=7,
    )

    print("4 tenants, 3-file hot pool (Zipf 2.0), 30 nodes, PageRank jobs\n")

    rows = []
    summary = {}
    for manager in ("standalone", "yarn", "mesos", "custody"):
        result = run_experiment(base.with_manager(manager))
        fractions = local_job_fraction(result.apps)
        summary[manager] = fractions
        rows.append(
            [
                manager,
                *[100 * f for f in fractions],
                100 * min(fractions),
                jains_index([f + 1e-12 for f in fractions]),
            ]
        )

    print(
        format_table(
            ["manager", "app-00 %", "app-01 %", "app-02 %", "app-03 %",
             "worst app %", "Jain"],
            rows,
            title="Perfectly-local jobs per tenant (the Eq. 6 objective)",
        )
    )

    custody_worst = min(summary["custody"])
    spark_worst = min(summary["standalone"])
    print()
    print(
        f"Max-min objective (worst tenant): custody {100 * custody_worst:.1f}% "
        f"vs standalone {100 * spark_worst:.1f}%"
    )


if __name__ == "__main__":
    main()
