#!/usr/bin/env python3
"""Parameter sweep: map Custody's advantage across the design space.

Sweeps cluster size × replication level for both managers, prints the
locality-gain surface and writes the raw rows to CSV for external
plotting.  Demonstrates :func:`repro.experiments.sweeps.sweep` — the
general tool behind the figure benches.

Usage::

    python examples/parameter_sweep.py [output.csv]
"""

import sys

from repro import ExperimentConfig
from repro.experiments.sweeps import rows_to_csv, sweep
from repro.metrics.report import format_table


def main() -> None:
    base = ExperimentConfig(
        workload="wordcount", num_apps=2, jobs_per_app=4, seed=11
    )
    print("Sweeping cluster size x replication x manager (8 runs)...\n")
    rows = sweep(
        base,
        grid={
            "manager": ["standalone", "custody"],
            "num_nodes": [20, 40],
            "replication": [1, 3],
        },
        extract={
            "locality": lambda r: r.metrics.locality_mean,
            "jct": lambda r: r.metrics.avg_jct,
        },
    )

    # Pivot: one output row per (nodes, replication) with both managers.
    by_point = {}
    for row in rows:
        key = (row["num_nodes"], row["replication"])
        by_point.setdefault(key, {})[row["manager"]] = row
    table = []
    for (nodes, repl), managers in sorted(by_point.items()):
        spark, custody = managers["standalone"], managers["custody"]
        gain = (custody["locality"] - spark["locality"]) / spark["locality"]
        table.append(
            [
                nodes,
                repl,
                100 * spark["locality"],
                100 * custody["locality"],
                100 * gain,
                spark["jct"],
                custody["jct"],
            ]
        )
    print(
        format_table(
            ["nodes", "replicas", "spark loc%", "custody loc%", "gain%",
             "spark JCT", "custody JCT"],
            table,
            title="Custody's advantage across the design space",
        )
    )

    out = sys.argv[1] if len(sys.argv) > 1 else "/tmp/custody_sweep.csv"
    path = rows_to_csv(rows, out)
    print(f"\nraw rows written to {path}")
    print(
        "\nReading the surface: the gain is largest where replicas are "
        "scarce\n(replication 1) — exactly where picking the *right* "
        "executors matters most."
    )


if __name__ == "__main__":
    main()
