#!/usr/bin/env python3
"""Quickstart: Custody vs Spark standalone on one workload.

Runs the same WordCount trace (4 applications x 8 jobs, exponential
arrivals) on a 50-node simulated cluster under both cluster managers and
prints the side-by-side metrics the paper's evaluation reports.

Usage::

    python examples/quickstart.py [num_nodes] [jobs_per_app]
"""

import sys

from repro import ExperimentConfig, run_experiment
from repro.metrics.report import comparison_table


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    jobs_per_app = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    base = ExperimentConfig(
        workload="wordcount",
        num_nodes=num_nodes,
        num_apps=4,
        jobs_per_app=jobs_per_app,
        seed=0,
    )

    print(f"Simulating {num_nodes} nodes, 4 apps x {jobs_per_app} WordCount jobs ...")
    results = {}
    for manager in ("standalone", "custody"):
        result = run_experiment(base.with_manager(manager))
        results[manager] = result.metrics
        print(
            f"  {manager:11s}: {result.metrics.finished_jobs} jobs finished, "
            f"simulated {result.sim_time:.0f} s of cluster time, "
            f"{result.allocation_rounds} allocation rounds"
        )

    print()
    print(comparison_table(results, title="Custody vs Spark standalone"))

    spark, custody = results["standalone"], results["custody"]
    gain = (custody.locality_mean - spark.locality_mean) / spark.locality_mean
    reduction = (spark.avg_jct - custody.avg_jct) / spark.avg_jct
    print()
    print(f"Locality gain:  {100 * gain:+.1f}%   (paper, 100 nodes: +36.9%)")
    print(f"JCT reduction:  {100 * reduction:+.1f}%   (paper, 100 nodes: -14.9%)")


if __name__ == "__main__":
    main()
