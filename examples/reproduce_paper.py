#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation in one run.

Prints the Fig. 7/8/9/10 series, the abstract's headline numbers, and the
three worked micro-examples (Fig. 1, 3, 4/5).  Pass ``--full`` for the
paper's 30-jobs-per-app scale (slower); the default uses 8 jobs per app.

Usage::

    python examples/reproduce_paper.py [--full]
"""

import sys

from repro.experiments.figures import (
    figure7_locality,
    figure8_jct,
    figure9_input_stage,
    figure10_scheduler_delay,
    headline_numbers,
)
from repro.experiments.scenarios import (
    fig1_motivating_example,
    fig3_interapp_example,
    fig45_intraapp_example,
)
from repro.metrics.report import format_table


def main() -> None:
    full = "--full" in sys.argv
    jobs = 30 if full else 8
    scale = dict(jobs_per_app=jobs, num_apps=4, seed=0)
    print(f"Scale: 4 apps x {jobs} jobs{' (paper scale)' if full else ''}\n")

    # ------------------------------------------------------- micro-examples
    fig1 = fig1_motivating_example()
    print(
        format_table(
            ["app", "data-unaware", "data-aware"],
            [[a, fig1.data_unaware[a], fig1.data_aware[a]] for a in sorted(fig1.data_unaware)],
            title="Fig. 1 — motivating example (task locality fraction)",
        ),
        end="\n\n",
    )
    fig3 = fig3_interapp_example()
    print(
        format_table(
            ["app", "naive fair", "locality fair"],
            [[a, fig3.naive_fair[a], fig3.locality_fair[a]] for a in sorted(fig3.naive_fair)],
            title="Fig. 3 — local jobs per app under inter-app strategies",
        ),
        end="\n\n",
    )
    fig45 = fig45_intraapp_example()
    print(
        format_table(
            ["strategy", "avg JCT (time units)"],
            [["fairness-based", fig45.fairness_avg], ["priority-based", fig45.priority_avg]],
            title="Fig. 5 — intra-app strategies (paper: 2.0 vs 1.25)",
        ),
        end="\n\n",
    )

    # --------------------------------------------------------------- figures
    print("Running Fig. 7/8 sweeps (3 workloads x 3 cluster sizes x 2 managers)...\n")
    rows7 = figure7_locality(**scale)
    print(
        format_table(
            ["cluster", "workload", "spark loc%", "custody loc%", "gain%"],
            [
                [r["cluster_size"], r["workload"], 100 * r["spark_locality"],
                 100 * r["custody_locality"], 100 * r["gain"]]
                for r in rows7
            ],
            title="Fig. 7 — % local input tasks",
        ),
        end="\n\n",
    )
    rows8 = figure8_jct(**scale)
    print(
        format_table(
            ["cluster", "workload", "spark JCT", "custody JCT", "reduction%"],
            [
                [r["cluster_size"], r["workload"], r["spark_jct"], r["custody_jct"],
                 100 * r["reduction"]]
                for r in rows8
            ],
            title="Fig. 8 — average job completion time (s)",
        ),
        end="\n\n",
    )
    rows9 = figure9_input_stage(**scale)
    print(
        format_table(
            ["workload", "spark input stage", "custody input stage"],
            [[r["workload"], r["spark_input_stage"], r["custody_input_stage"]] for r in rows9],
            title="Fig. 9 — average input-stage time, 100 nodes (s)",
        ),
        end="\n\n",
    )
    rows10 = figure10_scheduler_delay(**scale)
    print(
        format_table(
            ["cluster", "spark delay", "custody delay"],
            [[r["cluster_size"], r["spark_delay"], r["custody_delay"]] for r in rows10],
            title="Fig. 10 — average scheduler delay (s)",
        ),
        end="\n\n",
    )

    headline = headline_numbers(**scale)
    print(
        format_table(
            ["metric", "paper", "measured"],
            [
                ["locality gain %", 36.9, 100 * headline["locality_gain_mean"]],
                ["JCT reduction %", 14.9, 100 * headline["jct_reduction_mean"]],
            ],
            title="Headline numbers (100-node cluster, 3-workload mean)",
        )
    )


if __name__ == "__main__":
    main()
