"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so environments
without the ``wheel`` package (where PEP 660 editable installs cannot build)
can still do ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
