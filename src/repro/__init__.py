"""Custody reproduction: data-aware resource sharing for big-data clusters.

A full Python reproduction of *"Custody: Towards Data-Aware Resource Sharing
in Cloud-Based Big Data Processing"* (Ma, Jiang, Li & Li, IEEE CLUSTER
2016), built on an in-package discrete-event cluster simulator.

Quick start::

    from repro import ExperimentConfig, run_experiment

    spark = run_experiment(ExperimentConfig(manager="standalone",
                                            workload="wordcount",
                                            num_nodes=25, jobs_per_app=5))
    custody = run_experiment(ExperimentConfig(manager="custody",
                                              workload="wordcount",
                                              num_nodes=25, jobs_per_app=5))
    print(custody.metrics.locality_mean, "vs", spark.metrics.locality_mean)

Subpackages
-----------
``repro.core``
    The paper's contribution: Algorithms 1 & 2, the flow-network theory,
    matching solvers, fairness predicates.
``repro.managers``
    Cluster managers: Custody plus the Standalone / YARN / Mesos baselines.
``repro.simulation`` / ``repro.cluster`` / ``repro.network`` / ``repro.hdfs``
    The substrate: deterministic DES engine, worker/executor model,
    flow-level network, simulated HDFS.
``repro.workload`` / ``repro.scheduling``
    PageRank / WordCount / Sort generators, submission traces, delay
    scheduling, the application driver.
``repro.metrics`` / ``repro.experiments``
    Figure metrics and the end-to-end experiment harness.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment

__version__ = "1.0.0"

__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment", "__version__"]
