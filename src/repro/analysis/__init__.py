"""Analytical expectations used to validate the simulator.

A simulator is only trustworthy against closed forms it can be checked on.
This package derives the quantities the evaluation's *shape* rests on —
replica coverage probabilities, random-allocation node coverage, the
locality upper bound of a data-unaware allocation, and uncontended
transfer times — so tests can assert the measured behaviour converges to
them (see ``tests/analysis/``).
"""

from repro.analysis.expectations import (
    expected_node_coverage,
    expected_random_allocation_locality,
    prob_block_covered,
    uncontended_read_time,
)

__all__ = [
    "expected_node_coverage",
    "expected_random_allocation_locality",
    "prob_block_covered",
    "uncontended_read_time",
]
