"""Closed-form expectations for locality under random allocation.

The baseline's locality in Fig. 7 is, to first order, a coverage problem:

* A block's *r* replicas land on *r* distinct nodes chosen uniformly from
  *N* (the paper's storage model, §II).
* A data-unaware manager hands an application *q* of the *E* executors at
  random; with *e* executors per node those executors cover some set of
  nodes.
* An input task can run locally iff at least one replica node is covered —
  a hypergeometric event.

These functions compute those quantities exactly, giving the simulator a
ground truth to converge to (slot contention and delay-wait expiry only
*lower* achieved locality, so the closed form is also an upper bound on
the measured baseline).
"""

from __future__ import annotations

from math import comb

from repro.common.errors import ConfigurationError

__all__ = [
    "prob_block_covered",
    "expected_node_coverage",
    "expected_random_allocation_locality",
    "uncontended_read_time",
    "degraded_capacity_ratio",
    "expected_brownout_inflation",
]


def prob_block_covered(num_nodes: int, covered_nodes: int, replication: int) -> float:
    """P(a block has ≥1 replica on a covered node).

    Replicas occupy ``replication`` distinct nodes uniformly at random among
    ``num_nodes``; ``covered_nodes`` of them are covered.  Hypergeometric:
    ``1 − C(N − c, r) / C(N, r)``.
    """
    if not (0 <= covered_nodes <= num_nodes):
        raise ConfigurationError(
            f"covered_nodes must be in [0, {num_nodes}], got {covered_nodes}"
        )
    if not (1 <= replication <= num_nodes):
        raise ConfigurationError(
            f"replication must be in [1, {num_nodes}], got {replication}"
        )
    uncovered = num_nodes - covered_nodes
    if replication > uncovered:
        return 1.0
    return 1.0 - comb(uncovered, replication) / comb(num_nodes, replication)


def expected_node_coverage(
    num_nodes: int, executors_per_node: int, picked: int
) -> float:
    """E[distinct nodes covered] when ``picked`` of the ``N·e`` executors are
    drawn uniformly without replacement.

    Per node, P(no executor picked) = ``C(E − e, q) / C(E, q)``; linearity
    of expectation sums the complements.
    """
    if num_nodes < 1 or executors_per_node < 1:
        raise ConfigurationError("num_nodes and executors_per_node must be >= 1")
    total = num_nodes * executors_per_node
    if not (0 <= picked <= total):
        raise ConfigurationError(f"picked must be in [0, {total}], got {picked}")
    if picked > total - executors_per_node:
        return float(num_nodes)  # every node necessarily holds a pick
    p_node_missed = comb(total - executors_per_node, picked) / comb(total, picked)
    return num_nodes * (1.0 - p_node_missed)


def expected_random_allocation_locality(
    num_nodes: int,
    executors_per_node: int,
    quota: int,
    replication: int,
) -> float:
    """Upper bound on the baseline's task locality (Fig. 7's mechanism).

    A data-unaware manager gives an application ``quota`` random executors;
    an input task *can* be local iff some replica node is covered.  The
    bound treats coverage as its expectation and ignores slot contention
    and delay-wait expiry — both only reduce achieved locality — so it
    upper-bounds (and with light load, approximates) the measured value.
    """
    coverage = expected_node_coverage(num_nodes, executors_per_node, quota)
    return prob_block_covered(num_nodes, round(coverage), replication)


def uncontended_read_time(size: float, uplink: float, downlink: float) -> float:
    """Seconds to move ``size`` bytes over an otherwise-idle path.

    A single flow's max-min rate is the min of the two NIC capacities.
    """
    if size < 0:
        raise ConfigurationError(f"size must be >= 0, got {size}")
    if uplink <= 0 or downlink <= 0:
        raise ConfigurationError("NIC capacities must be positive")
    return size / min(uplink, downlink)


def _validate_brownout(num_nodes: int, slowed: int, factor: float) -> None:
    if num_nodes < 1:
        raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
    if not (0 <= slowed <= num_nodes):
        raise ConfigurationError(
            f"slowed must be in [0, {num_nodes}], got {slowed}"
        )
    if factor < 1.0:
        raise ConfigurationError(f"slowdown factor must be >= 1, got {factor}")


def degraded_capacity_ratio(num_nodes: int, slowed: int, factor: float) -> float:
    """Deliverable compute fraction with ``slowed`` of ``num_nodes`` nodes
    running at ``1/factor`` speed: ``(n − k + k/s) / n``.

    The brownout capacity closed form: a slowed node still contributes, at
    a fraction of its rate.  This is the admission controller's view of a
    gray cluster, and the denominator of the throughput-bound JCT
    inflation under saturation.
    """
    _validate_brownout(num_nodes, slowed, factor)
    return (num_nodes - slowed + slowed / factor) / num_nodes


def expected_brownout_inflation(num_nodes: int, slowed: int, factor: float) -> float:
    """Expected mean task-service inflation under uniform placement:
    ``1 + (k/n)(s − 1)``.

    With ``k`` of ``n`` nodes slowed by ``s`` and tasks landing uniformly,
    a fraction ``k/n`` of compute takes ``s×`` as long.  Under light load
    (no queueing behind slowed slots) mean JCT inflates by at most this
    much; any single slowed job inflates by at most ``s``.  So measured
    mean-JCT inflation must land in ``[1, 1 + (k/n)(s − 1)]`` up to
    scheduling noise — the derived band the brownout scenario pins.
    """
    _validate_brownout(num_nodes, slowed, factor)
    return 1.0 + (slowed / num_nodes) * (factor - 1.0)
