"""Closed-form queueing results the simulator must reproduce.

The validation scenarios (:mod:`repro.scenarios`) drive small Markovian
queues through the discrete-event engine and compare the measured means
against these textbook formulas.  Everything here is exact arithmetic on
the model parameters — no simulation, no randomness — so a disagreement
is always the simulator's fault (or a tolerance band set too tight).

Conventions
-----------
``lam`` is the arrival rate λ (customers/second), ``mu`` the per-server
service rate μ, ``servers`` the server count *c*.  "Wait" means time in
queue (Wq); "sojourn" means queueing plus service (W = Wq + 1/μ).  All
formulas require a stable queue (offered load strictly below capacity).
"""

from __future__ import annotations

from math import factorial
from typing import Sequence, Tuple

from repro.common.errors import ConfigurationError

__all__ = [
    "utilization",
    "mm1_mean_wait",
    "mm1_mean_sojourn",
    "mm1_mean_number_in_system",
    "mm1_mean_queue_length",
    "erlang_c",
    "mmc_mean_wait",
    "mmc_mean_sojourn",
    "mmc_mean_number_in_system",
    "priority_mm1_waits",
]


def _check_rates(lam: float, mu: float, servers: int = 1) -> float:
    if lam <= 0 or mu <= 0:
        raise ConfigurationError(f"rates must be positive, got lam={lam}, mu={mu}")
    if servers < 1:
        raise ConfigurationError(f"servers must be >= 1, got {servers}")
    rho = lam / (servers * mu)
    if rho >= 1.0:
        raise ConfigurationError(
            f"unstable queue: offered load {rho:.3f} >= 1 "
            f"(lam={lam}, mu={mu}, servers={servers})"
        )
    return rho


def utilization(lam: float, mu: float, servers: int = 1) -> float:
    """Offered load ρ = λ / (cμ); must be < 1 for a stable queue."""
    return _check_rates(lam, mu, servers)


# ------------------------------------------------------------------- M/M/1
def mm1_mean_wait(lam: float, mu: float) -> float:
    """E[Wq] for M/M/1: ρ / (μ − λ).

    The hockey-stick curve the validation suite probes: the wait is *not*
    linear in load — it diverges as ρ → 1, which a broken event loop
    (dropped wake-ups, mis-ordered same-time events) flattens or shifts.
    """
    rho = _check_rates(lam, mu)
    return rho / (mu - lam)


def mm1_mean_sojourn(lam: float, mu: float) -> float:
    """E[W] for M/M/1: 1 / (μ − λ)."""
    _check_rates(lam, mu)
    return 1.0 / (mu - lam)


def mm1_mean_number_in_system(lam: float, mu: float) -> float:
    """E[L] for M/M/1: ρ / (1 − ρ)  (Little: L = λ·W)."""
    rho = _check_rates(lam, mu)
    return rho / (1.0 - rho)


def mm1_mean_queue_length(lam: float, mu: float) -> float:
    """E[Lq] for M/M/1: ρ² / (1 − ρ)  (Little: Lq = λ·Wq)."""
    rho = _check_rates(lam, mu)
    return rho * rho / (1.0 - rho)


# ------------------------------------------------------------------- M/M/c
def erlang_c(lam: float, mu: float, servers: int) -> float:
    """Erlang-C: P(an arriving customer must queue) for M/M/c.

    ``C(c, a) = (a^c / (c! (1 − ρ))) / (Σ_{k<c} a^k/k! + a^c/(c!(1 − ρ)))``
    with offered traffic ``a = λ/μ`` and ρ = a/c.
    """
    rho = _check_rates(lam, mu, servers)
    a = lam / mu
    tail = (a**servers) / (factorial(servers) * (1.0 - rho))
    head = sum((a**k) / factorial(k) for k in range(servers))
    return tail / (head + tail)


def mmc_mean_wait(lam: float, mu: float, servers: int) -> float:
    """E[Wq] for M/M/c: C(c, λ/μ) / (cμ − λ)."""
    return erlang_c(lam, mu, servers) / (servers * mu - lam)


def mmc_mean_sojourn(lam: float, mu: float, servers: int) -> float:
    """E[W] for M/M/c: Wq + 1/μ."""
    return mmc_mean_wait(lam, mu, servers) + 1.0 / mu


def mmc_mean_number_in_system(lam: float, mu: float, servers: int) -> float:
    """E[L] for M/M/c via Little's law: λ · E[W]."""
    return lam * mmc_mean_sojourn(lam, mu, servers)


# --------------------------------------------------- nonpreemptive priority
def priority_mm1_waits(
    lams: Sequence[float], mu: float
) -> Tuple[float, ...]:
    """Per-class E[Wq] for a nonpreemptive priority M/M/1.

    ``lams`` lists class arrival rates from highest priority to lowest;
    every class shares the exponential service rate ``mu``.  The classic
    Cobham result with mean residual work ``W0 = Σ λ_i E[S²]/2 = Λ/μ²``:

        Wq_k = W0 / ((1 − σ_{k−1}) (1 − σ_k)),   σ_k = Σ_{i≤k} ρ_i

    The low-priority class's wait explodes as total load approaches 1
    while the top class stays near the empty-system residual — the
    starvation signature the priority scenario asserts.
    """
    if not lams:
        raise ConfigurationError("priority_mm1_waits needs at least one class")
    total = sum(lams)
    _check_rates(total, mu)
    if any(lam <= 0 for lam in lams):
        raise ConfigurationError(f"class rates must be positive, got {list(lams)}")
    w0 = total / (mu * mu)
    waits = []
    sigma_prev = 0.0
    sigma = 0.0
    for lam in lams:
        sigma += lam / mu
        waits.append(w0 / ((1.0 - sigma_prev) * (1.0 - sigma)))
        sigma_prev = sigma
    return tuple(waits)
