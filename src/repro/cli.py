"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    One experiment; prints the metrics and optionally saves JSON.
``compare``
    Several managers on the identical workload trace, side by side.
``figures``
    Regenerate a paper figure's series (7, 8, 9 or 10).
``scenarios``
    The worked micro-examples (Fig. 1, 3, 4/5) with exact expected numbers.
``perf``
    Network rate-engine scaling microbenchmark; writes ``BENCH_network.json``.
``chaos``
    Fault-injection sweep: the same seeded fault plan replayed against
    every manager at increasing fault rates.  ``--smoke`` is the CI gate.
``sweep``
    General config-grid sweep (Cartesian product of ``--grid`` fields)
    with CSV/JSON output.
Multi-cell commands (``chaos``, ``validate``, ``perf``, ``sweep``) take
``--jobs N`` to fan their independent cells out across worker processes;
the merged output is byte-identical to ``--jobs 1``.
``trace``
    One fully traced run (optionally under a chaos fault plan), exported as
    Chrome/Perfetto ``trace_event`` JSON — open the file in
    ``ui.perfetto.dev``.  ``--smoke`` is the observability CI gate.
``report``
    Render a metrics-snapshot scoreboard with SLO verdicts, or diff two
    snapshots with per-metric tolerances (nonzero exit on drift).
    ``--smoke`` is the metrics CI gate: a fixed chaos run with the
    registry on, SLOs evaluated and the Prometheus exposition
    round-tripped.

Examples::

    python -m repro run --manager custody --workload sort --nodes 50
    python -m repro compare --managers standalone,custody,yarn --nodes 25
    python -m repro figures --figure 7 --jobs-per-app 8
    python -m repro scenarios
    python -m repro perf --flows 100,1000,10000 --events 30
    python -m repro chaos --levels 0,1,2 --nodes 20 --detector-timeout 15
    python -m repro chaos --smoke --jobs 4
    python -m repro sweep --grid manager=standalone,custody --grid num_nodes=25,50 --jobs 4
    python -m repro trace --manager custody --faults 1 --out run.trace.json --summary
    python -m repro run --nodes 20 --metrics run.metrics.json
    python -m repro report run.metrics.json --prom run.prom
    python -m repro report --diff base.metrics.json pr.metrics.json --tolerance 0.05
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.common.units import GB
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure7_locality,
    figure8_jct,
    figure9_input_stage,
    figure10_scheduler_delay,
)
from repro.experiments.persistence import result_to_dict, save_result
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import (
    fig1_motivating_example,
    fig3_interapp_example,
    fig45_intraapp_example,
)
from repro.metrics.report import comparison_table, format_table
from repro.metrics.utilization import analyze_utilization

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Custody (CLUSTER 2016) reproduction: data-aware resource sharing.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", default="wordcount",
                       choices=["pagerank", "wordcount", "sort"])
        p.add_argument("--nodes", type=int, default=50, help="cluster size")
        p.add_argument("--apps", type=int, default=4, help="applications")
        p.add_argument("--jobs-per-app", type=int, default=8,
                       dest="jobs_per_app", help="jobs per application")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--delay-wait", type=float, default=3.0,
                       help="delay-scheduling locality wait (s)")
        p.add_argument("--replication", type=int, default=3)
        p.add_argument("--cache-gb", type=float, default=0.0,
                       help="in-memory block cache per node (GB)")
        p.add_argument("--kmn", type=float, default=None,
                       help="KMN fraction of inputs required (0,1]")
        p.add_argument("--speculation", action="store_true",
                       help="enable speculative execution")
        p.add_argument("--network-engine", default="incremental",
                       choices=["incremental", "reference", "vectorized"],
                       help="flow-rate allocator (reference = full recompute, "
                            "vectorized = numpy-bookkeeping kernel)")
        p.add_argument("--alloc-engine", default="incremental",
                       choices=["incremental", "reference", "vectorized"],
                       help="allocation control plane (reference = per-round "
                            "from-scratch demand rebuild, vectorized = "
                            "numpy demand bookkeeping)")
        p.add_argument("--per-event-alloc", action="store_true",
                       help="run one allocation round per job boundary instead "
                            "of coalescing same-instant boundaries")

    def add_jobs_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes to shard the sweep's cells "
                            "across (1 = run inline; output is identical "
                            "either way)")

    def add_trace_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", metavar="PATH", default=None,
                       help="also export a Chrome/Perfetto trace of the run "
                            "(open in ui.perfetto.dev); multi-run commands "
                            "insert the manager/level into the filename")

    run_p = sub.add_parser("run", help="run one experiment")
    add_common(run_p)
    add_trace_flag(run_p)
    run_p.add_argument("--manager", default="custody",
                       choices=["custody", "standalone", "yarn", "mesos"])
    run_p.add_argument("--save", metavar="PATH", default=None,
                       help="write the result as JSON")
    run_p.add_argument("--json", nargs="?", const="-", default=None,
                       metavar="PATH", dest="json_out",
                       help="emit the full result payload as JSON "
                            "(to stdout, or to PATH when given)")
    run_p.add_argument("--utilization", action="store_true",
                       help="also print a slot-utilization report")
    run_p.add_argument("--perf", action="store_true",
                       help="also print network hot-path perf counters")
    run_p.add_argument("--metrics", metavar="PATH", default=None,
                       dest="metrics_out",
                       help="attach the metrics registry and write its JSON "
                            "snapshot to PATH (render with 'repro report')")

    cmp_p = sub.add_parser("compare", help="compare managers on one trace")
    add_common(cmp_p)
    add_trace_flag(cmp_p)
    cmp_p.add_argument("--managers", default="standalone,custody",
                       help="comma-separated manager list")
    cmp_p.add_argument("--json", nargs="?", const="-", default=None,
                       metavar="PATH", dest="json_out",
                       help="emit per-manager result payloads as JSON "
                            "(to stdout, or to PATH when given)")

    fig_p = sub.add_parser("figures", help="regenerate a paper figure")
    fig_p.add_argument("--figure", required=True, choices=["7", "8", "9", "10"])
    fig_p.add_argument("--jobs-per-app", type=int, default=8, dest="jobs_per_app")
    fig_p.add_argument("--apps", type=int, default=4)
    fig_p.add_argument("--seed", type=int, default=0)

    sub.add_parser("scenarios", help="run the worked micro-examples")

    perf_p = sub.add_parser(
        "perf", help="rate-engine scaling microbenchmark (incremental vs reference)"
    )
    perf_p.add_argument("--flows", default="100,1000,10000",
                        help="comma-separated concurrent-flow counts")
    perf_p.add_argument("--events", type=int, default=30,
                        help="timed flow arrivals/departures per point")
    perf_p.add_argument("--seed", type=int, default=0)
    perf_p.add_argument("--pod-size", type=int, default=16,
                        help="traffic-locality pod size (0 = all-to-all worst case)")
    perf_p.add_argument("--out", metavar="PATH", default="BENCH_network.json",
                        help="trajectory JSON output path ('' to skip)")
    add_jobs_flag(perf_p)

    chaos_p = sub.add_parser(
        "chaos", help="fault-injection sweep: same fault plan, every manager"
    )
    add_common(chaos_p)
    add_trace_flag(chaos_p)
    chaos_p.add_argument("--managers", default="custody,standalone,yarn,mesos",
                         help="comma-separated manager list")
    chaos_p.add_argument("--levels", default="0,1,2",
                         help="comma-separated fault levels (faults of each kind)")
    chaos_p.add_argument("--detector-timeout", type=float, default=15.0,
                         help="heartbeat failure-detector timeout (s); "
                              "0 = managers see ground truth")
    chaos_p.add_argument("--horizon", type=float, default=300.0,
                         help="fault plan horizon (s)")
    chaos_p.add_argument("--smoke", action="store_true",
                         help="small fixed CI gate: one fault level, all four "
                              "managers, asserts zero lost tasks and visible "
                              "recovery traffic")
    chaos_p.add_argument("--gray", action="store_true",
                         help="gray-failure mode: add link flaps (and, from "
                              "level 2, a correlated rack failure) to each "
                              "plan and enable the robustness stack — "
                              "adaptive detector, circuit breakers, hedging, "
                              "retry budgets, admission control.  With "
                              "--smoke this is the gray-failure CI gate "
                              "(slowdowns + flaps; asserts zero unfinished "
                              "jobs and breaker reconvergence)")
    chaos_p.add_argument("--manager-crash", action="store_true",
                         dest="manager_crash",
                         help="crash-recovery mode: additionally take the "
                              "control plane down (level crashes per plan, "
                              "drawn last) with the checkpoint/lease/WAL "
                              "recovery stack enabled.  With --smoke this "
                              "is the recovery CI gate (asserts every crash "
                              "recovered, no zombie executors survive and "
                              "all jobs finish)")
    chaos_p.add_argument("--json", metavar="PATH", default=None, dest="json_out",
                         help="write the sweep cells (incl. MTTR, detector "
                              "FP/FN, hedge and shed counts) to PATH as JSON")
    add_jobs_flag(chaos_p)

    sweep_p = sub.add_parser(
        "sweep", help="config-grid sweep: Cartesian product of --grid fields"
    )
    add_common(sweep_p)
    sweep_p.add_argument("--manager", default="custody",
                         choices=["custody", "standalone", "yarn", "mesos"])
    sweep_p.add_argument("--grid", action="append", default=None,
                         metavar="FIELD=V1,V2,...", dest="grid_specs",
                         help="config field and the values to try "
                              "(repeatable; values parse as int, then "
                              "float, then string)")
    sweep_p.add_argument("--repeats", type=int, default=1,
                         help="runs per grid point, seeds base..base+N-1")
    sweep_p.add_argument("--csv", metavar="PATH", default=None,
                         help="write the sweep rows as CSV")
    sweep_p.add_argument("--json", nargs="?", const="-", default=None,
                         metavar="PATH", dest="json_out",
                         help="emit the sweep rows as JSON "
                              "(to stdout, or to PATH when given)")
    add_jobs_flag(sweep_p)

    val_p = sub.add_parser(
        "validate",
        help="queueing-theory validation suite: closed forms vs measurement",
    )
    val_p.add_argument("--smoke", action="store_true",
                       help="CI gate: reduced sample sizes, both engine "
                            "variants on engine-sensitive scenarios")
    val_p.add_argument("--scenario", action="append", default=None,
                       metavar="NAME", dest="scenario_names",
                       help="run only this scenario (repeatable); "
                            "default: all registered scenarios")
    val_p.add_argument("--seed", type=int, default=0)
    val_p.add_argument("--network-engine", default="incremental",
                       choices=["incremental", "reference", "vectorized"],
                       help="engine for single-variant runs (ignored by the "
                            "smoke gate, which always runs both variants)")
    val_p.add_argument("--alloc-engine", default="incremental",
                       choices=["incremental", "reference", "vectorized"])
    val_p.add_argument("--out", metavar="PATH", default="VALIDATION.json",
                       help="pass/fail report artifact path ('' to skip)")
    val_p.add_argument("--list", action="store_true", dest="list_scenarios",
                       help="list registered scenarios and exit")
    add_jobs_flag(val_p)

    trace_p = sub.add_parser(
        "trace", help="one fully traced run, exported for ui.perfetto.dev"
    )
    add_common(trace_p)
    trace_p.add_argument("--manager", default="custody",
                         choices=["custody", "standalone", "yarn", "mesos"])
    trace_p.add_argument("--out", metavar="PATH", default="run.trace.json",
                         help="Chrome trace_event JSON output path")
    trace_p.add_argument("--jsonl", metavar="PATH", default=None,
                         help="also stream raw events to PATH as JSON lines")
    trace_p.add_argument("--summary", action="store_true",
                         help="print the text timeline summary "
                              "(phase breakdown, slowest jobs)")
    trace_p.add_argument("--faults", type=int, default=0,
                         help="chaos fault level to inject (0 = fault-free)")
    trace_p.add_argument("--horizon", type=float, default=300.0,
                         help="fault plan horizon (s)")
    trace_p.add_argument("--detector-timeout", type=float, default=15.0,
                         help="failure-detector timeout (s); 0 = ground truth")
    trace_p.add_argument("--smoke", action="store_true",
                         help="observability CI gate: small chaos run, "
                              "schema-validate the export, require events "
                              "from all five instrumented layers")

    rep_p = sub.add_parser(
        "report", help="render or diff metrics snapshots (SLO scoreboard)"
    )
    rep_p.add_argument("snapshot", nargs="?", default=None,
                       help="metrics snapshot JSON to render "
                            "(from 'repro run --metrics')")
    rep_p.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                       help="compare two snapshots; exits nonzero when any "
                            "metric drifts beyond tolerance")
    rep_p.add_argument("--tolerance", type=float, default=0.05,
                       help="default symmetric relative tolerance for --diff")
    rep_p.add_argument("--tol", action="append", default=None,
                       metavar="PREFIX=TOL",
                       help="per-metric-prefix tolerance override, e.g. "
                            "--tol job_completion_seconds=0.2 (repeatable; "
                            "longest matching prefix wins)")
    rep_p.add_argument("--slo", metavar="PATH", default=None,
                       help="evaluate SLO specs from a JSON file "
                            "({'slos': [...]}); default: built-in smoke "
                            "objectives")
    rep_p.add_argument("--out", metavar="PATH", default=None,
                       help="write the (smoke-run) snapshot JSON to PATH")
    rep_p.add_argument("--prom", metavar="PATH", default=None,
                       help="also write the Prometheus text exposition to PATH")
    rep_p.add_argument("--smoke", action="store_true",
                       help="metrics CI gate: fixed chaos run with the "
                            "registry on, default SLOs evaluated, Prometheus "
                            "exposition round-tripped through the parser")
    rep_p.add_argument("--seed", type=int, default=0)
    return parser


def _config(args: argparse.Namespace, manager: str) -> ExperimentConfig:
    return ExperimentConfig(
        manager=manager,
        workload=args.workload,
        num_nodes=args.nodes,
        num_apps=args.apps,
        jobs_per_app=args.jobs_per_app,
        seed=args.seed,
        delay_wait=args.delay_wait,
        replication=args.replication,
        cache_per_node=args.cache_gb * GB,
        kmn_fraction=args.kmn,
        speculation=args.speculation,
        timeline_enabled=getattr(args, "utilization", False),
        network_engine=args.network_engine,
        alloc_engine=getattr(args, "alloc_engine", "incremental"),
        alloc_coalesce=not getattr(args, "per_event_alloc", False),
        perf_counters=getattr(args, "perf", False),
        trace=getattr(args, "trace", None) is not None,
        metrics=getattr(args, "metrics_out", None) is not None,
    )


def _suffixed(path: str, tag: str) -> Path:
    """``run.trace.json`` + ``custody`` -> ``run.trace.custody.json``."""
    p = Path(path)
    return p.with_name(f"{p.stem}.{tag}{p.suffix or '.json'}")


def _write_trace(result, path: str) -> Path:
    from repro.obs.export import write_chrome_trace

    meta = {"manager": result.config.manager, "seed": result.config.seed,
            "workload": result.config.workload}
    return write_chrome_trace(result.trace_events or [], path, other_data=meta)


def _emit_json(payload, dest: str) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    if dest == "-":
        print(text)
    else:
        Path(dest).write_text(text + "\n")
        print(f"json: {dest}")


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config(args, args.manager)
    result = run_experiment(config)
    print(comparison_table({args.manager: result.metrics},
                           title=f"{args.workload} on {args.nodes} nodes"))
    print(f"\nallocation rounds: {result.allocation_rounds}"
          f"   simulated time: {result.sim_time:.1f} s")
    if result.speculative_launches:
        print(f"speculative clones: {result.speculative_launches} "
              f"({result.speculative_wins} won)")
    if args.perf and result.perf is not None:
        print(f"network perf: {result.perf.describe()}")
    if args.utilization and result.timeline is not None:
        total_slots = (
            config.num_nodes * config.executors_per_node * config.executor_slots
        )
        print("\n" + analyze_utilization(result.timeline, total_slots).describe())
    if args.save:
        path = save_result(result, args.save)
        print(f"\nsaved: {path}")
    if args.trace:
        print(f"trace: {_write_trace(result, args.trace)}")
    if args.metrics_out and result.registry is not None:
        from repro.obs.exposition import write_snapshot

        snapshot = result.registry.snapshot(
            meta={"seed": config.seed, "manager": config.manager,
                  "workload": config.workload},
            timeseries=result.sampler.as_dict() if result.sampler else None,
        )
        print(f"metrics: {write_snapshot(snapshot, args.metrics_out)}")
    if args.json_out:
        _emit_json(result_to_dict(result), args.json_out)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    managers = [m.strip() for m in args.managers.split(",") if m.strip()]
    results = {}
    for manager in managers:
        results[manager] = run_experiment(_config(args, manager))
    print(comparison_table(
        {m: r.metrics for m, r in results.items()},
        title=f"{args.workload} on {args.nodes} nodes (common trace)",
    ))
    if args.trace:
        for manager, result in results.items():
            print(f"trace: {_write_trace(result, str(_suffixed(args.trace, manager)))}")
    if args.json_out:
        _emit_json({m: result_to_dict(r) for m, r in results.items()},
                   args.json_out)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    scale = dict(jobs_per_app=args.jobs_per_app, num_apps=args.apps, seed=args.seed)
    if args.figure == "7":
        rows = figure7_locality(**scale)
        print(format_table(
            ["cluster", "workload", "spark loc%", "custody loc%", "gain%"],
            [[r["cluster_size"], r["workload"], 100 * r["spark_locality"],
              100 * r["custody_locality"], 100 * r["gain"]] for r in rows],
            title="Fig. 7 — % local input tasks",
        ))
    elif args.figure == "8":
        rows = figure8_jct(**scale)
        print(format_table(
            ["cluster", "workload", "spark JCT", "custody JCT", "reduction%"],
            [[r["cluster_size"], r["workload"], r["spark_jct"], r["custody_jct"],
              100 * r["reduction"]] for r in rows],
            title="Fig. 8 — average job completion time (s)",
        ))
    elif args.figure == "9":
        rows = figure9_input_stage(**scale)
        print(format_table(
            ["workload", "spark input stage", "custody input stage"],
            [[r["workload"], r["spark_input_stage"], r["custody_input_stage"]]
             for r in rows],
            title="Fig. 9 — input-stage time, 100 nodes (s)",
        ))
    else:
        rows = figure10_scheduler_delay(**scale)
        print(format_table(
            ["cluster", "spark delay", "custody delay"],
            [[r["cluster_size"], r["spark_delay"], r["custody_delay"]]
             for r in rows],
            title="Fig. 10 — scheduler delay (s)",
        ))
    return 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    fig1 = fig1_motivating_example()
    print(format_table(
        ["app", "data-unaware", "data-aware"],
        [[a, fig1.data_unaware[a], fig1.data_aware[a]]
         for a in sorted(fig1.data_unaware)],
        title="Fig. 1 — motivating example",
    ))
    fig3 = fig3_interapp_example()
    print("\n" + format_table(
        ["app", "naive fair", "locality fair"],
        [[a, fig3.naive_fair[a], fig3.locality_fair[a]]
         for a in sorted(fig3.naive_fair)],
        title="Fig. 3 — inter-application strategies",
    ))
    fig45 = fig45_intraapp_example()
    print("\n" + format_table(
        ["strategy", "avg JCT"],
        [["fairness-based", fig45.fairness_avg],
         ["priority-based", fig45.priority_avg]],
        title="Fig. 5 — intra-application strategies (paper: 2.0 vs 1.25)",
    ))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.experiments.netbench import run_scale_bench, write_trajectory

    try:
        flow_counts = [int(f) for f in args.flows.split(",") if f.strip()]
    except ValueError:
        print(f"error: --flows expects comma-separated integers, got {args.flows!r}",
              file=sys.stderr)
        return 2
    if not flow_counts or any(n <= 0 for n in flow_counts):
        print(f"error: --flows expects positive flow counts, got {args.flows!r}",
              file=sys.stderr)
        return 2
    pod_size = args.pod_size if args.pod_size > 0 else None
    if args.jobs > 1:
        from repro.experiments.parallel import run_perf_points

        points = run_perf_points(
            flow_counts, events=args.events, seed=args.seed,
            pod_size=pod_size, jobs=args.jobs,
        )
    else:
        points = run_scale_bench(
            flow_counts, events=args.events, seed=args.seed, pod_size=pod_size
        )
    print(format_table(
        ["flows", "nodes", "reference s", "incremental s", "speedup",
         "flows/recompute"],
        [[p.flows, p.nodes, p.reference_seconds, p.incremental_seconds,
          p.speedup, p.mean_component] for p in points],
        title=f"rate-engine scaling ({args.events} churn events per point)",
    ))
    if args.out:
        path = write_trajectory(points, args.out)
        print(f"\nsaved: {path}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.smoke:
        # Fixed small gate: ignore the sizing flags so CI always runs the
        # same scenario (>= 1 node failure + >= 1 partition, stale views on).
        args.nodes, args.apps, args.jobs_per_app = 12, 2, 2
        args.workload, args.seed = "wordcount", args.seed
        levels, managers = [1], ["custody", "standalone", "yarn", "mesos"]
        detector_timeout: Optional[float] = 10.0
        horizon = 40.0  # short enough that faults overlap the running jobs
        if args.gray:
            # Gray gate: level 2 adds flaps + a correlated rack failure on
            # top of the classic kinds, robustness stack fully on.
            levels = [2]
        if args.manager_crash:
            # Recovery gate: a longer horizon so the outage (5-15% of it)
            # overlaps running jobs and recovery completes on-trace.
            horizon = 60.0
    else:
        try:
            levels = [int(x) for x in args.levels.split(",") if x.strip()]
        except ValueError:
            print(f"error: --levels expects comma-separated integers, "
                  f"got {args.levels!r}", file=sys.stderr)
            return 2
        managers = [m.strip() for m in args.managers.split(",") if m.strip()]
        detector_timeout = args.detector_timeout if args.detector_timeout > 0 else None
        horizon = args.horizon
    base = replace(
        _config(args, "custody"),
        detector_timeout=detector_timeout,
        perf_counters=True,
    )
    if args.gray:
        # Gray-failure mode brings the whole robustness stack online.  The
        # short breaker cooldown lets recovered nodes earn their way back
        # (half-open probes) while the run still has work to probe with.
        base = replace(
            base,
            detector_mode="adaptive",
            circuit_breaker=True,
            hedging=True,
            retry_jitter=True,
            retry_budget=32,
            retry_refill=0.5,
            admission_control=True,
            blacklist_timeout=10.0,
        )
    if args.manager_crash:
        # Crash-recovery mode: checkpointed control plane with leases.  A
        # generous lease keeps restarts work-preserving; the short renewal
        # interval is what the closed-form expiry math ticks on.
        base = replace(
            base,
            manager_recovery=True,
            lease_duration=120.0,
            lease_renew_interval=5.0,
            checkpoint_interval=15.0,
            reconciliation_window=2.0,
        )
    from repro.experiments.parallel import run_chaos_sweep

    sweep = run_chaos_sweep(
        base, levels=levels, managers=managers, horizon=horizon,
        gray=args.gray, manager_crash=args.manager_crash,
        jobs=args.jobs, trace_template=args.trace,
    )
    # Cross-cell consumers (traces, JSON, gate) read the per-cell worker
    # payloads in (manager, level) order — the order the serial loop over
    # ``sorted(sweep.results.items())`` used to produce.
    by_manager = sorted(sweep.payloads, key=lambda p: (p["manager"], p["level"]))
    if args.trace:
        for payload in by_manager:
            print(f"trace: {payload['trace_path']}")
    headers = ["manager", "level", "loc%", "min loc%", "avg JCT", "requeued",
               "failed att.", "abandoned", "data loss", "dead launch",
               "recovery flows", "blacklists", "unfinished"]
    rows = [[c.manager, c.level, 100 * c.locality, 100 * c.min_locality,
             c.avg_jct if c.avg_jct is not None else float("nan"),
             c.tasks_requeued, c.failed_attempts, c.abandoned_tasks,
             c.data_loss_tasks, c.failed_launches, c.recovery_flows,
             c.blacklist_events, c.unfinished_jobs] for c in sweep.cells]
    if args.gray:
        headers += ["FP", "FN", "hedges", "hedge wins", "denied",
                    "breaker opens", "open@end", "deferred", "shed"]
        for row, c in zip(rows, sweep.cells):
            row += [c.detector_false_positives, c.detector_false_negatives,
                    c.hedges_launched, c.hedges_won, c.retries_denied,
                    c.breaker_opens, c.breakers_open_at_end,
                    c.admission_deferred, c.load_shed]
    if args.manager_crash:
        headers += ["crashes", "recovered", "readopted", "lease exp.",
                    "zombies", "buffered", "lease requeue"]
        for row, c in zip(rows, sweep.cells):
            row += [c.manager_crashes, c.manager_recoveries,
                    c.leases_readopted, c.leases_expired,
                    c.zombies_reclaimed, c.submissions_buffered,
                    c.recovery_tasks_requeued]
    print(format_table(
        headers,
        rows,
        title=f"chaos sweep — {args.workload} on {args.nodes} nodes "
              f"(detector timeout: {detector_timeout}"
              f"{', gray-failure mode' if args.gray else ''})",
    ))
    if args.json_out:
        payload = {
            "workload": args.workload,
            "nodes": args.nodes,
            "apps": args.apps,
            "jobs_per_app": args.jobs_per_app,
            "seed": args.seed,
            "horizon": horizon,
            "detector_timeout": detector_timeout,
            "gray": args.gray,
            "manager_crash": args.manager_crash,
            "levels": list(levels),
            "managers": list(managers),
            "cells": [
                {
                    "manager": p["manager"],
                    "level": p["level"],
                    "locality": p["result"]["metrics"]["locality_mean"],
                    "min_locality": p["result"]["metrics"][
                        "min_local_job_fraction"
                    ],
                    "avg_jct": p["result"]["metrics"]["avg_jct"],
                    "unfinished_jobs": p["result"]["metrics"][
                        "unfinished_jobs"
                    ],
                    "sim_time": p["result"]["sim_time"],
                    "faults": p["result"].get("faults"),
                }
                for p in by_manager
            ],
        }
        Path(args.json_out).write_text(json.dumps(payload, indent=2))
        print(f"json: {args.json_out}")
    if not args.smoke:
        return 0

    # CI gate assertions: chaos degrades runs, it must never lose work.
    # The gate reads the persisted worker payloads, so it gates exactly
    # what a parallel run shipped back across the process boundary.
    violations = []
    for p in by_manager:
        manager, level = p["manager"], p["level"]
        metrics = p["result"]["metrics"]
        faults = p["result"].get("faults")
        if metrics["unfinished_jobs"]:
            violations.append(
                f"{manager}/L{level}: {metrics['unfinished_jobs']} "
                "unfinished jobs"
            )
        if p["lost_tasks"]:
            violations.append(
                f"{manager}/L{level}: {p['lost_tasks']} tasks lost untracked"
            )
        if level > 0 and faults is not None and not faults["recovery_flows"]:
            violations.append(f"{manager}/L{level}: no recovery traffic modeled")
        if args.gray and level > 0 and faults is not None:
            if faults["breakers_open_at_end"]:
                violations.append(
                    f"{manager}/L{level}: {faults['breakers_open_at_end']} "
                    "breakers never reconverged to closed"
                )
            if faults["breaker_closes"] > faults["breaker_probes"]:
                violations.append(
                    f"{manager}/L{level}: breaker closed without a "
                    "half-open probe"
                )
        if args.manager_crash and level > 0 and faults is not None:
            if not faults["manager_crashes"]:
                violations.append(
                    f"{manager}/L{level}: no manager crash injected"
                )
            if faults["manager_recoveries"] != faults["manager_crashes"]:
                violations.append(
                    f"{manager}/L{level}: {faults['manager_crashes']} crashes "
                    f"but {faults['manager_recoveries']} completed recoveries"
                )
            if faults["zombies_surviving"]:
                violations.append(
                    f"{manager}/L{level}: {faults['zombies_surviving']} zombie "
                    "executors survived reconciliation"
                )
    if violations:
        print("\nchaos smoke FAILED:", file=sys.stderr)
        for v in violations:
            print(f"  - {v}", file=sys.stderr)
        return 1
    if args.manager_crash:
        print("\nrecovery chaos smoke passed: every manager crash recovered "
              "work-preservingly, no zombie executors survived, all jobs "
              "finished.")
    elif args.gray:
        print("\ngray chaos smoke passed: all jobs finished under flaps and "
              "correlated failures, every breaker reconverged to closed.")
    else:
        print("\nchaos smoke passed: all jobs finished, every task accounted "
              "for, recovery traffic observed under faults.")
    return 0


def _parse_grid_value(raw: str):
    """``25`` -> int, ``0.5`` -> float, anything else -> the string."""
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigurationError
    from repro.experiments.sweeps import rows_to_csv, sweep

    if not args.grid_specs:
        print("error: give at least one --grid FIELD=V1,V2,...",
              file=sys.stderr)
        return 2
    grid = {}
    for spec in args.grid_specs:
        field, sep, raw = spec.partition("=")
        values = [v.strip() for v in raw.split(",") if v.strip()]
        if not sep or not field or not values:
            print(f"error: --grid expects FIELD=V1,V2,..., got {spec!r}",
                  file=sys.stderr)
            return 2
        grid[field] = [_parse_grid_value(v) for v in values]
    base = _config(args, args.manager)
    try:
        rows = sweep(base, grid, repeats=args.repeats, jobs=args.jobs)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    columns = list(rows[0].keys())
    print(format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=f"sweep — {len(rows)} runs over {sorted(grid)}",
    ))
    if args.csv:
        print(f"csv: {rows_to_csv(rows, args.csv)}")
    if args.json_out:
        _emit_json(rows, args.json_out)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import run_validation_suite
    from repro.scenarios import ScenarioProfile, all_scenarios

    if args.list_scenarios:
        for name, scenario in all_scenarios().items():
            tags = []
            if scenario.engine_sensitive:
                tags.append("engine-sensitive")
            if not scenario.in_smoke:
                tags.append("full-only")
            suffix = f"  [{', '.join(tags)}]" if tags else ""
            print(f"{name:16s} {scenario.title}{suffix}")
        return 0

    profile = ScenarioProfile(
        smoke=args.smoke,
        seed=args.seed,
        network_engine=args.network_engine,
        alloc_engine=args.alloc_engine,
    )
    # The smoke gate pins every self-consistent engine stack (seed,
    # incremental, vectorized); a manual single-variant run validates
    # exactly the engines it was given.
    variants = (
        [
            ("incremental", "incremental"),
            ("reference", "reference"),
            ("vectorized", "vectorized"),
        ]
        if args.smoke
        else [(args.network_engine, args.alloc_engine)]
    )
    report = run_validation_suite(
        args.scenario_names,
        profile,
        engine_variants=variants,
        jobs=args.jobs,
        progress=lambda label: print(f"  running {label} ..."),
    )

    widths = (16, 26, 8, 6)
    header = ["scenario", "engines", "checks", "result"]
    print()
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in report.summary_rows():
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    for result in report.results:
        for check in result.checks:
            if not check.passed:
                print(f"  FAIL {result.name}.{check.name}: "
                      f"measured={check.measured:.6g} "
                      f"expected={check.expected:.6g}  ({check.detail})",
                      file=sys.stderr)

    if args.out:
        Path(args.out).write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"\nreport: {args.out}")
    total = sum(len(r.checks) for r in report.results)
    failed = sum(
        1 for r in report.results for c in r.checks if not c.passed
    )
    if report.passed:
        print(f"validate passed: {total} checks across "
              f"{len(report.results)} scenario runs, closed forms within "
              "tolerance.")
        return 0
    print(f"\nvalidate FAILED: {failed}/{total} checks out of band.",
          file=sys.stderr)
    return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.faults.chaos import build_chaos_plan
    from repro.obs.events import LAYERS
    from repro.obs.export import chrome_trace, validate_chrome_trace
    from repro.obs.sinks import JsonlSink, RingSink
    from repro.obs.tracer import Tracer

    if args.smoke:
        # Same fixed scenario as the chaos gate so CI always traces a run
        # with real faults, recovery traffic and all five layers active.
        args.nodes, args.apps, args.jobs_per_app = 12, 2, 2
        args.workload = "wordcount"
        args.faults = max(args.faults, 1)
        args.horizon, args.detector_timeout = 40.0, 10.0
    detector_timeout = args.detector_timeout if args.detector_timeout > 0 else None
    config = replace(
        _config(args, args.manager),
        trace=True,
        detector_timeout=detector_timeout,
    )
    fault_plan = None
    if args.faults > 0:
        rng = np.random.default_rng([config.seed, 7919, args.faults])
        fault_plan = build_chaos_plan(
            config.num_nodes, config.executors_per_node, rng,
            node_failures=args.faults, partitions=args.faults,
            degradations=args.faults, executor_failures=args.faults,
            slowdowns=args.faults, horizon=args.horizon,
        )

    ring = RingSink()
    sinks = [ring]
    if args.jsonl:
        sinks.append(JsonlSink(args.jsonl))
    tracer = Tracer(sinks=sinks)
    result = run_experiment(config, fault_plan=fault_plan, tracer=tracer)
    tracer.close()
    events = ring.events()

    meta = {"manager": args.manager, "seed": config.seed,
            "workload": config.workload, "faults": args.faults}
    data = chrome_trace(events, other_data=meta)
    Path(args.out).write_text(json.dumps(data))

    counts = {layer: 0 for layer in LAYERS}
    for event in events:
        counts[event.cat] = counts.get(event.cat, 0) + 1
    print(f"trace: {args.out}  ({len(events)} events"
          f"{f', {ring.dropped} dropped' if ring.dropped else ''})")
    print("  " + "   ".join(f"{layer}: {counts[layer]}" for layer in LAYERS))
    if args.jsonl:
        print(f"jsonl: {args.jsonl}")
    print(f"simulated time: {result.sim_time:.1f} s   "
          f"finished jobs: {result.metrics.finished_jobs}")

    if args.summary:
        from repro.obs.report import trace_summary

        print("\n" + trace_summary(events, dropped=ring.dropped))

    problems = validate_chrome_trace(data)
    missing = [layer for layer in LAYERS if not counts[layer]]
    if args.smoke and (problems or missing):
        print("\ntrace smoke FAILED:", file=sys.stderr)
        for p in problems[:20]:
            print(f"  - schema: {p}", file=sys.stderr)
        for layer in missing:
            print(f"  - no events from layer {layer!r}", file=sys.stderr)
        return 1
    if args.smoke:
        print("\ntrace smoke passed: export validates against the schema, "
              "all five layers emitted events.")
    elif problems:
        print(f"\nwarning: export has {len(problems)} schema problems",
              file=sys.stderr)
    return 0


def _parse_tol_overrides(entries: Optional[Sequence[str]]) -> dict:
    overrides = {}
    for entry in entries or []:
        prefix, sep, raw = entry.partition("=")
        if not sep or not prefix:
            raise ValueError(
                f"--tol expects PREFIX=TOLERANCE, got {entry!r}"
            )
        overrides[prefix] = float(raw)
    return overrides


def _report_smoke_snapshot(seed: int) -> dict:
    """Run the fixed chaos scenario with the registry on; return a snapshot.

    Mirrors the ``trace --smoke`` scenario so the metrics gate measures a
    run with real faults, recovery traffic and all five layers active —
    plus one manager crash, so the recovery SLOs (restart duration, zero
    zombie survivors) gate a restart that actually happened.
    """
    import numpy as np

    from repro.faults.chaos import build_chaos_plan

    config = ExperimentConfig(
        manager="custody",
        workload="wordcount",
        num_nodes=12,
        num_apps=2,
        jobs_per_app=2,
        seed=seed,
        detector_timeout=10.0,
        metrics=True,
        trace=True,
        manager_recovery=True,
        lease_duration=120.0,
        lease_renew_interval=5.0,
        checkpoint_interval=15.0,
        reconciliation_window=2.0,
    )
    rng = np.random.default_rng([config.seed, 7919, 1])
    fault_plan = build_chaos_plan(
        config.num_nodes, config.executors_per_node, rng,
        node_failures=1, partitions=1, degradations=1,
        executor_failures=1, slowdowns=1, manager_crashes=1, horizon=40.0,
    )
    result = run_experiment(config, fault_plan=fault_plan)
    assert result.registry is not None
    return result.registry.snapshot(
        meta={"seed": config.seed, "manager": config.manager,
              "workload": config.workload, "smoke": True},
        timeseries=result.sampler.as_dict() if result.sampler else None,
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.diff import diff_snapshots, render_scoreboard
    from repro.obs.exposition import (
        load_snapshot,
        parse_prometheus,
        to_prometheus,
        write_snapshot,
    )
    from repro.obs.slo import default_slos, evaluate_slos, load_slo_specs

    if args.diff:
        try:
            overrides = _parse_tol_overrides(args.tol)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        a, b = (load_snapshot(p) for p in args.diff)
        report = diff_snapshots(
            a, b, tolerance=args.tolerance, overrides=overrides
        )
        print(report.describe())
        return 0 if report.passed else 1

    if args.smoke:
        snapshot = _report_smoke_snapshot(args.seed)
    elif args.snapshot:
        snapshot = load_snapshot(args.snapshot)
    else:
        print("error: give a snapshot path, --diff A B, or --smoke",
              file=sys.stderr)
        return 2

    print(render_scoreboard(snapshot))
    specs = (
        load_slo_specs(args.slo) if args.slo
        else default_slos(include_recovery=args.smoke)
    )
    slo_report = evaluate_slos(specs, snapshot)
    print()
    print(slo_report.describe())

    exposition = to_prometheus(snapshot)
    if args.out:
        print(f"\nsnapshot: {write_snapshot(snapshot, args.out)}")
    if args.prom:
        Path(args.prom).write_text(exposition)
        print(f"prometheus: {args.prom}")

    if args.smoke:
        problems = []
        if not slo_report.passed:
            problems.extend(
                f"SLO failed: {v.describe()}"
                for v in slo_report.verdicts if not v.passed
            )
        parsed = parse_prometheus(exposition)
        exported = {m["name"] for m in snapshot["metrics"]}
        if set(parsed) != exported:
            problems.append(
                "Prometheus round-trip lost families: "
                f"{sorted(exported ^ set(parsed))}"
            )
        required = {
            "alloc_rounds_total",          # managers
            "task_launches_total",         # driver
            "net_rate_recomputes_total",   # network engines
            "faults_injected_total",       # faults/detector
            "job_arrivals_total",          # workload/queue
            "manager_crashes_total",       # crash-recovery stack
        }
        missing = sorted(required - exported)
        if missing:
            problems.append(f"no metrics from layers: {missing}")
        if problems:
            print("\nmetrics smoke FAILED:", file=sys.stderr)
            for p in problems:
                print(f"  - {p}", file=sys.stderr)
            return 1
        print("\nmetrics smoke passed: every instrumented layer exported, "
              "SLOs met, exposition round-trips through the parser.")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figures": _cmd_figures,
        "scenarios": _cmd_scenarios,
        "perf": _cmd_perf,
        "chaos": _cmd_chaos,
        "sweep": _cmd_sweep,
        "validate": _cmd_validate,
        "trace": _cmd_trace,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
