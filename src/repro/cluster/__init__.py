"""Cluster hardware model: worker nodes, executors, racks.

The paper's testbed (§VI-A): 100 Linode nodes, 8 cores / 16 GB / 384 GB SSD
each, 40 Gbps downlink and 2 Gbps uplink, two executors launched per node.
:class:`ClusterConfig` defaults to exactly that, scaled by ``num_nodes``.

Executors are the unit of resource sharing (§II): a worker node launches
multiple executor processes; a cluster manager assigns each executor to at
most one application at a time; tasks of that application then run in the
executor's task slots.
"""

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.executor import Executor, ExecutorState
from repro.cluster.node import WorkerNode
from repro.cluster.topology import Rack, Topology

__all__ = [
    "Cluster",
    "ClusterConfig",
    "Executor",
    "ExecutorState",
    "Rack",
    "Topology",
    "WorkerNode",
]
