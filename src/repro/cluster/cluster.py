"""Cluster assembly: config → nodes + executors + racks + network registration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.ids import IdFactory
from repro.common.units import GB, GBPS, MB
from repro.cluster.executor import Executor
from repro.cluster.node import WorkerNode
from repro.cluster.topology import Topology
from repro.network.fabric import NetworkFabric

__all__ = ["Cluster", "ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster.

    Defaults reproduce the paper's testbed (§VI-A): 8-core nodes with 16 GB
    memory and SSD storage, 40 Gbps downlink / 2 Gbps uplink, two executors
    per node.  ``executor_slots`` defaults to 1, matching the analytical model
    ("each executor ... can run one task at a time", §III-A); the evaluation
    scenarios raise it to 4 so two 4-slot executors fill an 8-core node the
    way the real deployment did.
    """

    num_nodes: int = 100
    cores_per_node: int = 8
    memory_per_node: float = 16 * GB
    disk_bandwidth: float = 500 * MB  # ~SSD sequential streaming, bytes/s
    uplink: float = 2 * GBPS
    downlink: float = 40 * GBPS
    executors_per_node: int = 2
    executor_slots: int = 1
    nodes_per_rack: int = 20

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.executors_per_node < 1:
            raise ConfigurationError(
                f"executors_per_node must be >= 1, got {self.executors_per_node}"
            )
        if self.executor_slots < 1:
            raise ConfigurationError(f"executor_slots must be >= 1, got {self.executor_slots}")
        if self.executors_per_node * self.executor_slots > self.cores_per_node:
            raise ConfigurationError(
                f"{self.executors_per_node} executors x {self.executor_slots} slots "
                f"exceed {self.cores_per_node} cores per node"
            )
        if self.nodes_per_rack < 1:
            raise ConfigurationError(f"nodes_per_rack must be >= 1, got {self.nodes_per_rack}")

    @property
    def total_executors(self) -> int:
        """Executors in the whole cluster."""
        return self.num_nodes * self.executors_per_node

    @property
    def total_slots(self) -> int:
        """Concurrent task slots in the whole cluster."""
        return self.total_executors * self.executor_slots


class Cluster:
    """Worker nodes, their executors, the rack topology, and NIC registration.

    Construction is deterministic: node and executor ids depend only on the
    config, and every node is registered with the network fabric when one is
    supplied.
    """

    def __init__(self, config: ClusterConfig, fabric: Optional[NetworkFabric] = None):
        self.config = config
        self.fabric = fabric
        self.topology = Topology()
        self._nodes: Dict[str, WorkerNode] = {}
        self._executors: Dict[str, Executor] = {}
        ids = IdFactory()
        for i in range(config.num_nodes):
            rack_id = f"rack-{i // config.nodes_per_rack:03d}"
            node = WorkerNode(
                ids.next("worker"),
                cores=config.cores_per_node,
                memory=config.memory_per_node,
                disk_bandwidth=config.disk_bandwidth,
                uplink=config.uplink,
                downlink=config.downlink,
                rack_id=rack_id,
            )
            self._nodes[node.node_id] = node
            self.topology.add_node(node.node_id, rack_id)
            if fabric is not None:
                fabric.add_node(node.node_id, uplink=config.uplink, downlink=config.downlink)
            for _ in range(config.executors_per_node):
                executor = Executor(ids.next("executor"), node, slots=config.executor_slots)
                self._executors[executor.executor_id] = executor

    # ----------------------------------------------------------------- lookups
    @property
    def nodes(self) -> List[WorkerNode]:
        """All worker nodes in creation order."""
        return list(self._nodes.values())

    @property
    def node_ids(self) -> List[str]:
        """All node ids in creation order."""
        return list(self._nodes.keys())

    @property
    def executors(self) -> List[Executor]:
        """All executors in creation order."""
        return list(self._executors.values())

    def node(self, node_id: str) -> WorkerNode:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node {node_id!r}") from None

    def executor(self, executor_id: str) -> Executor:
        """Look up an executor by id."""
        try:
            return self._executors[executor_id]
        except KeyError:
            raise ConfigurationError(f"unknown executor {executor_id!r}") from None

    def executors_on(self, node_id: str) -> List[Executor]:
        """Executors hosted on ``node_id``."""
        return list(self.node(node_id).executors)

    def free_executors(self) -> List[Executor]:
        """Healthy executors not owned by any application (creation order)."""
        return [e for e in self._executors.values() if e.is_free and e.healthy]

    def executors_of(self, app_id: str) -> List[Executor]:
        """Executors currently allocated to ``app_id``."""
        return [e for e in self._executors.values() if e.owner == app_id]
