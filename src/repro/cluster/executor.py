"""Executor: the unit of allocation between applications.

State machine::

    FREE --allocate(app)--> ALLOCATED --release()--> FREE

While ALLOCATED, the owning application's driver launches tasks into the
executor's slots.  Allocating an executor that is already owned raises
(:class:`~repro.common.errors.AllocationError`) — that is constraint (2) of
the paper's formulation: each executor belongs to at most one application.
Release requires all slots to be idle, matching Spark's graceful executor
decommission used by Custody's release message (§V).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Set

from repro.common.errors import AllocationError, CapacityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import WorkerNode

__all__ = ["Executor", "ExecutorState"]


class ExecutorState(enum.Enum):
    """Allocation state of an executor."""

    FREE = "free"
    ALLOCATED = "allocated"


class Executor:
    """A container process on a worker node running one application's tasks."""

    def __init__(self, executor_id: str, node: "WorkerNode", *, slots: int = 1):
        if slots < 1:
            raise CapacityError(f"{executor_id}: slots must be >= 1, got {slots}")
        self.executor_id = executor_id
        self.node = node
        self.slots = slots
        self.state = ExecutorState.FREE
        self.owner: Optional[str] = None  # application id
        self.running_tasks: Set[str] = set()
        #: False while the executor is crashed/restarting (fault injection);
        #: unhealthy executors are excluded from allocation.
        self.healthy = True
        node.attach_executor(self)

    # -------------------------------------------------------------- allocation
    @property
    def node_id(self) -> str:
        """Id of the hosting worker node."""
        return self.node.node_id

    @property
    def is_free(self) -> bool:
        """True when no application owns this executor."""
        return self.state is ExecutorState.FREE

    @property
    def free_slots(self) -> int:
        """Task slots not currently running a task."""
        return self.slots - len(self.running_tasks)

    def allocate(self, app_id: str) -> None:
        """Hand the executor to application ``app_id``."""
        if self.state is not ExecutorState.FREE:
            raise AllocationError(
                f"{self.executor_id} already allocated to {self.owner!r}; "
                f"cannot give it to {app_id!r}"
            )
        if not self.healthy:
            raise AllocationError(f"{self.executor_id} is down; cannot allocate")
        self.state = ExecutorState.ALLOCATED
        self.owner = app_id

    def release(self) -> None:
        """Return the executor to the free pool (must be idle)."""
        if self.state is ExecutorState.FREE:
            raise AllocationError(f"{self.executor_id} is not allocated")
        if self.running_tasks:
            raise AllocationError(
                f"{self.executor_id} still running {sorted(self.running_tasks)}; "
                "release requires idle slots"
            )
        self.state = ExecutorState.FREE
        self.owner = None

    # ----------------------------------------------------------------- running
    def start_task(self, task_id: str) -> None:
        """Occupy one slot with ``task_id``."""
        if self.state is not ExecutorState.ALLOCATED:
            raise AllocationError(f"{self.executor_id} has no owner; cannot run {task_id}")
        if self.free_slots <= 0:
            raise CapacityError(f"{self.executor_id} has no free slot for {task_id}")
        if task_id in self.running_tasks:
            raise AllocationError(f"{task_id} already running on {self.executor_id}")
        self.running_tasks.add(task_id)

    def finish_task(self, task_id: str) -> None:
        """Free the slot held by ``task_id``."""
        try:
            self.running_tasks.remove(task_id)
        except KeyError:
            raise AllocationError(f"{task_id} is not running on {self.executor_id}") from None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        owner = f" owner={self.owner}" if self.owner else ""
        return (
            f"<Executor {self.executor_id}@{self.node_id} "
            f"{self.state.value}{owner} {len(self.running_tasks)}/{self.slots} busy>"
        )
