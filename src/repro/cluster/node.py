"""Worker node: cores, memory, local SSD, NIC, hosted executors."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.common.errors import CapacityError, ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.cluster.executor import Executor

__all__ = ["WorkerNode"]


class WorkerNode:
    """One physical (or virtual) machine in the cluster.

    The node is passive: it owns capacities and hosts executors; behaviour
    lives in the executors and the drivers that use them.  Block storage is
    tracked by the HDFS DataNode bound to this node id, not here.
    """

    def __init__(
        self,
        node_id: str,
        *,
        cores: int,
        memory: float,
        disk_bandwidth: float,
        uplink: float,
        downlink: float,
        rack_id: str = "rack-000",
    ):
        if cores < 1:
            raise ConfigurationError(f"{node_id}: cores must be >= 1, got {cores}")
        if memory <= 0 or disk_bandwidth <= 0:
            raise ConfigurationError(f"{node_id}: memory and disk bandwidth must be positive")
        if uplink <= 0 or downlink <= 0:
            raise ConfigurationError(f"{node_id}: NIC capacities must be positive")
        self.node_id = node_id
        self.cores = cores
        self.memory = memory
        self.disk_bandwidth = disk_bandwidth
        self.uplink = uplink
        self.downlink = downlink
        self.rack_id = rack_id
        self.executors: List["Executor"] = []

    # -------------------------------------------------------------- executors
    def attach_executor(self, executor: "Executor") -> None:
        """Register an executor hosted on this node, checking core capacity."""
        committed = sum(e.slots for e in self.executors)
        if committed + executor.slots > self.cores:
            raise CapacityError(
                f"{self.node_id}: cannot host executor {executor.executor_id} "
                f"({executor.slots} slots); {committed}/{self.cores} cores committed"
            )
        self.executors.append(executor)

    # ------------------------------------------------------------------- disk
    def local_read_time(self, size: float) -> float:
        """Seconds to stream ``size`` bytes from the local SSD.

        Modelled as uncontended sequential streaming: the paper's nodes have
        384 GB SSDs whose sequential rate far exceeds the per-task demand, so
        disk queueing is not the bottleneck the evaluation measures.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return size / self.disk_bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<WorkerNode {self.node_id} cores={self.cores} execs={len(self.executors)}>"
