"""Rack topology.

HDFS's default placement is rack-aware (first replica local, second on a
remote rack, third on the same remote rack).  Locality in this paper is
node-level, but the placement substrate models racks so the rack-aware
policy produces realistic replica spreads and so rack-level locality can be
measured as an extension.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigurationError

__all__ = ["Rack", "Topology"]


class Rack:
    """A named group of worker node ids."""

    def __init__(self, rack_id: str):
        self.rack_id = rack_id
        self.node_ids: List[str] = []

    def __len__(self) -> int:
        return len(self.node_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Rack {self.rack_id} nodes={len(self.node_ids)}>"


class Topology:
    """Node → rack mapping with round-robin construction helpers."""

    def __init__(self) -> None:
        self._racks: Dict[str, Rack] = {}
        self._node_rack: Dict[str, str] = {}

    @property
    def racks(self) -> List[Rack]:
        """All racks in creation order."""
        return list(self._racks.values())

    def add_node(self, node_id: str, rack_id: str) -> None:
        """Place ``node_id`` in ``rack_id``, creating the rack if needed."""
        if node_id in self._node_rack:
            raise ConfigurationError(f"node {node_id!r} already placed")
        rack = self._racks.get(rack_id)
        if rack is None:
            rack = Rack(rack_id)
            self._racks[rack_id] = rack
        rack.node_ids.append(node_id)
        self._node_rack[node_id] = rack_id

    def rack_of(self, node_id: str) -> str:
        """The rack id hosting ``node_id``."""
        try:
            return self._node_rack[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node {node_id!r}") from None

    def same_rack(self, a: str, b: str) -> bool:
        """True when both nodes share a rack."""
        return self.rack_of(a) == self.rack_of(b)

    def nodes_in(self, rack_id: str) -> List[str]:
        """Node ids in ``rack_id`` (creation order)."""
        try:
            return list(self._racks[rack_id].node_ids)
        except KeyError:
            raise ConfigurationError(f"unknown rack {rack_id!r}") from None

    def nodes_outside(self, rack_id: str) -> List[str]:
        """Node ids in every rack except ``rack_id``."""
        return [
            node_id
            for rid, rack in self._racks.items()
            if rid != rack_id
            for node_id in rack.node_ids
        ]
