"""Shared utilities: units, deterministic RNG streams, id factories, errors.

Everything in :mod:`repro` builds on these primitives.  They are deliberately
dependency-free (stdlib + numpy only) so every other subpackage can import
them without cycles.
"""

from repro.common.errors import (
    AllocationError,
    CapacityError,
    ConfigurationError,
    ReproError,
    SimulationError,
)
from repro.common.ids import IdFactory
from repro.common.rng import RngStreams, SeedSequenceError
from repro.common.units import (
    GB,
    GBPS,
    KB,
    MB,
    MBPS,
    TB,
    Bandwidth,
    DataSize,
    gbps,
    mb,
    pretty_bytes,
    pretty_seconds,
)

__all__ = [
    "AllocationError",
    "Bandwidth",
    "CapacityError",
    "ConfigurationError",
    "DataSize",
    "GB",
    "GBPS",
    "IdFactory",
    "KB",
    "MB",
    "MBPS",
    "ReproError",
    "RngStreams",
    "SeedSequenceError",
    "SimulationError",
    "TB",
    "gbps",
    "mb",
    "pretty_bytes",
    "pretty_seconds",
]
