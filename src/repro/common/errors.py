"""Exception hierarchy for :mod:`repro`.

A single root (:class:`ReproError`) lets callers catch everything raised by
the library without swallowing unrelated bugs; subclasses separate the three
failure domains users actually handle differently: bad configuration,
infeasible allocation requests, and simulator misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of all exceptions raised by the repro package."""


class ConfigurationError(ReproError):
    """A config object or parameter combination is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly (e.g. scheduling
    events in the past, running a finished simulation)."""


class AllocationError(ReproError):
    """An executor allocation request could not be satisfied or violates an
    invariant (e.g. allocating the same executor to two applications)."""


class CapacityError(AllocationError):
    """A resource request exceeds the capacity of a node, executor or NIC."""


class TransferFailedError(ReproError):
    """An in-flight network transfer was aborted by a fault (node crash,
    network partition, connect timeout).  Raised inside processes waiting on
    the transfer's ``done`` signal; task attempts catch it and retry."""

    def __init__(self, transfer_id: str, cause: str = "aborted"):
        super().__init__(f"transfer {transfer_id} failed: {cause}")
        self.transfer_id = transfer_id
        self.cause = cause
