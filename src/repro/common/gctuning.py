"""Cyclic-GC hygiene for long-lived simulator worlds.

Profiling the 32-tenant allocation benchmark (BENCH_alloc.json) showed the
incremental engine's ~89 ms p99 — against a ~5 ms p50 — was not an
allocation phase at all: CPython's cyclic collector periodically runs full
collections that traverse the *entire* live object graph (tens of
thousands of static tasks, blocks, events and executors), and whichever
round a collection lands in eats the pause.  The :class:`PerfCounters
<repro.metrics.collector.PerfCounters>` ``alloc_gc_collections`` breakdown
field confirms the correlation.

Two complementary mitigations:

* the allocation engines now allocate almost nothing per round (lazy
  ``_AppRound`` job state; numpy buffers in the vectorized engine are
  invisible to the cyclic collector), so rounds stop *triggering*
  collections; and
* :func:`freeze_world` moves the long-lived world into the permanently
  frozen generation after setup — the standard long-running-service
  technique (``gc.freeze``) — so the collections that still fire no longer
  traverse the static object graph.

Freezing is opt-in and bench/CLI-level: it never changes simulation
behaviour, only pause times.

For benchmark *timed sections* there is a third, stricter tool:
:func:`quiesced_gc` additionally pauses automatic collections for the
duration (the pyperf/timeit methodology).  The allocation bench drives
twin worlds in lockstep, so the reference engine's per-round rebuild
garbage would otherwise trigger collections inside the *incremental*
engine's timed rounds — a harness artifact, not allocator cost.  The
deferred work is done explicitly on exit, outside any timer.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator

__all__ = ["freeze_world", "frozen_world", "quiesced_gc"]


def freeze_world() -> int:
    """Collect garbage, then freeze every surviving object.

    Call once the long-lived state (cluster, HDFS blocks, workload) is
    fully built.  Returns the number of objects frozen.  Safe to call on
    interpreters without ``gc.freeze`` (a no-op returning 0).
    """
    gc.collect()
    if not hasattr(gc, "freeze"):  # pragma: no cover - py3.6 and older
        return 0
    before = gc.get_freeze_count()
    gc.freeze()
    return gc.get_freeze_count() - before


@contextmanager
def frozen_world() -> Iterator[None]:
    """Context manager: freeze on entry, unfreeze on exit.

    Unfreezing returns the objects to the oldest generation so a later
    full collection can still reclaim them — use this around each
    benchmark size so one size's world does not stay frozen into the
    next.
    """
    freeze_world()
    try:
        yield
    finally:
        if hasattr(gc, "unfreeze"):
            gc.unfreeze()


@contextmanager
def quiesced_gc() -> Iterator[None]:
    """Freeze the live graph and pause automatic collections.

    For benchmark timed sections only: refcounting still reclaims acyclic
    garbage immediately (the overwhelming majority), while cyclic garbage
    accumulates until exit, where one explicit full collection — outside
    any timer — cleans up.  Restores the collector's enabled state and
    unfreezes on exit.
    """
    was_enabled = gc.isenabled()
    freeze_world()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        if hasattr(gc, "unfreeze"):
            gc.unfreeze()
        gc.collect()
