"""Deterministic id factories.

Every entity in the simulation (nodes, executors, blocks, jobs, tasks)
carries a small, human-readable string id like ``"worker-017"``.  Ids are
minted per-simulation by an :class:`IdFactory` rather than from module-level
counters so that two simulations constructed in the same process produce
identical id sequences — a prerequisite for the DES determinism property
tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict


class IdFactory:
    """Mints sequential ids per prefix: ``worker-000, worker-001, ...``.

    >>> ids = IdFactory()
    >>> ids.next("worker")
    'worker-000'
    >>> ids.next("worker")
    'worker-001'
    >>> ids.next("block")
    'block-000'
    """

    def __init__(self, width: int = 3) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self._width = width
        self._counters: Dict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Return the next id for ``prefix`` and advance its counter."""
        if not prefix:
            raise ValueError("prefix must be non-empty")
        n = self._counters[prefix]
        self._counters[prefix] = n + 1
        return f"{prefix}-{n:0{self._width}d}"

    def count(self, prefix: str) -> int:
        """How many ids have been minted for ``prefix``."""
        return self._counters.get(prefix, 0)

    def reset(self, prefix: str | None = None) -> None:
        """Reset one prefix's counter, or all counters when ``prefix`` is None."""
        if prefix is None:
            self._counters.clear()
        else:
            self._counters.pop(prefix, None)
