"""Named, independent random streams derived from a single experiment seed.

Reproducibility discipline: an experiment owns exactly one integer seed; every
stochastic component (block placement, workload generation, arrival process,
task-service noise, tie-breaking) draws from its **own** named child stream.
Adding a new consumer therefore never perturbs the draws seen by existing
consumers — the classic "common random numbers" setup used to compare
scheduling policies on identical workloads (§VI-A: "we generate a common job
submission schedule that is shared by all the experiments").

Streams are spawned with :class:`numpy.random.SeedSequence`, which guarantees
statistical independence between children.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np


class SeedSequenceError(ValueError):
    """Raised when a stream name is reused inconsistently or invalid."""


class RngStreams:
    """A registry of named :class:`numpy.random.Generator` streams.

    >>> streams = RngStreams(seed=42)
    >>> placement = streams.get("hdfs.placement")
    >>> arrivals = streams.get("workload.arrivals")
    >>> placement is streams.get("hdfs.placement")   # cached
    True

    Two registries built from the same seed hand out generators that produce
    identical draws for identical names, regardless of the order in which the
    names are first requested.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root experiment seed."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The child seed depends only on ``(root seed, name)``, never on
        creation order.
        """
        if not name:
            raise SeedSequenceError("stream name must be non-empty")
        gen = self._streams.get(name)
        if gen is None:
            # Derive a stable per-name entropy from the name's bytes so that
            # stream identity is order-independent.
            name_key = [b for b in name.encode("utf-8")]
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=tuple(name_key))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def names(self) -> Iterable[str]:
        """Names of all streams created so far."""
        return tuple(self._streams)

    def fork(self, salt: int) -> "RngStreams":
        """A new registry whose streams are independent of this one.

        Used for replicated experiment trials: ``streams.fork(trial)`` gives
        trial-specific randomness while remaining a pure function of
        ``(seed, trial)``.
        """
        return RngStreams(seed=hash((self._seed, int(salt))) & 0x7FFFFFFF)

    def child(self, name: str) -> "RngStreams":
        """A shard-local registry derived from ``(root seed, name)``.

        The parallel fan-out runner hands each shard
        ``streams.child("chaos/level=1/manager=custody")`` so a worker
        process reconstructs exactly the registry the serial run would have
        used for that cell — no global state, no dependence on worker
        identity or scheduling order.  Derivation goes through
        :class:`numpy.random.SeedSequence` spawn keys (like :meth:`get`, with
        a ``0xC51D`` sentinel prefix so child registries can never collide
        with a stream of the same name), then collapses the child sequence's
        first word back into a root seed.
        """
        if not name:
            raise SeedSequenceError("child name must be non-empty")
        name_key = (0xC51D,) + tuple(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=name_key)
        return RngStreams(seed=int(seq.generate_state(1, np.uint64)[0]))
