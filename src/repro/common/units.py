"""Units for data sizes and bandwidths.

Internally the simulator works in **bytes** and **bytes/second** stored as
plain ``float``.  These helpers exist so configuration code reads like the
paper ("128 MB blocks", "40 Gbps downlink", "2 Gbps uplink") rather than
like raw exponents, and so unit mistakes show up in review.

The constants follow the conventions of the systems being modelled:

* Storage sizes are binary (HDFS's 128 MB block is ``128 * 2**20`` bytes).
* Network bandwidths are decimal bits (a "40 Gbps" NIC moves
  ``40e9 / 8`` bytes per second), matching how NIC speeds are quoted.
"""

from __future__ import annotations

from dataclasses import dataclass

# Binary byte multiples (storage convention).
KB: float = 2.0**10
MB: float = 2.0**20
GB: float = 2.0**30
TB: float = 2.0**40

# Decimal bit-rate multiples converted to bytes/second (network convention).
MBPS: float = 1e6 / 8.0
GBPS: float = 1e9 / 8.0

#: Type aliases used throughout the package for documentation purposes.
DataSize = float  # bytes
Bandwidth = float  # bytes / second


def mb(n: float) -> DataSize:
    """Return ``n`` mebibytes expressed in bytes."""
    return n * MB


def gb(n: float) -> DataSize:
    """Return ``n`` gibibytes expressed in bytes."""
    return n * GB


def gbps(n: float) -> Bandwidth:
    """Return ``n`` gigabits/second expressed in bytes/second."""
    return n * GBPS


def mbps(n: float) -> Bandwidth:
    """Return ``n`` megabits/second expressed in bytes/second."""
    return n * MBPS


def pretty_bytes(size: DataSize) -> str:
    """Human-readable rendering of a byte count (e.g. ``"128.0 MB"``)."""
    if size < 0:
        return "-" + pretty_bytes(-size)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if size >= unit:
            return f"{size / unit:.1f} {name}"
    return f"{size:.0f} B"


def pretty_seconds(seconds: float) -> str:
    """Human-readable rendering of a duration (e.g. ``"2m03s"``)."""
    if seconds < 0:
        return "-" + pretty_seconds(-seconds)
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 60:
        return f"{seconds:.2f} s"
    minutes, secs = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{secs:04.1f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h{int(minutes):02d}m{secs:04.1f}s"


@dataclass(frozen=True)
class BlockSpec:
    """Specification of the fixed-size blocks a distributed file is split into.

    Mirrors HDFS's configuration: the paper's clusters use 128 MB blocks with
    a replication level of three (§VI-A).
    """

    size: DataSize = 128 * MB
    replication: int = 3

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"block size must be positive, got {self.size}")
        if self.replication < 1:
            raise ValueError(f"replication must be >= 1, got {self.replication}")

    def blocks_for(self, file_size: DataSize) -> int:
        """Number of blocks a file of ``file_size`` bytes is split into."""
        if file_size < 0:
            raise ValueError(f"file size must be non-negative, got {file_size}")
        if file_size == 0:
            return 0
        full, rem = divmod(file_size, self.size)
        return int(full) + (1 if rem else 0)
