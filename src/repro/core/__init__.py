"""Custody's core: the data-aware resource sharing problem and its solution.

The package is pure — no simulator state — so the allocation theory can be
tested and benchmarked in isolation:

* :mod:`repro.core.demand` — the problem instance: applications, jobs and
  input tasks with their candidate (replica-holding) executors.
* :mod:`repro.core.intraapp` — Algorithm 2: priority (fewest-unsatisfied-
  tasks-first) allocation inside one application; the greedy
  2-approximation to constrained bipartite matching, plus the optimal
  matching via min-cost flow for comparison.
* :mod:`repro.core.interapp` — Algorithm 1: MINLOCALITY max-min fair
  ordering across applications.
* :mod:`repro.core.allocation` — the two-level procedure combining both,
  producing an :class:`~repro.core.demand.AllocationPlan`.
* :mod:`repro.core.flownetwork` — the maximum-concurrent-flow formulation
  (Fig. 2): network construction, LP relaxation upper bound, and an exact
  brute-force solver for small instances.
* :mod:`repro.core.matching` — bipartite matching primitives shared by the
  above.
* :mod:`repro.core.fairness` — max-min fairness predicates and indices.
"""

from repro.core.allocation import DataAwareAllocator, two_level_allocate
from repro.core.demand import (
    AllocationPlan,
    AppDemand,
    JobDemand,
    TaskDemand,
    validate_plan,
)
from repro.core.fairness import is_maxmin_fair_improvement, jains_index, lexmin_key
from repro.core.flownetwork import (
    ConcurrentFlowInstance,
    brute_force_optimum,
    build_flow_network,
    lp_concurrent_flow_bound,
)
from repro.core.interapp import min_locality_order
from repro.core.intraapp import (
    greedy_intra_app,
    optimal_intra_app,
    plan_value,
)
from repro.core.matching import (
    greedy_weighted_matching,
    matching_weight,
    max_weight_matching_with_budget,
)

__all__ = [
    "AllocationPlan",
    "AppDemand",
    "ConcurrentFlowInstance",
    "DataAwareAllocator",
    "JobDemand",
    "TaskDemand",
    "brute_force_optimum",
    "build_flow_network",
    "greedy_intra_app",
    "greedy_weighted_matching",
    "is_maxmin_fair_improvement",
    "jains_index",
    "lexmin_key",
    "lp_concurrent_flow_bound",
    "matching_weight",
    "max_weight_matching_with_budget",
    "min_locality_order",
    "optimal_intra_app",
    "plan_value",
    "two_level_allocate",
    "validate_plan",
]
