"""The two-level data-aware allocation procedure (Algorithms 1 + 2 combined).

:func:`two_level_allocate` is the heart of Custody.  Given every active
application's demand and the idle executor pool it produces an
:class:`~repro.core.demand.AllocationPlan`:

1. **Locality phase.**  While some application can still take a desired idle
   executor: pick the least-localized application (Algorithm 1, with
   locality percentages updated by the promises already made this round),
   and serve it in Algorithm 2's job-priority order — but hand control back
   to the inter-application level after *every single grant*, re-running
   MINLOCALITY (the ``ALLOCATEEXECUTOR`` early-return of Algorithm 2).
2. **Fill phase.**  Remaining idle executors are granted — still in
   min-locality order — to applications whose budget and outstanding task
   count warrant more slots (lines 17–20 of Algorithm 2), so tasks that
   cannot be local still find compute.

The procedure is deterministic and side-effect free; callers apply the plan
to live cluster state.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.demand import AllocationPlan, AppDemand, JobDemand, TaskDemand
from repro.core.interapp import pick_min_locality

__all__ = [
    "ALLOCATION_ENGINES",
    "DataAwareAllocator",
    "two_level_allocate",
    "two_level_allocate_incremental",
    "two_level_allocate_vectorized",
]

#: Selectable allocator implementations (all produce identical plans).
ALLOCATION_ENGINES = ("incremental", "reference", "vectorized")


@dataclass
class _JobRound:
    """Mutable per-job state during one allocation round."""

    demand: JobDemand
    pending: List[TaskDemand] = field(default_factory=list)
    promised: int = 0

    def __post_init__(self) -> None:
        self.pending = list(self.demand.tasks)

    @property
    def fully_promised(self) -> bool:
        """True when every unsatisfied task received a promise this round."""
        return not self.pending and self.demand.unsatisfied > 0


@dataclass
class _AppRound:
    """Mutable per-application state during one allocation round.

    ``jobs`` is materialised lazily: in the incremental engine's saturated
    steady state most apps are popped with no budget left (or nothing
    desired) and never touch their per-job state, and eagerly building a
    ``_JobRound`` per job per round was the dominant source of cyclic-GC
    pressure — full collections triggered mid-round were the entire
    32-tenant p99 spike in BENCH_alloc.json.  ``locality_key`` therefore
    reads straight from the (immutable) demand, which gives identical values
    because no job is ever removed from the list and unsatisfied counts are
    fixed for the round.
    """

    demand: AppDemand
    granted: int = 0
    promised_tasks: int = 0
    satisfied_jobs: int = 0
    _jobs: Optional[List[_JobRound]] = field(default=None, repr=False)

    @property
    def jobs(self) -> List[_JobRound]:
        """Per-job round state, built on first access."""
        if self._jobs is None:
            self._jobs = [_JobRound(j) for j in self.demand.jobs]
        return self._jobs

    @property
    def budget_left(self) -> int:
        """Executors the app may still take (σ_i − ζ_i − granted-this-round)."""
        return self.demand.budget - self.granted

    def locality_key(self) -> tuple:
        """(local-job %, local-task %, app id) including this round's promises."""
        d = self.demand
        job_den = d.decided_jobs + len(d.jobs)
        job_num = d.local_jobs + self.satisfied_jobs
        task_den = d.decided_tasks + sum(j.unsatisfied for j in d.jobs)
        task_num = d.local_tasks + self.promised_tasks
        job_frac = job_num / job_den if job_den else 0.0
        task_frac = task_num / task_den if task_den else 0.0
        return (job_frac, task_frac, d.app_id)

    def next_desired(self, available: Set[str], order: Dict[str, int]):
        """Next (job, task, executor) per Algorithm 2's priority order.

        Jobs are served fewest-pending-first; within a job the first pending
        task with an available candidate executor is chosen; the executor is
        the available candidate with the smallest cluster order.  Returns
        None when nothing desired is available.
        """
        for job in sorted(self.jobs, key=lambda j: (len(j.pending), j.demand.job_id)):
            for task in job.pending:
                usable = [c for c in task.candidates if c in available]
                if usable:
                    executor = min(usable, key=lambda ex: order[ex])
                    return job, task, executor
        return None


def _next_colocated(state: _AppRound, executor: str):
    """Next pending task (job-priority order) servable by ``executor``."""
    for job in sorted(state.jobs, key=lambda j: (len(j.pending), j.demand.job_id)):
        for task in job.pending:
            if executor in task.candidates:
                return job, task
    return None


def two_level_allocate(
    apps: Sequence[AppDemand],
    idle_executors: Sequence[str],
    *,
    fill: bool = True,
    fill_limits: Optional[Dict[str, int]] = None,
    executor_capacity: int = 1,
) -> AllocationPlan:
    """Run the full two-level procedure; see module docstring.

    Parameters
    ----------
    apps:
        Demands of all active applications.
    idle_executors:
        Idle executor ids in cluster order (the order is the deterministic
        tie-break for executor choice).
    fill:
        Enable the fill phase (grant leftover executors to apps with budget).
    fill_limits:
        Optional per-app cap on the *total* executors taken this round
        (locality grants count against it) — managers set this to the
        executor-equivalent of the app's outstanding tasks so apps do not
        hoard slots beyond their demand.
    executor_capacity:
        Task slots per executor.  The paper's analysis assumes one task per
        executor (§III-A); the deployed system runs multi-core executors, so
        a granted executor may absorb up to this many locality promises from
        its application before further grants consume budget.
    """
    if executor_capacity < 1:
        raise ValueError(f"executor_capacity must be >= 1, got {executor_capacity}")
    plan = AllocationPlan()
    rounds = {a.app_id: _AppRound(a) for a in apps}
    available: Set[str] = set(idle_executors)
    order = {ex: i for i, ex in enumerate(idle_executors)}

    # ------------------------------------------------------- locality phase
    def wants_locality(app_id: str) -> bool:
        state = rounds[app_id]
        if state.budget_left <= 0:
            return False
        return state.next_desired(available, order) is not None

    while available:
        keys = [state.locality_key() for state in rounds.values()]
        app_id = pick_min_locality(keys, eligible=wants_locality)
        if app_id is None:
            break
        state = rounds[app_id]
        # Serve this app until it stops being MINLOCALITY or runs dry
        # (the ALLOCATEEXECUTOR early return).
        while state.budget_left > 0 and available:
            step = state.next_desired(available, order)
            if step is None:
                break
            job, task, executor = step
            available.discard(executor)
            plan.grant(app_id, executor)
            plan.assign(task.task_id, executor)
            state.granted += 1
            state.promised_tasks += 1
            job.pending.remove(task)
            if job.fully_promised:
                state.satisfied_jobs += 1
            # Multi-slot executors absorb further co-located promises from
            # this app (same job-priority order) without consuming budget.
            for _ in range(executor_capacity - 1):
                extra = _next_colocated(state, executor)
                if extra is None:
                    break
                extra_job, extra_task = extra
                plan.assign(extra_task.task_id, executor)
                state.promised_tasks += 1
                extra_job.pending.remove(extra_task)
                if extra_job.fully_promised:
                    state.satisfied_jobs += 1
            keys = [s.locality_key() for s in rounds.values()]
            still_min = pick_min_locality(keys, eligible=wants_locality)
            if still_min is not None and still_min != app_id:
                break

    # ----------------------------------------------------------- fill phase
    if fill and available:
        # A fill limit caps the app's total take this round: executors
        # already granted for locality count against it, so an app that got
        # everything it needs locally receives no filler.
        limits = {
            app_id: max(0, cap - rounds[app_id].granted)
            for app_id, cap in (fill_limits or {}).items()
        }

        def wants_fill(app_id: str) -> bool:
            state = rounds[app_id]
            if state.budget_left <= 0:
                return False
            if app_id in limits and limits[app_id] <= 0:
                return False
            return True

        while available:
            keys = [state.locality_key() for state in rounds.values()]
            app_id = pick_min_locality(keys, eligible=wants_fill)
            if app_id is None:
                break
            state = rounds[app_id]
            executor = min(available, key=lambda ex: order[ex])
            available.discard(executor)
            plan.grant(app_id, executor)
            state.granted += 1
            if app_id in limits:
                limits[app_id] -= 1

    return plan


def two_level_allocate_incremental(
    apps: Sequence[AppDemand],
    idle_executors: Sequence[str],
    *,
    fill: bool = True,
    fill_limits: Optional[Dict[str, int]] = None,
    executor_capacity: int = 1,
) -> AllocationPlan:
    """Heap-based :func:`two_level_allocate` producing bitwise-identical plans.

    The reference procedure recomputes *every* application's
    ``locality_key()`` (an O(jobs) sum each) and re-runs MINLOCALITY after
    each single grant — O(apps × jobs) per executor handed out.  This engine
    exploits three invariants of the round:

    * an application's key changes **only** when that application itself is
      granted (promises/satisfied-jobs are per-app state), so a heap with
      exactly one live entry per app — pop, grant, push the new key — stays
      consistent without ever touching the other apps;
    * eligibility (budget left *and* a desired executor available) is
      monotone-decreasing as the round progresses (budgets and the idle pool
      only shrink, pending task lists only shrink), so an app popped while
      ineligible can be dropped for the rest of the phase — and the
      desired-step scan runs at most once per pop instead of once per
      eligibility probe inside every MINLOCALITY pass.

    The fill phase adds a third: keys do not depend on fill grants at all,
    so the min-locality order is computed once and the remaining executors
    are drained through a pre-built min-heap on cluster order.

    Together these turn a round from O(grants × apps × jobs) into
    O(grants × log(apps) + apps × jobs).  Same signature, same plan,
    different cost — the equivalence suite asserts plan identity.
    """
    if executor_capacity < 1:
        raise ValueError(f"executor_capacity must be >= 1, got {executor_capacity}")
    plan = AllocationPlan()
    rounds = {a.app_id: _AppRound(a) for a in apps}
    available: Set[str] = set(idle_executors)
    order = {ex: i for i, ex in enumerate(idle_executors)}

    # ------------------------------------------------------- locality phase
    # One live heap entry per app; keys are the (job %, task %, app id)
    # tuples MINLOCALITY sorts on, unique by construction.
    key_heap: List[Tuple[float, float, str]] = [
        state.locality_key() for state in rounds.values()
    ]
    heapq.heapify(key_heap)

    while available and key_heap:
        app_id = heapq.heappop(key_heap)[2]
        state = rounds[app_id]
        if state.budget_left <= 0:
            continue  # permanently ineligible — drop from the phase
        step = state.next_desired(available, order)
        if step is None:
            continue  # nothing desired is (or will become) available
        job, task, executor = step
        available.discard(executor)
        plan.grant(app_id, executor)
        plan.assign(task.task_id, executor)
        state.granted += 1
        state.promised_tasks += 1
        job.pending.remove(task)
        if job.fully_promised:
            state.satisfied_jobs += 1
        for _ in range(executor_capacity - 1):
            extra = _next_colocated(state, executor)
            if extra is None:
                break
            extra_job, extra_task = extra
            plan.assign(extra_task.task_id, executor)
            state.promised_tasks += 1
            extra_job.pending.remove(extra_task)
            if extra_job.fully_promised:
                state.satisfied_jobs += 1
        heapq.heappush(key_heap, state.locality_key())

    # ----------------------------------------------------------- fill phase
    if fill and available:
        limits = {
            app_id: max(0, cap - rounds[app_id].granted)
            for app_id, cap in (fill_limits or {}).items()
        }
        # Fill grants leave every locality key untouched, and fill
        # eligibility (budget, per-app limit) only ever decreases — so one
        # sorted pass, serving each app to exhaustion, reproduces the
        # reference's pick-min-per-grant loop exactly.
        exec_heap = [(order[ex], ex) for ex in available]
        heapq.heapify(exec_heap)
        for key in sorted(state.locality_key() for state in rounds.values()):
            if not exec_heap:
                break
            state = rounds[key[2]]
            while (
                exec_heap
                and state.budget_left > 0
                and limits.get(key[2], 1) > 0
            ):
                _, executor = heapq.heappop(exec_heap)
                available.discard(executor)
                plan.grant(key[2], executor)
                state.granted += 1
                if key[2] in limits:
                    limits[key[2]] -= 1

    return plan


class _VecAppRound:
    """Array-backed per-application round state for the vectorized engine.

    Flattens the app's (job, task, candidate) structure into numpy arrays
    once per round — candidate ids pre-mapped to cluster-order positions and
    pre-sorted per task — so the desired-step scan is boolean indexing over
    contiguous segments instead of per-probe Python list builds, and the
    per-round garbage is a handful of untracked numpy buffers instead of a
    ``_JobRound``-per-job object storm.  Decisions are replayed in exactly
    the incremental engine's order: jobs by ``(pending count, job id)``,
    tasks in demand order, executors by smallest available cluster order.
    """

    __slots__ = (
        "demand",
        "granted",
        "promised_tasks",
        "satisfied_jobs",
        "tasks",
        "n_jobs",
        "job_off",
        "cand_off",
        "cand_flat",
        "alive",
        "pending",
        "unsat",
        "job_rank",
        "_task_den",
    )

    def __init__(self, demand: AppDemand, order: Dict[str, int]) -> None:
        self.demand = demand
        self.granted = 0
        self.promised_tasks = 0
        self.satisfied_jobs = 0
        jobs = demand.jobs
        self.n_jobs = len(jobs)
        tasks: List[TaskDemand] = []
        job_off = np.zeros(len(jobs) + 1, dtype=np.int64)
        for j, job in enumerate(jobs):
            tasks.extend(job.tasks)
            job_off[j + 1] = len(tasks)
        self.tasks = tasks
        self.job_off = job_off
        flat: List[int] = []
        cand_off = np.zeros(len(tasks) + 1, dtype=np.int64)
        for t, task in enumerate(tasks):
            flat.extend(sorted(order[c] for c in task.candidates if c in order))
            cand_off[t + 1] = len(flat)
        self.cand_flat = np.asarray(flat, dtype=np.int64)
        self.cand_off = cand_off
        self.alive = np.ones(len(tasks), dtype=bool)
        self.pending = np.diff(job_off)
        self.unsat = np.fromiter(
            (j.unsatisfied for j in jobs), dtype=np.int64, count=len(jobs)
        )
        self._task_den = int(self.unsat.sum())
        # Lexicographic rank of each job id, fixed for the round; combined
        # with the live pending counts it reproduces the engines' job sort
        # key (pending count, job id) via a single integer lexsort.
        by_id = sorted(range(len(jobs)), key=lambda j: jobs[j].job_id)
        self.job_rank = np.zeros(len(jobs), dtype=np.int64)
        for rank, j in enumerate(by_id):
            self.job_rank[j] = rank

    @property
    def budget_left(self) -> int:
        return self.demand.budget - self.granted

    def locality_key(self) -> tuple:
        d = self.demand
        job_den = d.decided_jobs + self.n_jobs
        job_num = d.local_jobs + self.satisfied_jobs
        task_den = d.decided_tasks + self._task_den
        task_num = d.local_tasks + self.promised_tasks
        job_frac = job_num / job_den if job_den else 0.0
        task_frac = task_num / task_den if task_den else 0.0
        return (job_frac, task_frac, d.app_id)

    def _job_order(self) -> np.ndarray:
        return np.lexsort((self.job_rank, self.pending))

    def next_desired(self, avail: np.ndarray):
        """Next (job idx, task idx, executor position) or None."""
        for j in self._job_order():
            lo, hi = int(self.job_off[j]), int(self.job_off[j + 1])
            for t in range(lo, hi):
                if not self.alive[t]:
                    continue
                seg = self.cand_flat[self.cand_off[t] : self.cand_off[t + 1]]
                mask = avail[seg]
                if mask.any():
                    return int(j), t, int(seg[int(np.argmax(mask))])
        return None

    def next_colocated(self, position: int):
        """Next promisable (job idx, task idx) with ``position`` a candidate."""
        for j in self._job_order():
            lo, hi = int(self.job_off[j]), int(self.job_off[j + 1])
            for t in range(lo, hi):
                if not self.alive[t]:
                    continue
                seg = self.cand_flat[self.cand_off[t] : self.cand_off[t + 1]]
                i = int(np.searchsorted(seg, position))
                if i < seg.size and seg[i] == position:
                    return int(j), t
        return None

    def note_promise(self, j: int, t: int) -> None:
        """Record a task promise (grant or co-located assignment)."""
        self.alive[t] = False
        self.pending[j] -= 1
        self.promised_tasks += 1
        if self.pending[j] == 0 and self.unsat[j] > 0:
            self.satisfied_jobs += 1


def two_level_allocate_vectorized(
    apps: Sequence[AppDemand],
    idle_executors: Sequence[str],
    *,
    fill: bool = True,
    fill_limits: Optional[Dict[str, int]] = None,
    executor_capacity: int = 1,
) -> AllocationPlan:
    """Numpy-backed :func:`two_level_allocate_incremental`; identical plans.

    Same heap discipline as the incremental engine (one live key per app,
    pop → grant → push; one sorted fill pass), but the per-app round state
    lives in flat numpy arrays (:class:`_VecAppRound`): candidate sets are
    mapped to cluster-order positions once, availability is a boolean vector
    indexed by position, and the desired-executor pick is an ``argmax`` over
    a pre-sorted candidate segment.  Numpy buffers are invisible to the
    cyclic garbage collector, so a round's allocation churn no longer
    triggers the full collections behind the 32-tenant p99 tail.  The
    equivalence suite asserts plan identity against both other engines.
    """
    if executor_capacity < 1:
        raise ValueError(f"executor_capacity must be >= 1, got {executor_capacity}")
    plan = AllocationPlan()
    idle = list(idle_executors)
    order = {ex: i for i, ex in enumerate(idle)}
    avail = np.ones(len(idle), dtype=bool)
    n_avail = len(idle)
    rounds = {a.app_id: _VecAppRound(a, order) for a in apps}

    # ------------------------------------------------------- locality phase
    key_heap: List[Tuple[float, float, str]] = [
        state.locality_key() for state in rounds.values()
    ]
    heapq.heapify(key_heap)

    while n_avail and key_heap:
        app_id = heapq.heappop(key_heap)[2]
        state = rounds[app_id]
        if state.budget_left <= 0:
            continue
        step = state.next_desired(avail)
        if step is None:
            continue
        j, t, position = step
        avail[position] = False
        n_avail -= 1
        executor = idle[position]
        plan.grant(app_id, executor)
        plan.assign(state.tasks[t].task_id, executor)
        state.granted += 1
        state.note_promise(j, t)
        for _ in range(executor_capacity - 1):
            extra = state.next_colocated(position)
            if extra is None:
                break
            extra_j, extra_t = extra
            plan.assign(state.tasks[extra_t].task_id, executor)
            state.note_promise(extra_j, extra_t)
        heapq.heappush(key_heap, state.locality_key())

    # ----------------------------------------------------------- fill phase
    if fill and n_avail:
        limits = {
            app_id: max(0, cap - rounds[app_id].granted)
            for app_id, cap in (fill_limits or {}).items()
        }
        exec_heap = [(int(i), idle[int(i)]) for i in np.flatnonzero(avail)]
        heapq.heapify(exec_heap)
        for key in sorted(state.locality_key() for state in rounds.values()):
            if not exec_heap:
                break
            state = rounds[key[2]]
            while (
                exec_heap
                and state.budget_left > 0
                and limits.get(key[2], 1) > 0
            ):
                _, executor = heapq.heappop(exec_heap)
                plan.grant(key[2], executor)
                state.granted += 1
                if key[2] in limits:
                    limits[key[2]] -= 1

    return plan


class DataAwareAllocator:
    """Object façade over the allocation engines with stable settings.

    Keeps the fill policy in one place so the Custody manager and the
    ablation benches construct allocation rounds identically.  ``engine``
    selects the implementation: ``"incremental"`` (heap-based, the default),
    ``"reference"`` (the seed from-scratch rescan) or ``"vectorized"``
    (numpy-backed heap engine) — all produce bitwise-identical plans.
    """

    def __init__(
        self,
        *,
        fill: bool = True,
        executor_capacity: int = 1,
        engine: str = "incremental",
    ):
        if engine not in ALLOCATION_ENGINES:
            raise ValueError(
                f"unknown allocation engine {engine!r}; choose from {ALLOCATION_ENGINES}"
            )
        self.fill = fill
        self.executor_capacity = executor_capacity
        self.engine = engine

    def allocate(
        self,
        apps: Sequence[AppDemand],
        idle_executors: Sequence[str],
        *,
        fill_limits: Optional[Dict[str, int]] = None,
    ) -> AllocationPlan:
        """Produce an allocation plan for one round."""
        run = {
            "incremental": two_level_allocate_incremental,
            "reference": two_level_allocate,
            "vectorized": two_level_allocate_vectorized,
        }[self.engine]
        return run(
            apps,
            idle_executors,
            fill=self.fill,
            fill_limits=fill_limits,
            executor_capacity=self.executor_capacity,
        )
