"""The allocation problem instance and its solution object.

Notation mapping to the paper (Table I):

=================  ==========================================================
Paper              Here
=================  ==========================================================
``A_i``            :class:`AppDemand` (one per application)
``J_ij``           :class:`JobDemand`
``T_ijk``          :class:`TaskDemand`
``x^u_ijk``        ``executor in TaskDemand.candidates`` (replica holders)
``y^u_i``          ``executor in AllocationPlan.executors_of(app)``
``z^u_ijk``        ``AllocationPlan.assignment[task_id] == executor``
``sigma_i``        ``AppDemand.quota``
``zeta_i``         ``AppDemand.held`` (executors the app already has)
``mu_ij``          ``JobDemand.total_tasks``
``rho_i, tau_i``   derived properties
=================  ==========================================================

Instances are built either by hand (tests, the paper's worked examples) or
from live simulator state by :class:`repro.managers.custody.CustodyManager`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set

from repro.common.errors import AllocationError, ConfigurationError

__all__ = ["TaskDemand", "JobDemand", "AppDemand", "AllocationPlan", "validate_plan"]


@dataclass(frozen=True)
class TaskDemand:
    """One unsatisfied input task: which executors could serve it locally.

    ``candidates`` is the set x^u_ijk = 1: executors residing on nodes that
    hold a replica of the task's input block.  An empty candidate set is
    legal (every replica holder may be fully booked) — the task simply cannot
    achieve locality this round.
    """

    task_id: str
    candidates: FrozenSet[str]

    @staticmethod
    def of(task_id: str, candidates: Iterable[str]) -> "TaskDemand":
        """Convenience constructor accepting any iterable of executor ids."""
        return TaskDemand(task_id, frozenset(candidates))


@dataclass(frozen=True)
class JobDemand:
    """One job's unsatisfied input tasks.

    ``total_tasks`` is µ_ij — the job's *full* input-task count, which may
    exceed ``len(tasks)`` when some tasks are already satisfied (running
    locally or promised a local executor earlier).  Algorithm 2 sorts jobs by
    ``len(tasks)`` (unsatisfied count); the job-level locality credit of a
    task is 1/µ_ij.
    """

    job_id: str
    tasks: Sequence[TaskDemand]
    total_tasks: Optional[int] = None

    def __post_init__(self) -> None:
        total = self.total_tasks if self.total_tasks is not None else len(self.tasks)
        if total < len(self.tasks):
            raise ConfigurationError(
                f"job {self.job_id}: total_tasks={total} < unsatisfied={len(self.tasks)}"
            )
        object.__setattr__(self, "total_tasks", total)

    @property
    def unsatisfied(self) -> int:
        """Number of input tasks still lacking a local executor."""
        return len(self.tasks)


@dataclass(frozen=True)
class AppDemand:
    """One application's view for an allocation round.

    ``held`` (ζ_i) counts executors the application currently owns;
    ``quota`` (σ_i) caps the total it may own.  ``local_jobs`` /
    ``decided_jobs`` / ``local_tasks`` / ``decided_tasks`` carry the
    *historical* locality record Algorithm 1 sorts on; the allocator adds the
    locality it promises during the round on top of these.
    """

    app_id: str
    jobs: Sequence[JobDemand]
    quota: int
    held: int = 0
    local_jobs: int = 0
    decided_jobs: int = 0
    local_tasks: int = 0
    decided_tasks: int = 0

    def __post_init__(self) -> None:
        if self.quota < 0 or self.held < 0:
            raise ConfigurationError(f"app {self.app_id}: negative quota/held")
        if self.held > self.quota:
            raise ConfigurationError(
                f"app {self.app_id}: held={self.held} exceeds quota={self.quota}"
            )
        if self.local_jobs > self.decided_jobs or self.local_tasks > self.decided_tasks:
            raise ConfigurationError(f"app {self.app_id}: locality counts inconsistent")
        seen: Set[str] = set()
        for job in self.jobs:
            if job.job_id in seen:
                raise ConfigurationError(f"app {self.app_id}: duplicate job {job.job_id}")
            seen.add(job.job_id)

    @property
    def budget(self) -> int:
        """Executors the app may still acquire this round (σ_i − ζ_i)."""
        return self.quota - self.held

    @property
    def total_unsatisfied(self) -> int:
        """Unsatisfied input tasks across all jobs."""
        return sum(j.unsatisfied for j in self.jobs)


@dataclass
class AllocationPlan:
    """The outcome of one allocation round.

    ``grants`` maps app id → executor ids newly allocated to it;
    ``assignment`` maps task id → the granted executor promised to serve it
    locally (the z^u_ijk = 1 entries); ``released`` maps app id → executor
    ids the app should give back (used by the swap mechanism).
    """

    grants: Dict[str, List[str]] = field(default_factory=dict)
    assignment: Dict[str, str] = field(default_factory=dict)
    released: Dict[str, List[str]] = field(default_factory=dict)

    def executors_of(self, app_id: str) -> List[str]:
        """Executors granted to ``app_id`` this round."""
        return list(self.grants.get(app_id, []))

    def grant(self, app_id: str, executor_id: str) -> None:
        """Record a new executor grant."""
        self.grants.setdefault(app_id, []).append(executor_id)

    def assign(self, task_id: str, executor_id: str) -> None:
        """Record a local-service promise for ``task_id``."""
        if task_id in self.assignment:
            raise AllocationError(f"task {task_id} assigned twice")
        self.assignment[task_id] = executor_id

    def release(self, app_id: str, executor_id: str) -> None:
        """Record that ``app_id`` should return ``executor_id``."""
        self.released.setdefault(app_id, []).append(executor_id)

    @property
    def total_granted(self) -> int:
        """Executors granted across all applications."""
        return sum(len(v) for v in self.grants.values())

    def satisfied_tasks(self) -> Set[str]:
        """Tasks promised a local executor."""
        return set(self.assignment)

    def signature(self) -> tuple:
        """Canonical hashable form for plan-equality comparisons.

        Grant order *within* an app is preserved (it is part of the
        deterministic contract the engines must agree on); the order apps
        and tasks appear in the dicts is not.
        """
        return (
            tuple(sorted((a, tuple(e)) for a, e in self.grants.items())),
            tuple(sorted(self.assignment.items())),
            tuple(sorted((a, tuple(e)) for a, e in self.released.items())),
        )


def validate_plan(
    plan: AllocationPlan,
    apps: Sequence[AppDemand],
    idle_executors: Iterable[str],
    held_executors: Optional[Mapping[str, Iterable[str]]] = None,
    *,
    executor_capacity: int = 1,
) -> None:
    """Check a plan against the paper's feasibility constraints.

    Raises :class:`AllocationError` on any violation of:

    * Eq. (2): each executor granted to at most one application, and only
      from the idle pool (or from an app's own released executors);
    * Eq. (3): each granted executor promised to at most
      ``executor_capacity`` tasks (the paper's analysis fixes this at one;
      the deployed multi-slot executors raise it);
    * Eq. (4): each task assigned at most one executor;
    * x-feasibility: a task's assigned executor must be one of its candidates
      and must be granted to the task's own application;
    * quota: grants − releases never push an app beyond σ_i.

    ``held_executors`` optionally maps app id → executors it owned before the
    round, so swap-releases can be checked for ownership.
    """
    idle = set(idle_executors)
    held = {a: set(e) for a, e in (held_executors or {}).items()}

    seen: Set[str] = set()
    for app_id, executors in plan.grants.items():
        for ex in executors:
            if ex in seen:
                raise AllocationError(f"executor {ex} granted twice")
            seen.add(ex)
            released_here = ex in {
                r for rels in plan.released.values() for r in rels
            }
            if ex not in idle and not released_here:
                raise AllocationError(f"executor {ex} granted but not idle")

    for app_id, executors in plan.released.items():
        if held and app_id in held:
            for ex in executors:
                if ex not in held[app_id]:
                    raise AllocationError(
                        f"app {app_id} releases {ex} it does not hold"
                    )

    app_by_id = {a.app_id: a for a in apps}
    task_owner: Dict[str, str] = {}
    task_candidates: Dict[str, FrozenSet[str]] = {}
    for app in apps:
        for job in app.jobs:
            for task in job.tasks:
                task_owner[task.task_id] = app.app_id
                task_candidates[task.task_id] = task.candidates

    promise_count: Dict[str, int] = {}
    for task_id, executor_id in plan.assignment.items():
        if task_id not in task_owner:
            raise AllocationError(f"assignment references unknown task {task_id}")
        promise_count[executor_id] = promise_count.get(executor_id, 0) + 1
        if promise_count[executor_id] > executor_capacity:
            raise AllocationError(
                f"executor {executor_id} promised to {promise_count[executor_id]} "
                f"tasks (capacity {executor_capacity})"
            )
        if executor_id not in task_candidates[task_id]:
            raise AllocationError(
                f"task {task_id} assigned non-candidate executor {executor_id}"
            )
        owner = task_owner[task_id]
        if executor_id not in set(plan.grants.get(owner, ())):
            raise AllocationError(
                f"task {task_id} (app {owner}) assigned executor {executor_id} "
                "that was not granted to its application"
            )

    for app_id, executors in plan.grants.items():
        app = app_by_id.get(app_id)
        if app is None:
            raise AllocationError(f"grant to unknown app {app_id}")
        releases = len(plan.released.get(app_id, ()))
        if app.held + len(executors) - releases > app.quota:
            raise AllocationError(
                f"app {app_id} would hold {app.held + len(executors) - releases} "
                f"> quota {app.quota}"
            )
