"""Max-min fairness predicates and indices.

Custody's inter-application objective is max-min fairness on the percentage
of local jobs (Eq. 6).  These helpers give tests and benches a precise
vocabulary for "fairer":

* :func:`lexmin_key` — the leximin ordering key: allocation A is max-min
  fairer than B iff ``lexmin_key(A) > lexmin_key(B)``;
* :func:`is_maxmin_fair_improvement` — strict leximin comparison;
* :func:`jains_index` — Jain's fairness index, the standard scalar summary
  reported alongside the leximin comparison.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["lexmin_key", "is_maxmin_fair_improvement", "jains_index"]


def lexmin_key(values: Sequence[float]) -> Tuple[float, ...]:
    """The leximin comparison key: values sorted ascending.

    Comparing keys with ``>`` implements the standard leximin order: raise
    the minimum first, then the second-minimum, and so on.
    """
    return tuple(sorted(values))


def is_maxmin_fair_improvement(
    candidate: Sequence[float], baseline: Sequence[float]
) -> bool:
    """True when ``candidate`` strictly leximin-dominates ``baseline``.

    Both vectors must have equal length (one entry per application).
    """
    if len(candidate) != len(baseline):
        raise ValueError(
            f"vector lengths differ: {len(candidate)} vs {len(baseline)}"
        )
    return lexmin_key(candidate) > lexmin_key(baseline)


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²), in (0, 1]; 1 = perfectly even.

    A vector of all zeros is defined as perfectly fair (index 1.0).
    """
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        raise ValueError("empty vector")
    if np.any(x < 0):
        raise ValueError("values must be non-negative")
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0
    return float(np.sum(x)) ** 2 / denom
