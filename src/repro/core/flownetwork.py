"""The maximum-concurrent-flow formulation of task-level sharing (§III-B).

The paper converts the task-level problem (Eq. 1–5) into a maximum
concurrent flow instance (Fig. 2): one source per application with demand
τ_i, a node per task and per executor, unit capacities, and a common sink.
With integral flows the problem is NP-hard, which motivates Custody's
two-level heuristic.  This module provides the three tools the theory bench
uses to quantify that design decision:

* :func:`build_flow_network` — the literal Fig. 2 graph (networkx), for
  inspection and tests;
* :func:`lp_concurrent_flow_bound` — the fractional LP relaxation solved
  with ``scipy.optimize.linprog``; its optimum λ* upper-bounds any integral
  allocation's min-locality fraction;
* :func:`brute_force_optimum` — the exact integral optimum by exhaustive
  executor-ownership enumeration + per-app maximum bipartite matching, for
  instances small enough to enumerate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.common.errors import ConfigurationError
from repro.core.demand import AppDemand

__all__ = [
    "ConcurrentFlowInstance",
    "build_flow_network",
    "lp_concurrent_flow_bound",
    "brute_force_optimum",
]


@dataclass(frozen=True)
class ConcurrentFlowInstance:
    """A task-level sharing instance: applications plus the executor universe."""

    apps: Tuple[AppDemand, ...]
    executors: Tuple[str, ...]

    @staticmethod
    def of(apps: Sequence[AppDemand], executors: Sequence[str]) -> "ConcurrentFlowInstance":
        """Validating constructor: every candidate must be a known executor."""
        known = set(executors)
        for app in apps:
            for job in app.jobs:
                for task in job.tasks:
                    unknown = task.candidates - known
                    if unknown:
                        raise ConfigurationError(
                            f"task {task.task_id} references unknown executors {sorted(unknown)}"
                        )
        return ConcurrentFlowInstance(tuple(apps), tuple(executors))

    @property
    def demands(self) -> Dict[str, int]:
        """τ_i per application (its total unsatisfied input tasks)."""
        return {a.app_id: a.total_unsatisfied for a in self.apps}


def build_flow_network(instance: ConcurrentFlowInstance) -> nx.DiGraph:
    """The Fig. 2 construction.

    Nodes: ``("source", app)``, ``("task", task_id)``, ``("executor", id)``
    and ``"sink"``.  Edges carry unit capacity except source edges (unit per
    task) — the per-application demand lives in the node attribute
    ``demand`` on its source.
    """
    graph = nx.DiGraph()
    graph.add_node("sink")
    for executor in instance.executors:
        graph.add_node(("executor", executor))
        graph.add_edge(("executor", executor), "sink", capacity=1)
    for app in instance.apps:
        src = ("source", app.app_id)
        graph.add_node(src, demand=app.total_unsatisfied)
        for job in app.jobs:
            for task in job.tasks:
                tnode = ("task", task.task_id)
                graph.add_node(tnode)
                graph.add_edge(src, tnode, capacity=1)
                for candidate in sorted(task.candidates):
                    graph.add_edge(tnode, ("executor", candidate), capacity=1)
    return graph


def lp_concurrent_flow_bound(instance: ConcurrentFlowInstance) -> float:
    """λ* of the fractional relaxation — an upper bound on min-i locality %.

    Variables: f_{t,u} (task t served by candidate u), y_{i,u} (executor u
    fractionally allocated to app i), and λ.  Constraints (2)–(4) of the
    paper, with the y/z product linearised as ``f_{t,u} ≤ y_{i(t),u}``.
    Returns λ* ∈ [0, 1]; apps with zero tasks are skipped (their ratio is
    vacuously 1).
    """
    apps = [a for a in instance.apps if a.total_unsatisfied > 0]
    if not apps:
        return 1.0
    # Index variables.
    f_index: Dict[Tuple[str, str], int] = {}
    y_index: Dict[Tuple[str, str], int] = {}
    tasks_of_app: Dict[str, List[str]] = {}
    candidates_of_task: Dict[str, List[str]] = {}
    for app in apps:
        tasks_of_app[app.app_id] = []
        for job in app.jobs:
            for task in job.tasks:
                tasks_of_app[app.app_id].append(task.task_id)
                candidates_of_task[task.task_id] = sorted(task.candidates)
                for u in sorted(task.candidates):
                    f_index[(task.task_id, u)] = len(f_index)
                    y_index.setdefault((app.app_id, u), 0)
    n_f = len(f_index)
    for i, key in enumerate(sorted(y_index)):
        y_index[key] = n_f + i
    n_y = len(y_index)
    lam = n_f + n_y
    n_vars = n_f + n_y + 1

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    rhs: List[float] = []
    row = 0

    def add_entry(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        vals.append(v)

    # (4) per task: sum_u f <= 1
    for task_id, cands in candidates_of_task.items():
        for u in cands:
            add_entry(row, f_index[(task_id, u)], 1.0)
        rhs.append(1.0)
        row += 1
    # (3) per executor: sum_t f <= 1
    per_exec: Dict[str, List[int]] = {}
    for (task_id, u), idx in f_index.items():
        per_exec.setdefault(u, []).append(idx)
    for u in sorted(per_exec):
        for idx in per_exec[u]:
            add_entry(row, idx, 1.0)
        rhs.append(1.0)
        row += 1
    # linking: f_{t,u} - y_{i(t),u} <= 0
    owner_of_task = {
        t: app.app_id for app in apps for t in tasks_of_app[app.app_id]
    }
    for (task_id, u), idx in f_index.items():
        add_entry(row, idx, 1.0)
        add_entry(row, y_index[(owner_of_task[task_id], u)], -1.0)
        rhs.append(0.0)
        row += 1
    # (2) per executor: sum_i y <= 1
    per_exec_y: Dict[str, List[int]] = {}
    for (app_id, u), idx in y_index.items():
        per_exec_y.setdefault(u, []).append(idx)
    for u in sorted(per_exec_y):
        for idx in per_exec_y[u]:
            add_entry(row, idx, 1.0)
        rhs.append(1.0)
        row += 1
    # concurrency: lambda * tau_i - sum f_i <= 0
    for app in apps:
        tau = app.total_unsatisfied
        add_entry(row, lam, float(tau))
        for task_id in tasks_of_app[app.app_id]:
            for u in candidates_of_task[task_id]:
                add_entry(row, f_index[(task_id, u)], -1.0)
        rhs.append(0.0)
        row += 1

    a_ub = coo_matrix((vals, (rows, cols)), shape=(row, n_vars))
    c = np.zeros(n_vars)
    c[lam] = -1.0
    bounds = [(0.0, 1.0)] * (n_f + n_y) + [(0.0, 1.0)]
    res = linprog(c, A_ub=a_ub, b_ub=np.asarray(rhs), bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - linprog failure is exceptional
        raise ConfigurationError(f"LP relaxation failed: {res.message}")
    return float(res.x[lam])


def brute_force_optimum(
    instance: ConcurrentFlowInstance, *, max_states: int = 2_000_000
) -> Tuple[float, Dict[str, str]]:
    """Exact integral optimum of Eq. (1): max over executor ownerships.

    Enumerates every assignment of each executor to one application (or to
    nobody), computing for each the per-application maximum bipartite
    matching between its tasks and its executors; the objective is
    ``min_i matched_i / τ_i``.  Exponential — guarded by ``max_states``.

    Returns ``(optimum, ownership)`` where ownership maps executor id → app
    id for one optimal assignment.
    """
    apps = [a for a in instance.apps if a.total_unsatisfied > 0]
    if not apps:
        return 1.0, {}
    executors = list(instance.executors)
    n_states = (len(apps) + 1) ** len(executors)
    if n_states > max_states:
        raise ConfigurationError(
            f"{n_states} ownership states exceed max_states={max_states}"
        )

    # Pre-extract per-app task candidate lists.
    app_tasks: Dict[str, List[Tuple[str, frozenset]]] = {
        app.app_id: [
            (task.task_id, task.candidates) for job in app.jobs for task in job.tasks
        ]
        for app in apps
    }
    quotas = {app.app_id: app.quota for app in apps}
    taus = {app.app_id: app.total_unsatisfied for app in apps}

    best = -1.0
    best_ownership: Dict[str, str] = {}
    choices = [None] + [a.app_id for a in apps]
    for combo in itertools.product(choices, repeat=len(executors)):
        owned: Dict[str, List[str]] = {a.app_id: [] for a in apps}
        for executor, owner in zip(executors, combo):
            if owner is not None:
                owned[owner].append(executor)
        if any(len(owned[a]) > quotas[a] for a in owned):
            continue
        worst = float("inf")
        for app_id, held in owned.items():
            held_set = set(held)
            graph = nx.Graph()
            left = []
            for task_id, candidates in app_tasks[app_id]:
                usable = candidates & held_set
                if usable:
                    left.append(task_id)
                    for u in usable:
                        graph.add_edge(("t", task_id), ("e", u))
            matched = 0
            if graph.number_of_edges():
                matching = nx.bipartite.maximum_matching(
                    graph, top_nodes=[("t", t) for t in left]
                )
                matched = sum(1 for k in matching if k[0] == "t")
            worst = min(worst, matched / taus[app_id])
        if worst > best:
            best = worst
            best_ownership = {
                executor: owner
                for executor, owner in zip(executors, combo)
                if owner is not None
            }
    return best, best_ownership
