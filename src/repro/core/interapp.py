"""Algorithm 1 — data-aware inter-application ordering.

MINLOCALITY: sort applications by the percentage of local jobs achieved so
far, breaking ties by the percentage of local tasks, and let the first one
choose executors.  The allocator re-evaluates the order after every single
grant (line 5 of Algorithm 2's ALLOCATEEXECUTOR returns control when the
current application stops being the minimum), which is what yields the
max-min fair progression of Fig. 3.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["min_locality_order", "pick_min_locality"]

#: An application's locality record as Algorithm 1 sees it.
LocalityKey = Tuple[float, float, str]


def min_locality_order(
    keys: Sequence[LocalityKey],
) -> List[LocalityKey]:
    """Applications sorted least-localized first.

    ``keys`` are ``(local_job_fraction, local_task_fraction, app_id)``
    tuples; the app id makes the order total and deterministic.
    """
    return sorted(keys)


def pick_min_locality(
    keys: Sequence[LocalityKey],
    eligible: Optional[Callable[[str], bool]] = None,
) -> Optional[str]:
    """The MINLOCALITY procedure: id of the least-localized eligible app.

    ``eligible`` filters out applications that cannot take an executor this
    round (budget exhausted, nothing desired); returns None when no app is
    eligible.
    """
    for _jobs, _tasks, app_id in min_locality_order(keys):
        if eligible is None or eligible(app_id):
            return app_id
    return None
