"""Algorithm 2 — data-aware intra-application allocation.

Given one application's unsatisfied input tasks, the executors currently
idle, and the budget σ_i − ζ_i, choose executors that maximise the number of
*local jobs* (Eq. 9).  The paper's strategy: process jobs in increasing
order of unsatisfied input tasks, satisfying **all** tasks of a job before
moving on ("we apply for all the desired executors of a job before moving to
the next job"), because partially-local jobs are still straggler-bound
(Fig. 4/5).  This equals greedy heaviest-edge-first matching under weights
``1/µ_ij`` and is a 2-approximation to the constrained bipartite matching
optimum, which :func:`optimal_intra_app` computes exactly for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.core.demand import AppDemand, JobDemand
from repro.core.matching import max_weight_matching_with_budget

__all__ = ["IntraAppResult", "greedy_intra_app", "optimal_intra_app", "plan_value", "job_priority_order"]


@dataclass
class IntraAppResult:
    """Outcome of one intra-application round."""

    granted: List[str] = field(default_factory=list)
    assignment: Dict[str, str] = field(default_factory=dict)
    satisfied_jobs: List[str] = field(default_factory=list)

    @property
    def locality_grants(self) -> int:
        """Executors granted with a locality promise attached."""
        return len(self.assignment)


def job_priority_order(jobs: Sequence[JobDemand]) -> List[JobDemand]:
    """Jobs in Algorithm 2's service order: fewest unsatisfied tasks first.

    The paper breaks ties randomly; we break them by job id so allocation is
    reproducible (randomised tie-breaking is exercised separately in the
    ablation bench by shuffling ids).
    """
    return sorted(jobs, key=lambda j: (j.unsatisfied, j.job_id))


def greedy_intra_app(
    app: AppDemand,
    idle_executors: Sequence[str],
    *,
    budget: Optional[int] = None,
    fill: bool = False,
    fill_limit: Optional[int] = None,
) -> IntraAppResult:
    """Algorithm 2, run to completion for a single application.

    Parameters
    ----------
    app:
        The application's demand (jobs already carry unsatisfied tasks only).
    idle_executors:
        Idle executor ids, in cluster order; order matters only for the
        deterministic tie-break.
    budget:
        Maximum executors to grant; defaults to ``app.budget`` (σ_i − ζ_i).
    fill:
        When True, after the locality pass any remaining budget is filled
        with arbitrary idle executors (lines 17–20 of Algorithm 2) so
        non-local tasks still find slots.
    fill_limit:
        Cap on the number of filler executors (None = no extra cap).
    """
    limit = app.budget if budget is None else budget
    if limit < 0:
        raise ConfigurationError(f"budget must be >= 0, got {budget}")
    result = IntraAppResult()
    available: Set[str] = set(idle_executors)
    order = {ex: i for i, ex in enumerate(idle_executors)}

    for job in job_priority_order(app.jobs):
        promised_here: List[Tuple[str, str]] = []
        for task in job.tasks:
            if len(result.granted) >= limit:
                break
            usable = [c for c in task.candidates if c in available]
            if not usable:
                continue
            choice = min(usable, key=lambda ex: order[ex])
            available.discard(choice)
            result.granted.append(choice)
            result.assignment[task.task_id] = choice
            promised_here.append((task.task_id, choice))
        if len(promised_here) == job.unsatisfied and job.unsatisfied > 0:
            result.satisfied_jobs.append(job.job_id)
        if len(result.granted) >= limit:
            break

    if fill and len(result.granted) < limit:
        extra_cap = limit - len(result.granted)
        if fill_limit is not None:
            extra_cap = min(extra_cap, fill_limit)
        for ex in idle_executors:
            if extra_cap <= 0:
                break
            if ex in available:
                available.discard(ex)
                result.granted.append(ex)
                extra_cap -= 1
    return result


def optimal_intra_app(
    app: AppDemand,
    idle_executors: Sequence[str],
    *,
    budget: Optional[int] = None,
) -> IntraAppResult:
    """Exact optimum of the intra-application problem (Eq. 9–10).

    Solves the constrained bipartite matching with edge weights ``1/µ_ij``
    via min-cost flow.  Used by the ablation bench to measure how far the
    greedy priority rule is from optimal in practice (the paper argues the
    greedy is *more* beneficial in practice because whole-job satisfaction
    avoids stragglers; the weight model already encodes that preference).
    """
    limit = app.budget if budget is None else budget
    if limit < 0:
        raise ConfigurationError(f"budget must be >= 0, got {budget}")
    available = set(idle_executors)
    edges = []
    for job in app.jobs:
        weight = 1.0 / max(job.total_tasks, 1)  # type: ignore[arg-type]
        for task in job.tasks:
            for candidate in sorted(task.candidates):
                if candidate in available:
                    edges.append((task.task_id, candidate, weight))
    matching = max_weight_matching_with_budget(edges, budget=limit)
    result = IntraAppResult(
        granted=sorted(matching.values()), assignment=dict(matching)
    )
    for job in app.jobs:
        if job.unsatisfied > 0 and all(t.task_id in matching for t in job.tasks):
            result.satisfied_jobs.append(job.job_id)
    return result


def plan_value(assignment: Dict[str, str], app: AppDemand) -> Tuple[int, float]:
    """Score an assignment for ``app``: (fully-local jobs, Σ 1/µ_ij credit).

    The first component is the paper's job-level objective (Eq. 6–8); the
    second is the simplified fractional objective (Eq. 9) the matching
    optimises.
    """
    satisfied = set(assignment)
    local_jobs = 0
    credit = 0.0
    for job in app.jobs:
        hits = sum(1 for t in job.tasks if t.task_id in satisfied)
        credit += hits / max(job.total_tasks, 1)  # type: ignore[arg-type]
        if job.unsatisfied > 0 and hits == job.unsatisfied:
            local_jobs += 1
    return local_jobs, credit
