"""Bipartite matching primitives.

Two solvers for the weighted bipartite matching between unsatisfied input
tasks and candidate executors:

* :func:`greedy_weighted_matching` — the paper's 2-approximation: repeatedly
  take the heaviest remaining edge compatible with the partial matching
  (§IV-B).  For the job-priority weights (every task of job *j* carries
  weight ``1/µ_j``) this is exactly "serve the job with the fewest input
  tasks first".
* :func:`max_weight_matching_with_budget` — the exact optimum via min-cost
  flow (networkx), with a cardinality budget implemented as a zero-cost
  bypass arc so the flow value stays fixed while unprofitable matches route
  around the bipartite graph.

Both operate on plain ``(task_id, executor_id, weight)`` edge lists, keeping
them reusable outside the allocator.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import networkx as nx

from repro.common.errors import ConfigurationError

__all__ = ["greedy_weighted_matching", "matching_weight", "max_weight_matching_with_budget"]

Edge = Tuple[str, str, float]

#: Weights are scaled to integers for the min-cost-flow solver; six decimal
#: digits comfortably separates 1/µ weights for µ up to ~10^5 tasks.
_COST_SCALE = 1_000_000


def greedy_weighted_matching(
    edges: Sequence[Edge],
    budget: int | None = None,
) -> Dict[str, str]:
    """Heaviest-edge-first greedy matching (the paper's 2-approximation).

    Ties are broken by ``(task_id, executor_id)`` so the result is
    deterministic.  ``budget`` optionally caps the number of matched pairs
    (the σ_i executor budget).

    Returns task id → executor id.
    """
    if budget is not None and budget < 0:
        raise ConfigurationError(f"budget must be >= 0, got {budget}")
    ordered = sorted(edges, key=lambda e: (-e[2], e[0], e[1]))
    matched: Dict[str, str] = {}
    used_executors = set()
    limit = budget if budget is not None else len(ordered)
    for task_id, executor_id, _w in ordered:
        if len(matched) >= limit:
            break
        if task_id in matched or executor_id in used_executors:
            continue
        matched[task_id] = executor_id
        used_executors.add(executor_id)
    return matched


def max_weight_matching_with_budget(
    edges: Sequence[Edge],
    budget: int | None = None,
) -> Dict[str, str]:
    """Exact maximum-weight bipartite matching with ≤ ``budget`` pairs.

    Min-cost-flow formulation: source → each task (cap 1), task → candidate
    executor (cap 1, cost −weight·scale), executor → sink (cap 1), plus a
    source → sink bypass of capacity ``budget`` and cost 0.  Pushing exactly
    ``budget`` units then minimises −(matched weight): profitable matches use
    the bipartite arcs, the rest takes the bypass.

    With no budget the bypass is sized to the task count, making the flow
    value non-binding and the result the unconstrained optimum.

    Returns task id → executor id.
    """
    if budget is not None and budget < 0:
        raise ConfigurationError(f"budget must be >= 0, got {budget}")
    if not edges or budget == 0:
        return {}

    tasks = sorted({e[0] for e in edges})
    executors = sorted({e[1] for e in edges})
    cap = len(tasks) if budget is None else min(budget, len(tasks))

    graph = nx.DiGraph()
    source, sink = "__source__", "__sink__"
    graph.add_node(source, demand=-cap)
    graph.add_node(sink, demand=cap)
    for t in tasks:
        graph.add_edge(source, ("t", t), capacity=1, weight=0)
    for x in executors:
        graph.add_edge(("e", x), sink, capacity=1, weight=0)
    # Keep the heaviest parallel edge if callers pass duplicates.
    best: Dict[Tuple[str, str], float] = {}
    for task_id, executor_id, weight in edges:
        key = (task_id, executor_id)
        if weight > best.get(key, float("-inf")):
            best[key] = weight
    for (task_id, executor_id), weight in best.items():
        graph.add_edge(
            ("t", task_id),
            ("e", executor_id),
            capacity=1,
            weight=-int(round(weight * _COST_SCALE)),
        )
    graph.add_edge(source, sink, capacity=cap, weight=0)

    flow = nx.min_cost_flow(graph)
    matched: Dict[str, str] = {}
    for task_id in tasks:
        for target, units in flow[("t", task_id)].items():
            if units > 0:
                matched[task_id] = target[1]
    return matched


def matching_weight(matching: Dict[str, str], edges: Sequence[Edge]) -> float:
    """Total weight of ``matching`` under the heaviest duplicate of each edge."""
    best: Dict[Tuple[str, str], float] = {}
    for task_id, executor_id, weight in edges:
        key = (task_id, executor_id)
        if weight > best.get(key, float("-inf")):
            best[key] = weight
    total = 0.0
    for task_id, executor_id in matching.items():
        try:
            total += best[(task_id, executor_id)]
        except KeyError:
            raise ConfigurationError(
                f"matching pair ({task_id}, {executor_id}) is not an edge"
            ) from None
    return total
