"""Experiment harness: configs, the end-to-end runner, and figure drivers.

* :mod:`repro.experiments.config` — :class:`ExperimentConfig`, the single
  knob surface for every evaluation run (§VI-A settings are the defaults).
* :mod:`repro.experiments.runner` — build cluster + HDFS + workload +
  manager from a config, replay the common submission trace, return
  :class:`ExperimentResult`.
* :mod:`repro.experiments.figures` — one function per paper figure
  (Fig. 7–10), producing the rows the benchmarks print.
* :mod:`repro.experiments.scenarios` — the paper's worked micro-examples
  (Fig. 1, 3, 4/5) as runnable scenarios with exact expected numbers.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.figures import (
    figure7_locality,
    figure8_jct,
    figure9_input_stage,
    figure10_scheduler_delay,
    headline_numbers,
    run_policy_comparison,
)
from repro.experiments.persistence import (
    export_timeline,
    load_result,
    load_timeline_records,
    result_to_dict,
    save_result,
)
from repro.experiments.scenarios import (
    fig1_motivating_example,
    fig3_interapp_example,
    fig45_intraapp_example,
)
from repro.experiments.sweeps import DEFAULT_EXTRACTORS, rows_to_csv, sweep

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "export_timeline",
    "load_result",
    "load_timeline_records",
    "DEFAULT_EXTRACTORS",
    "result_to_dict",
    "rows_to_csv",
    "save_result",
    "sweep",
    "fig1_motivating_example",
    "fig3_interapp_example",
    "fig45_intraapp_example",
    "figure10_scheduler_delay",
    "figure7_locality",
    "figure8_jct",
    "figure9_input_stage",
    "headline_numbers",
    "run_experiment",
    "run_policy_comparison",
]
