"""Allocation control-plane scaling microbenchmark.

Measures the per-round cost of a full Custody allocation pass —
release-surplus, demand construction, two-level max-min allocation, grant
application — under job/task churn at increasing tenant counts, for both
control planes:

* **reference** — the seed behaviour: every round rebuilds every
  application's demand with per-task NameNode lookups and full
  locality-history scans;
* **incremental** — the cached path: per-driver demand entries keyed on
  ``demand_epoch`` / ``NameNode.version`` / watched-node pool versions, the
  cross-round replica memo and the O(1) locality counters.

The synthetic workload mimics the saturated steady state the paper's
evaluation runs in: every application holds a backlog of pending input
tasks well beyond its quota, and each simulated instant dirties exactly
*one* application (a job boundary or task completion there) while the
other N-1 stay untouched — precisely the regime round coalescing creates
and the demand cache exploits.  Periodically an application drains,
releases its executors and rebuilds its backlog, so grants and revokes
keep flowing through the pool-version invalidation path.

Both engines run in lockstep over twin object graphs built from the same
seed; every round's :meth:`AllocationPlan.signature` is compared and a
mismatch aborts the benchmark — the speedup numbers are only reported for
provably identical decision streams.

The timed section runs with the warmed-up twin worlds *frozen* and the
cyclic collector *quiesced* (:mod:`repro.common.gctuning`): profiling
showed the historical 32-tenant p99 spike was CPython collections walking
the entire live twin-world graph inside timed rounds — largely triggered
by the reference twin's per-round rebuild garbage — not any property of
the allocator itself.  The deferred collection runs on exit, outside any
timer; per-round collection counts still surface in the
``incremental_gc_collections`` column so a regression that reintroduces
collector pauses into the hot path is visible.

Results serialise to ``BENCH_alloc.json`` so successive PRs can diff perf;
``benchmarks/bench_alloc_scale.py --smoke`` gates CI on a conservative
floor.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.executor import Executor
from repro.common.gctuning import quiesced_gc
from repro.common.units import BlockSpec
from repro.hdfs.filesystem import HDFS
from repro.managers.custody import CustodyManager
from repro.metrics.collector import PerfCounters
from repro.simulation.engine import Simulation
from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind

__all__ = [
    "AllocScalePoint",
    "AllocWorkloadSize",
    "golden_plan_stream",
    "run_alloc_bench",
    "write_alloc_trajectory",
]

#: v2 added the incremental round-cost breakdown and GC-collection columns.
_FORMAT_VERSION = 2

#: Executor slots per executor in the benchmark cluster (the evaluation's 4).
_SLOTS = 4


@dataclass(frozen=True)
class AllocWorkloadSize:
    """One point of the sweep: tenants x backlog shape x replication."""

    apps: int
    jobs_per_app: int
    tasks_per_job: int
    replication: int


@dataclass(frozen=True)
class AllocScalePoint:
    """One row of the allocation-scaling trajectory."""

    apps: int
    jobs_per_app: int
    tasks_per_job: int
    replication: int
    nodes: int
    rounds: int
    reference_seconds: float
    incremental_seconds: float
    speedup: float
    reference_p50_ms: float
    reference_p90_ms: float
    reference_p99_ms: float
    incremental_p50_ms: float
    incremental_p90_ms: float
    incremental_p99_ms: float
    plans_equal: bool
    demand_cache_hits: int
    demand_cache_misses: int
    demand_cache_hit_rate: float
    #: Incremental-engine round-cost breakdown (seconds summed over the
    #: timed rounds): release surplus, build demands, run the two-level
    #: allocator, apply grants.  The four phases partition the round.
    incremental_release_seconds: float = 0.0
    incremental_demand_seconds: float = 0.0
    incremental_plan_seconds: float = 0.0
    incremental_apply_seconds: float = 0.0
    #: Cyclic-GC collections observed inside the incremental engine's timed
    #: rounds.  With the collector quiesced this must be 0; anything else
    #: means collector pauses are landing in the hot path again.
    incremental_gc_collections: int = 0


class _ScriptedDriver:
    """The manager-facing slice of ApplicationDriver, under script control.

    Implements exactly the protocol the managers consume — ``app``,
    ``runnable_tasks``, ``owned_nodes``, ``demand_epoch``, executor
    attach/detach — without the scheduling machinery, so the benchmark
    times the *manager's* round cost, not the driver's.  ``demand_epoch``
    is bumped at the same state transitions the real driver bumps it:
    job submission, task start, task finish, executor attach/detach.
    """

    def __init__(self, app: Application, hdfs: HDFS, sim: Simulation):
        self.app = app
        self.app_id = app.app_id
        self.hdfs = hdfs
        self.sim = sim
        self.manager = None
        self.scheduler = None  # no set_hints attr: hint plumbing stays off
        self.demand_epoch = 0
        self.executors: List[Executor] = []
        self.pending: List[Task] = []  # queued input tasks, FIFO
        self.running: List[Tuple[Task, Executor]] = []

    # ---------------------------------------------------- manager protocol
    @property
    def executor_count(self) -> int:
        return len(self.executors)

    @property
    def runnable_tasks(self) -> List[Task]:
        return self.pending

    @property
    def outstanding_tasks(self) -> int:
        return len(self.pending) + len(self.running)

    def owned_nodes(self) -> Set[str]:
        return {e.node_id for e in self.executors}

    def attach_executor(self, executor: Executor) -> None:
        self.executors.append(executor)
        self.demand_epoch += 1

    def detach_executor(self, executor: Executor) -> None:
        self.executors.remove(executor)
        self.demand_epoch += 1

    def set_task_hints(self, hints) -> None:  # pragma: no cover - defensive
        pass

    # ------------------------------------------------------- scripted steps
    def submit_job(self, job: Job) -> None:
        self.app.add_job(job)
        job.submitted_at = self.sim.now
        self.pending.extend(job.input_tasks)
        self.demand_epoch += 1

    def start_some(self, count: int) -> int:
        """Launch up to ``count`` pending tasks into owned free slots."""
        started = 0
        for executor in self.executors:
            while started < count and self.pending and executor.free_slots > 0:
                task = self.pending.pop(0)
                task.started_at = self.sim.now
                task.executor_id = executor.executor_id
                task.node_id = executor.node_id
                executor.start_task(task.task_id)
                self.running.append((task, executor))
                self.demand_epoch += 1
                started += 1
            if started >= count:
                break
        return started

    def finish_some(self, count: int) -> int:
        """Complete up to ``count`` running tasks (FIFO), recording locality."""
        finished = 0
        namenode = self.hdfs.namenode
        while finished < count and self.running:
            task, executor = self.running.pop(0)
            executor.finish_task(task.task_id)
            task.finished_at = self.sim.now
            assert task.block is not None
            task.was_local = executor.node_id in namenode.serving_locations(
                task.block.block_id
            )
            job = next(j for j in self.app.jobs if j.job_id == task.job_id)
            self.app.note_input_decided(job, task.was_local)
            self.demand_epoch += 1
            finished += 1
        return finished


@dataclass
class _World:
    """One twin: a full object graph plus its manager under one engine."""

    sim: Simulation
    cluster: Cluster
    hdfs: HDFS
    manager: CustodyManager
    drivers: List[_ScriptedDriver]
    blocks: Dict[str, list]  # app id -> its file's block list
    job_seq: Dict[str, int] = field(default_factory=dict)


def _build_world(
    size: AllocWorkloadSize, seed: int, engine: str, counters: Optional[PerfCounters]
) -> _World:
    """Construct one twin world (deterministic in ``seed``)."""
    nodes = max(4, size.apps * 2)
    sim = Simulation()
    cluster = Cluster(
        ClusterConfig(
            num_nodes=nodes,
            cores_per_node=_SLOTS,
            executors_per_node=1,
            executor_slots=_SLOTS,
            nodes_per_rack=nodes,
        )
    )
    hdfs = HDFS(
        cluster,
        block_spec=BlockSpec(size=1.0, replication=size.replication),
        rng=np.random.default_rng(seed),
    )
    manager = CustodyManager(
        sim,
        cluster,
        num_apps=size.apps,
        alloc_engine=engine,
        counters=counters,
    )
    drivers: List[_ScriptedDriver] = []
    blocks: Dict[str, list] = {}
    for i in range(size.apps):
        app_id = f"app-{i:03d}"
        entry = hdfs.ingest(f"/bench/{app_id}", float(2 * size.tasks_per_job))
        blocks[app_id] = list(entry.blocks)
        driver = _ScriptedDriver(Application(app_id), hdfs, sim)
        drivers.append(driver)
        manager.register_driver(driver)
    return _World(
        sim=sim, cluster=cluster, hdfs=hdfs, manager=manager,
        drivers=drivers, blocks=blocks,
    )


def _make_job(world: _World, driver: _ScriptedDriver, size: AllocWorkloadSize,
              rng: random.Random) -> Job:
    seq = world.job_seq.get(driver.app_id, 0) + 1
    world.job_seq[driver.app_id] = seq
    job_id = f"{driver.app_id}-j{seq:04d}"
    pool = world.blocks[driver.app_id]
    tasks = [
        Task(
            f"{job_id}/t{t}",
            job_id=job_id,
            app_id=driver.app_id,
            stage_index=0,
            kind=TaskKind.INPUT,
            cpu_time=1.0,
            block=pool[rng.randrange(len(pool))],
        )
        for t in range(size.tasks_per_job)
    ]
    return Job(job_id, driver.app_id, [Stage(0, tasks)])


def _warm_up(world: _World, size: AllocWorkloadSize, rng: random.Random) -> None:
    """Build the saturated steady state: backlog, quota grants, busy slots."""
    for driver in world.drivers:
        for _ in range(size.jobs_per_app):
            driver.submit_job(_make_job(world, driver, size, rng))
    world.manager.reallocate()  # hand out the quota shares (untimed)
    for driver in world.drivers:
        driver.start_some(len(driver.executors) * _SLOTS)


def _churn_round(world: _World, size: AllocWorkloadSize, rng: random.Random,
                 round_idx: int) -> None:
    """One simulated instant: exactly one application's state moves.

    Visits applications round-robin.  Most visits are steady-state churn
    (finish a couple of tasks, refill the freed slots, occasionally submit
    a fresh job); every eighth visit the application *drains* — finishes
    everything it is running and submits nothing — so the next allocation
    round releases its surplus executors and re-grants them, exercising
    the pool-version invalidation path.
    """
    driver = world.drivers[round_idx % len(world.drivers)]
    visit = round_idx // len(world.drivers)
    if visit % 8 == 7:
        driver.finish_some(len(driver.running))
        driver.pending.clear()
        driver.demand_epoch += 1
        return
    if not driver.pending and not driver.running:
        # Rebuild the backlog after a drain.
        for _ in range(size.jobs_per_app):
            driver.submit_job(_make_job(world, driver, size, rng))
        driver.start_some(len(driver.executors) * _SLOTS)
        return
    done = driver.finish_some(2)
    driver.start_some(done)
    if visit % 4 == 1:
        driver.submit_job(_make_job(world, driver, size, rng))


def _percentile(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``latencies`` in milliseconds."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank] * 1e3


def run_alloc_bench(
    sizes: Sequence[Union[AllocWorkloadSize, Tuple[int, int, int, int]]],
    rounds: int = 200,
    seed: int = 0,
) -> List[AllocScalePoint]:
    """Time both control planes through identical churn at each size.

    Builds twin worlds per size — one per engine, same seed, identical
    object graphs — and drives them in lockstep: each round mutates both
    twins identically, then times one ``reallocate()`` per manager.  The
    per-round plan signatures must match or the benchmark aborts.
    """
    points: List[AllocScalePoint] = []
    for raw in sizes:
        size = raw if isinstance(raw, AllocWorkloadSize) else AllocWorkloadSize(*raw)
        counters = PerfCounters()
        ref = _build_world(size, seed, "reference", None)
        inc = _build_world(size, seed, "incremental", counters)
        _warm_up(ref, size, random.Random(seed))
        _warm_up(inc, size, random.Random(seed))
        # Snapshot the phase counters so the breakdown covers exactly the
        # timed rounds, not the untimed warm-up allocation.
        warm = {
            "release": counters.alloc_release_seconds,
            "demand": counters.alloc_demand_seconds,
            "plan": counters.alloc_plan_seconds,
            "apply": counters.alloc_apply_seconds,
            "gc": counters.alloc_gc_collections,
        }
        ref_lat: List[float] = []
        inc_lat: List[float] = []
        # Quiesce the collector for the timed section: without this,
        # collections triggered by *either* twin's churn walk both full
        # object graphs inside whichever round they land in — the source
        # of the historical 32-tenant p99 spike.  The deferred cyclic
        # garbage is collected on exit, outside the timers.
        with quiesced_gc():
            for round_idx in range(rounds):
                round_seed = seed * 1_000_003 + round_idx
                _churn_round(ref, size, random.Random(round_seed), round_idx)
                _churn_round(inc, size, random.Random(round_seed), round_idx)
                started = time.perf_counter()
                ref_plan = ref.manager.reallocate()
                ref_lat.append(time.perf_counter() - started)
                started = time.perf_counter()
                inc_plan = inc.manager.reallocate()
                inc_lat.append(time.perf_counter() - started)
                if ref_plan.signature() != inc_plan.signature():
                    raise AssertionError(
                        f"engines diverged at size={size} round={round_idx}: "
                        f"reference and incremental plans differ"
                    )
        ref_seconds = sum(ref_lat)
        inc_seconds = sum(inc_lat)
        points.append(
            AllocScalePoint(
                apps=size.apps,
                jobs_per_app=size.jobs_per_app,
                tasks_per_job=size.tasks_per_job,
                replication=size.replication,
                nodes=ref.cluster.config.num_nodes,
                rounds=rounds,
                reference_seconds=ref_seconds,
                incremental_seconds=inc_seconds,
                speedup=ref_seconds / inc_seconds if inc_seconds > 0 else float("inf"),
                reference_p50_ms=_percentile(ref_lat, 0.50),
                reference_p90_ms=_percentile(ref_lat, 0.90),
                reference_p99_ms=_percentile(ref_lat, 0.99),
                incremental_p50_ms=_percentile(inc_lat, 0.50),
                incremental_p90_ms=_percentile(inc_lat, 0.90),
                incremental_p99_ms=_percentile(inc_lat, 0.99),
                plans_equal=True,
                demand_cache_hits=inc.manager.demand_cache_hits,
                demand_cache_misses=inc.manager.demand_cache_misses,
                demand_cache_hit_rate=counters.demand_cache_hit_rate,
                incremental_release_seconds=(
                    counters.alloc_release_seconds - warm["release"]
                ),
                incremental_demand_seconds=(
                    counters.alloc_demand_seconds - warm["demand"]
                ),
                incremental_plan_seconds=(
                    counters.alloc_plan_seconds - warm["plan"]
                ),
                incremental_apply_seconds=(
                    counters.alloc_apply_seconds - warm["apply"]
                ),
                incremental_gc_collections=(
                    counters.alloc_gc_collections - warm["gc"]
                ),
            )
        )
    return points


def golden_plan_stream(
    size: Union[AllocWorkloadSize, Tuple[int, int, int, int]],
    rounds: int,
    seed: int,
    engine: str,
) -> List[list]:
    """The JSON-able plan-signature sequence of one scripted scenario.

    Drives a single world (one engine) through the deterministic churn and
    records every round's :meth:`AllocationPlan.signature`.  The golden
    fixture pins the reference engine's stream; the equivalence test then
    asserts both engines reproduce it signature for signature.
    """
    size = size if isinstance(size, AllocWorkloadSize) else AllocWorkloadSize(*size)
    world = _build_world(size, seed, engine, None)
    _warm_up(world, size, random.Random(seed))
    stream: List[list] = []
    for round_idx in range(rounds):
        _churn_round(world, size, random.Random(seed * 1_000_003 + round_idx),
                     round_idx)
        plan = world.manager.reallocate()
        # JSON-normalise the nested signature tuples into lists.
        stream.append(json.loads(json.dumps(plan.signature())))
    return stream


def write_alloc_trajectory(
    points: Sequence[AllocScalePoint], path: Union[str, Path] = "BENCH_alloc.json"
) -> Path:
    """Persist the allocation-scaling trajectory for cross-PR perf tracking."""
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "benchmark": "allocation_control_plane_scaling",
        "points": [asdict(p) for p in points],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
