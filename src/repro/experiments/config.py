"""ExperimentConfig: every knob of an evaluation run, with §VI-A defaults."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.units import GB, GBPS, MB

__all__ = ["ExperimentConfig"]

_MANAGERS = ("custody", "standalone", "yarn", "mesos")
_SCHEDULERS = ("delay", "fifo", "locality-first")
_PLACEMENTS = ("random", "rack-aware", "popularity")
_WORKLOADS = ("pagerank", "wordcount", "sort")
_NETWORK_ENGINES = ("incremental", "reference", "vectorized")
_ALLOC_ENGINES = ("incremental", "reference", "vectorized")


@dataclass(frozen=True)
class ExperimentConfig:
    """One evaluation run.

    Defaults reproduce the paper's setup: a 100-node cluster of 8-core /
    16 GB / 40 Gbps-down / 2 Gbps-up machines with two executors per node,
    128 MB blocks replicated three times, four applications submitting 30
    jobs each with exponential(14 s) inter-arrivals, delay scheduling inside
    every application.
    """

    manager: str = "custody"
    workload: str = "wordcount"
    num_nodes: int = 100
    num_apps: int = 4
    app_weights: Optional[Tuple[float, ...]] = None  # weighted max-min quotas
    jobs_per_app: int = 30
    seed: int = 0
    cores_per_node: int = 8
    memory_per_node: float = 16 * GB
    executors_per_node: int = 2
    executor_slots: int = 4
    nodes_per_rack: int = 20
    disk_bandwidth: float = 500 * MB
    uplink: float = 2 * GBPS
    downlink: float = 40 * GBPS
    block_size: float = 128 * MB
    replication: int = 3
    placement: str = "random"
    cache_per_node: float = 0.0  # in-memory block cache per node (bytes)
    mean_interarrival: float = 14.0
    scheduler: str = "delay"
    delay_wait: float = 3.0
    rack_wait: Optional[float] = None  # enables the node->rack->any ladder
    speculation: bool = False
    speculation_quantile: float = 0.75
    speculation_multiplier: float = 1.5
    pool_size: Optional[int] = None
    popularity_skew: float = 1.2
    kmn_fraction: Optional[float] = None  # KMN [10]: fraction of inputs required
    shuffle_fanout: int = 1  # parallel source nodes per shuffle fetch
    spread: bool = False  # standalone spreadOut mode
    mesos_offer_interval: float = 1.0
    custody_fill: bool = True
    custody_enforce_hints: bool = False  # enforce z^u_ijk suggestions (§V)
    timeline_enabled: bool = False
    validate_plans: bool = False
    network_engine: str = "incremental"  # flow-rate allocator: incremental | reference
    alloc_engine: str = "incremental"  # allocation control plane: incremental | reference
    alloc_coalesce: bool = True  # coalesce same-instant allocation rounds
    perf_counters: bool = False  # collect PerfCounters from the engine hot paths
    trace: bool = False  # attach a repro.obs Tracer (ring sink) to the run
    trace_sample_interval: float = 5.0  # sim-seconds between time-series samples
    metrics: bool = False  # attach a label-aware MetricsRegistry to every layer
    # ------------------------------------------------ failure-handling knobs
    heartbeat_interval: float = 3.0  # worker heartbeat period (seconds)
    detector_timeout: Optional[float] = None  # None: managers see ground truth
    max_task_attempts: int = 8  # per-task attempt budget before abandoning
    retry_backoff: float = 1.0  # base of the exponential retry backoff
    blacklist_threshold: int = 3  # failures within the window to blacklist
    blacklist_window: float = 60.0  # sliding window for failure counting
    blacklist_timeout: float = 60.0  # how long a blacklisted node stays out
    network_timeout: float = 30.0  # connect timeout for partitioned transfers
    re_replication_parallelism: int = 4  # concurrent recovery copies
    # ------------------------------------------------------- robustness knobs
    # All default-off / fixed-mode: a config that leaves them untouched runs
    # the exact pre-robustness event sequence.
    detector_mode: str = "fixed"  # fixed | adaptive (phi-accrual-style)
    detector_suspect_after: float = 3.0  # phi threshold to suspect a node
    detector_dead_after: float = 8.0  # phi threshold to declare it dead
    retry_jitter: bool = False  # full-jitter the retry backoff delay
    retry_budget: Optional[int] = None  # per-job retry token bucket (None: off)
    retry_refill: float = 0.0  # budget tokens regained per second
    circuit_breaker: bool = False  # breakers subsume the fixed blacklist
    hedging: bool = False  # hedged backup launches on suspected nodes
    hedge_quantile: float = 0.95  # runtime percentile arming a hedge
    hedge_multiplier: float = 1.5  # threshold = multiplier * percentile
    admission_control: bool = False  # defer job admission under overload
    admission_factor: float = 4.0  # overload = demand > factor * capacity
    admission_retry: float = 5.0  # seconds between admission re-checks
    # -------------------------------------------------------- recovery knobs
    # All default-off: without manager_recovery the control plane is the
    # immortal seed manager and no ManagerCrash may appear in the plan.
    manager_recovery: bool = False  # checkpoint/WAL/lease crash-recovery
    lease_duration: float = 60.0  # grant lease TTL after its last renewal
    lease_renew_interval: float = 10.0  # healthy-manager renewal period
    checkpoint_interval: float = 30.0  # state snapshot period (piggybacked)
    reconciliation_window: float = 5.0  # post-restart re-register window
    wal_flush_lag: float = 0.0  # trailing WAL seconds lost by a crash
    submission_retry_limit: int = 6  # driver retries against a down manager

    def __post_init__(self) -> None:
        if self.manager not in _MANAGERS:
            raise ConfigurationError(f"manager must be one of {_MANAGERS}, got {self.manager!r}")
        if self.scheduler not in _SCHEDULERS:
            raise ConfigurationError(
                f"scheduler must be one of {_SCHEDULERS}, got {self.scheduler!r}"
            )
        if self.placement not in _PLACEMENTS:
            raise ConfigurationError(
                f"placement must be one of {_PLACEMENTS}, got {self.placement!r}"
            )
        if self.workload not in _WORKLOADS:
            raise ConfigurationError(
                f"workload must be one of {_WORKLOADS}, got {self.workload!r}"
            )
        if self.num_apps < 1 or self.jobs_per_app < 1:
            raise ConfigurationError("num_apps and jobs_per_app must be >= 1")
        if self.replication < 1:
            raise ConfigurationError(f"replication must be >= 1, got {self.replication}")
        if self.cache_per_node < 0:
            raise ConfigurationError(
                f"cache_per_node must be >= 0, got {self.cache_per_node}"
            )
        if not (0.0 < self.speculation_quantile <= 1.0):
            raise ConfigurationError(
                f"speculation_quantile must be in (0, 1], got {self.speculation_quantile}"
            )
        if self.speculation_multiplier < 1.0:
            raise ConfigurationError(
                f"speculation_multiplier must be >= 1, got {self.speculation_multiplier}"
            )
        if self.kmn_fraction is not None and not (0.0 < self.kmn_fraction <= 1.0):
            raise ConfigurationError(
                f"kmn_fraction must be in (0, 1], got {self.kmn_fraction}"
            )
        if self.shuffle_fanout < 1:
            raise ConfigurationError(
                f"shuffle_fanout must be >= 1, got {self.shuffle_fanout}"
            )
        if self.network_engine not in _NETWORK_ENGINES:
            raise ConfigurationError(
                f"network_engine must be one of {_NETWORK_ENGINES}, "
                f"got {self.network_engine!r}"
            )
        if self.alloc_engine not in _ALLOC_ENGINES:
            raise ConfigurationError(
                f"alloc_engine must be one of {_ALLOC_ENGINES}, "
                f"got {self.alloc_engine!r}"
            )
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.detector_timeout is not None and self.detector_timeout < self.heartbeat_interval:
            raise ConfigurationError(
                f"detector_timeout ({self.detector_timeout}) must be >= "
                f"heartbeat_interval ({self.heartbeat_interval})"
            )
        if self.max_task_attempts < 1:
            raise ConfigurationError(
                f"max_task_attempts must be >= 1, got {self.max_task_attempts}"
            )
        if self.retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.blacklist_threshold < 1:
            raise ConfigurationError(
                f"blacklist_threshold must be >= 1, got {self.blacklist_threshold}"
            )
        if self.blacklist_window <= 0 or self.blacklist_timeout <= 0:
            raise ConfigurationError("blacklist window/timeout must be positive")
        if self.network_timeout <= 0:
            raise ConfigurationError(
                f"network_timeout must be positive, got {self.network_timeout}"
            )
        if self.re_replication_parallelism < 1:
            raise ConfigurationError(
                "re_replication_parallelism must be >= 1, "
                f"got {self.re_replication_parallelism}"
            )
        if self.detector_mode not in ("fixed", "adaptive"):
            raise ConfigurationError(
                f"detector_mode must be 'fixed' or 'adaptive', "
                f"got {self.detector_mode!r}"
            )
        if self.detector_suspect_after <= 1.0:
            raise ConfigurationError(
                f"detector_suspect_after must be > 1, "
                f"got {self.detector_suspect_after}"
            )
        if self.detector_dead_after <= self.detector_suspect_after:
            raise ConfigurationError(
                "detector_dead_after must exceed detector_suspect_after"
            )
        if self.retry_budget is not None and self.retry_budget < 1:
            raise ConfigurationError(
                f"retry_budget must be >= 1, got {self.retry_budget}"
            )
        if self.retry_refill < 0:
            raise ConfigurationError(
                f"retry_refill must be >= 0, got {self.retry_refill}"
            )
        if not (0.0 < self.hedge_quantile <= 1.0):
            raise ConfigurationError(
                f"hedge_quantile must be in (0, 1], got {self.hedge_quantile}"
            )
        if self.hedge_multiplier < 1.0:
            raise ConfigurationError(
                f"hedge_multiplier must be >= 1, got {self.hedge_multiplier}"
            )
        if self.admission_factor <= 0:
            raise ConfigurationError(
                f"admission_factor must be positive, got {self.admission_factor}"
            )
        if self.admission_retry <= 0:
            raise ConfigurationError(
                f"admission_retry must be positive, got {self.admission_retry}"
            )
        if self.lease_duration <= 0:
            raise ConfigurationError(
                f"lease_duration must be positive, got {self.lease_duration}"
            )
        if self.lease_renew_interval <= 0:
            raise ConfigurationError(
                f"lease_renew_interval must be positive, "
                f"got {self.lease_renew_interval}"
            )
        if self.checkpoint_interval <= 0:
            raise ConfigurationError(
                f"checkpoint_interval must be positive, "
                f"got {self.checkpoint_interval}"
            )
        if self.reconciliation_window < 0:
            raise ConfigurationError(
                f"reconciliation_window must be >= 0, "
                f"got {self.reconciliation_window}"
            )
        if self.wal_flush_lag < 0:
            raise ConfigurationError(
                f"wal_flush_lag must be >= 0, got {self.wal_flush_lag}"
            )
        if self.submission_retry_limit < 1:
            raise ConfigurationError(
                f"submission_retry_limit must be >= 1, "
                f"got {self.submission_retry_limit}"
            )
        if self.trace_sample_interval <= 0:
            raise ConfigurationError(
                f"trace_sample_interval must be positive, "
                f"got {self.trace_sample_interval}"
            )
        if self.app_weights is not None:
            if len(self.app_weights) != self.num_apps:
                raise ConfigurationError(
                    f"app_weights must have {self.num_apps} entries, "
                    f"got {len(self.app_weights)}"
                )
            if any(w <= 0 for w in self.app_weights):
                raise ConfigurationError("app_weights must be positive")

    # ------------------------------------------------------------- conveniences
    @property
    def app_ids(self) -> tuple:
        """Deterministic application ids ("app-00" ...)."""
        return tuple(f"app-{i:02d}" for i in range(self.num_apps))

    def with_manager(self, manager: str) -> "ExperimentConfig":
        """Same run under a different policy (the common-trace comparison)."""
        return replace(self, manager=manager)

    def scaled(self, factor: float) -> "ExperimentConfig":
        """A cheaper variant for CI: scale the job count, keep the shape."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return replace(self, jobs_per_app=max(1, int(round(self.jobs_per_app * factor))))
