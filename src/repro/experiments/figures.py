"""Figure drivers: one function per evaluation figure (Fig. 7–10).

Each returns a list of row dicts — the series the paper plots — so that the
benchmarks can both print them and assert on their shape (who wins, in which
direction the trend goes).  Scale knobs (``jobs_per_app``, ``num_apps``)
default to a CI-friendly fraction of the paper's setup; pass
``jobs_per_app=30, num_apps=4`` for the full §VI configuration.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.metrics.locality import locality_gain

__all__ = [
    "run_policy_comparison",
    "figure7_locality",
    "figure8_jct",
    "figure9_input_stage",
    "figure10_scheduler_delay",
    "headline_numbers",
]

#: Cluster sizes of Fig. 7/8's three panels.
PAPER_CLUSTER_SIZES = (25, 50, 100)
#: The three workloads of §VI-A2.
PAPER_WORKLOADS = ("pagerank", "wordcount", "sort")


def run_policy_comparison(
    base: ExperimentConfig,
    policies: Sequence[str] = ("standalone", "custody"),
) -> Dict[str, ExperimentResult]:
    """Run the same workload/trace under several managers."""
    return {policy: run_experiment(base.with_manager(policy)) for policy in policies}


def _base_config(
    workload: str,
    num_nodes: int,
    *,
    jobs_per_app: int,
    num_apps: int,
    seed: int,
    **overrides,
) -> ExperimentConfig:
    return replace(
        ExperimentConfig(
            workload=workload,
            num_nodes=num_nodes,
            jobs_per_app=jobs_per_app,
            num_apps=num_apps,
            seed=seed,
        ),
        **overrides,
    )


def figure7_locality(
    cluster_sizes: Sequence[int] = PAPER_CLUSTER_SIZES,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    *,
    jobs_per_app: int = 8,
    num_apps: int = 4,
    seed: int = 0,
    **overrides,
) -> List[dict]:
    """Fig. 7: % of local input tasks, Custody vs Spark standalone.

    One row per (cluster size, workload): mean ± std of per-job locality
    under both managers plus the relative gain.
    """
    rows = []
    for size in cluster_sizes:
        for workload in workloads:
            base = _base_config(
                workload, size, jobs_per_app=jobs_per_app, num_apps=num_apps,
                seed=seed, **overrides,
            )
            results = run_policy_comparison(base)
            spark, custody = results["standalone"].metrics, results["custody"].metrics
            rows.append(
                {
                    "figure": "7",
                    "cluster_size": size,
                    "workload": workload,
                    "spark_locality": spark.locality_mean,
                    "spark_std": spark.locality_std,
                    "custody_locality": custody.locality_mean,
                    "custody_std": custody.locality_std,
                    "gain": locality_gain(custody.locality_mean, spark.locality_mean),
                }
            )
    return rows


def figure8_jct(
    cluster_sizes: Sequence[int] = PAPER_CLUSTER_SIZES,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    *,
    jobs_per_app: int = 8,
    num_apps: int = 4,
    seed: int = 0,
    **overrides,
) -> List[dict]:
    """Fig. 8: average job completion times, Custody vs Spark standalone."""
    rows = []
    for size in cluster_sizes:
        for workload in workloads:
            base = _base_config(
                workload, size, jobs_per_app=jobs_per_app, num_apps=num_apps,
                seed=seed, **overrides,
            )
            results = run_policy_comparison(base)
            spark, custody = results["standalone"].metrics, results["custody"].metrics
            assert spark.avg_jct is not None and custody.avg_jct is not None
            rows.append(
                {
                    "figure": "8",
                    "cluster_size": size,
                    "workload": workload,
                    "spark_jct": spark.avg_jct,
                    "custody_jct": custody.avg_jct,
                    "reduction": (spark.avg_jct - custody.avg_jct) / spark.avg_jct,
                }
            )
    return rows


def figure9_input_stage(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    *,
    num_nodes: int = 100,
    jobs_per_app: int = 8,
    num_apps: int = 4,
    seed: int = 0,
    **overrides,
) -> List[dict]:
    """Fig. 9: average input (map) stage completion time, 100-node cluster."""
    rows = []
    for workload in workloads:
        base = _base_config(
            workload, num_nodes, jobs_per_app=jobs_per_app, num_apps=num_apps,
            seed=seed, **overrides,
        )
        results = run_policy_comparison(base)
        spark, custody = results["standalone"].metrics, results["custody"].metrics
        rows.append(
            {
                "figure": "9",
                "workload": workload,
                "spark_input_stage": spark.avg_input_stage_time,
                "custody_input_stage": custody.avg_input_stage_time,
            }
        )
    return rows


def figure10_scheduler_delay(
    cluster_sizes: Sequence[int] = PAPER_CLUSTER_SIZES,
    *,
    workload: str = "wordcount",
    jobs_per_app: int = 8,
    num_apps: int = 4,
    seed: int = 0,
    **overrides,
) -> List[dict]:
    """Fig. 10: average scheduler delay vs cluster size."""
    rows = []
    for size in cluster_sizes:
        base = _base_config(
            workload, size, jobs_per_app=jobs_per_app, num_apps=num_apps,
            seed=seed, **overrides,
        )
        results = run_policy_comparison(base)
        spark, custody = results["standalone"].metrics, results["custody"].metrics
        rows.append(
            {
                "figure": "10",
                "cluster_size": size,
                "workload": workload,
                "spark_delay": spark.avg_scheduler_delay,
                "custody_delay": custody.avg_scheduler_delay,
            }
        )
    return rows


def headline_numbers(
    *,
    num_nodes: int = 100,
    jobs_per_app: int = 8,
    num_apps: int = 4,
    seed: int = 0,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    **overrides,
) -> dict:
    """The abstract's two numbers: mean locality gain and JCT reduction.

    Paper, 100 nodes: locality +36.9%, JCT −14.9% (averaged over workloads).
    """
    locality_gains = []
    jct_reductions = []
    for workload in workloads:
        base = _base_config(
            workload, num_nodes, jobs_per_app=jobs_per_app, num_apps=num_apps,
            seed=seed, **overrides,
        )
        results = run_policy_comparison(base)
        spark, custody = results["standalone"].metrics, results["custody"].metrics
        locality_gains.append(
            locality_gain(custody.locality_mean, spark.locality_mean)
        )
        assert spark.avg_jct is not None and custody.avg_jct is not None
        jct_reductions.append((spark.avg_jct - custody.avg_jct) / spark.avg_jct)
    return {
        "locality_gain_mean": sum(locality_gains) / len(locality_gains),
        "jct_reduction_mean": sum(jct_reductions) / len(jct_reductions),
        "locality_gains": locality_gains,
        "jct_reductions": jct_reductions,
        "workloads": list(workloads),
    }
