"""Network rate-engine scaling microbenchmark (the ``perf`` CLI command).

Measures the per-event cost of rate reallocation under flow churn at
increasing concurrent-flow counts, for both allocators:

* **reference** — the seed behaviour: one full ``maxmin_rates`` recompute
  over every active flow per flow arrival/departure;
* **incremental** — :class:`~repro.network.rate_engine.RateEngine` with
  dirty-link component recomputes.

The synthetic workload mimics the Fig. 7/8 shuffle regime: node count grows
with the flow population (``flows / 8`` nodes) so each NIC carries a bounded
handful of flows and the link-flow graph stays a sea of small components —
exactly the structure the incremental engine exploits.  Every run finishes
with an exact-equivalence check of the two allocators' final rate vectors.

Results serialise to a ``BENCH_network.json`` trajectory file so successive
PRs can diff perf; ``benchmarks/bench_network_scale.py --smoke`` gates CI on
a conservative floor.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.metrics.collector import PerfCounters
from repro.network.bandwidth import LinkCapacities, maxmin_rates
from repro.network.rate_engine import RateEngine

__all__ = [
    "ChurnWorkload",
    "ScalePoint",
    "make_workload",
    "run_scale_bench",
    "write_trajectory",
]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ChurnWorkload:
    """A reproducible flow-churn script over a fixed node set."""

    capacities: LinkCapacities
    initial: Tuple[Tuple[str, str], ...]  # flows alive before timing starts
    #: Timed operations: ("add", src, dst) or ("remove", index-into-live-list).
    ops: Tuple[Tuple, ...]


@dataclass(frozen=True)
class ScalePoint:
    """One row of the scaling trajectory."""

    flows: int
    nodes: int
    events: int
    reference_seconds: float
    incremental_seconds: float
    speedup: float
    recomputes: int
    flows_touched: int
    mean_component: float
    max_abs_rate_delta: float


def make_workload(
    n_flows: int,
    events: int,
    seed: int = 0,
    nodes: Optional[int] = None,
    pod_size: Optional[int] = 16,
    uplink: float = 2e9,
    downlink: float = 40e9,
) -> ChurnWorkload:
    """Random churn at a steady-state population of ``n_flows`` flows.

    ``pod_size`` models traffic locality: nodes are partitioned into pods of
    that size and every flow stays inside one pod — the shape of real runs,
    where a job's shuffle connects the handful of nodes its application's
    executors occupy.  The link-flow graph then decomposes into many small
    components, which is what the incremental engine exploits.  Pass
    ``pod_size=None`` for unstructured all-to-all traffic: the graph fuses
    into one giant component and incremental recompute degenerates to the
    full-recompute cost (the engine's documented worst case).
    """
    n_nodes = nodes if nodes is not None else max(4, n_flows // 8)
    if pod_size is not None:
        pod_size = min(max(2, pod_size), n_nodes)
    rng = np.random.default_rng(seed)
    caps = LinkCapacities()
    for i in range(n_nodes):
        caps.add_node(f"n{i}", uplink=uplink, downlink=downlink)
    n_pods = (n_nodes // pod_size) if pod_size is not None else 1

    def draw_flow() -> Tuple[str, str]:
        if pod_size is None:
            base, span = 0, n_nodes
        else:
            # The final pod absorbs the remainder nodes.
            pod = int(rng.integers(n_pods))
            base = pod * pod_size
            span = n_nodes - base if pod == n_pods - 1 else pod_size
        src = base + int(rng.integers(span))
        dst = base + int(rng.integers(span - 1))
        if dst >= src:
            dst += 1
        return f"n{src}", f"n{dst}"

    initial = tuple(draw_flow() for _ in range(n_flows))
    ops: List[Tuple] = []
    population = n_flows
    for _ in range(events):
        # Alternate around the steady state so the population never drifts.
        if population > n_flows or (population == n_flows and rng.integers(2)):
            ops.append(("remove", int(rng.integers(population))))
            population -= 1
        else:
            ops.append(("add",) + draw_flow())
            population += 1
    return ChurnWorkload(capacities=caps, initial=initial, ops=tuple(ops))


def _run_reference(workload: ChurnWorkload) -> Tuple[float, Dict[int, float]]:
    """Seed cost model: full recompute over all live flows per event."""
    live: Dict[int, Tuple[str, str]] = dict(enumerate(workload.initial))
    live_ids = list(live)
    next_id = len(live)
    rates: Dict[int, float] = {}
    started = time.perf_counter()
    for op in workload.ops:
        if op[0] == "add":
            live[next_id] = (op[1], op[2])
            live_ids.append(next_id)
            next_id += 1
        else:
            del live[live_ids.pop(op[1])]
        values = maxmin_rates([live[i] for i in live_ids], workload.capacities)
        rates = dict(zip(live_ids, values))
    return time.perf_counter() - started, rates


def _run_incremental(
    workload: ChurnWorkload, counters: Optional[PerfCounters] = None
) -> Tuple[float, Dict[int, float]]:
    """Engine cost model: incremental add/remove + component recompute."""
    engine = RateEngine(workload.capacities, counters=counters)
    live_ids = []
    for fid, (src, dst) in enumerate(workload.initial):
        engine.add_flow(fid, src, dst)
        live_ids.append(fid)
    engine.recompute()  # settle the warm-up population outside the timer
    if counters is not None:  # count the churn phase only
        counters.recomputes = counters.flows_touched = counters.links_touched = 0
    next_id = len(live_ids)
    started = time.perf_counter()
    for op in workload.ops:
        if op[0] == "add":
            engine.add_flow(next_id, op[1], op[2])
            live_ids.append(next_id)
            next_id += 1
        else:
            engine.remove_flow(live_ids.pop(op[1]))
        engine.recompute()
    elapsed = time.perf_counter() - started
    return elapsed, engine.rates()


def run_scale_bench(
    flow_counts: Sequence[int],
    events: int = 30,
    seed: int = 0,
    pod_size: Optional[int] = 16,
) -> List[ScalePoint]:
    """Time both allocators through the same churn at each flow count."""
    points: List[ScalePoint] = []
    for n_flows in flow_counts:
        workload = make_workload(n_flows, events, seed=seed, pod_size=pod_size)
        ref_seconds, ref_rates = _run_reference(workload)
        counters = PerfCounters()
        inc_seconds, inc_rates = _run_incremental(workload, counters)
        if set(inc_rates) != set(ref_rates):
            raise AssertionError("allocators disagree on the live flow set")
        delta = max(
            (abs(inc_rates[f] - ref_rates[f]) for f in ref_rates), default=0.0
        )
        if delta > 1e-9:
            raise AssertionError(
                f"rate mismatch between allocators: max delta {delta:g} B/s"
            )
        points.append(
            ScalePoint(
                flows=n_flows,
                nodes=len(workload.capacities.uplink),
                events=events,
                reference_seconds=ref_seconds,
                incremental_seconds=inc_seconds,
                speedup=ref_seconds / inc_seconds if inc_seconds > 0 else float("inf"),
                recomputes=counters.recomputes,
                flows_touched=counters.flows_touched,
                mean_component=counters.flows_per_recompute,
                max_abs_rate_delta=delta,
            )
        )
    return points


def write_trajectory(
    points: Sequence[ScalePoint], path: Union[str, Path] = "BENCH_network.json"
) -> Path:
    """Persist the scaling trajectory for cross-PR perf tracking."""
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "benchmark": "network_rate_engine_scaling",
        "points": [asdict(p) for p in points],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
