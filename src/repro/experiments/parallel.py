"""Parallel experiment fan-out: shard a sweep across worker processes.

Every multi-cell driver in this package — the chaos sweep, the validation
suite, the rate-engine scaling bench, the config-grid sweep — is a loop of
*independent* cells: each cell's result is a pure function of its own
``(seed, parameters)`` and never reads another cell's state.  This module
exploits that: it cuts the loop into :class:`Shard`\\ s keyed by the cell's
position in the serial iteration order, runs them on a process pool, and
merges the results **by shard key**, so the merged artifact is the one the
serial loop would have produced no matter which worker finished first.

Determinism contract
--------------------
* **Seeding** — a shard never inherits ambient RNG state.  Cells that need
  randomness re-derive it from their own parameters (the chaos plan from
  ``(seed, 7919, level)``, a sweep row from ``base.seed + trial``); shards
  that need an anonymous stream use :func:`shard_streams`, which spawns a
  child :class:`~repro.common.rng.RngStreams` from the root seed and the
  shard key via ``SeedSequence`` spawn keys — no global ``random`` /
  ``np.random`` state is touched anywhere on the path.
* **Merge order** — results come back through ``imap_unordered`` (fastest
  worker first) and are re-sorted by shard key before anything downstream
  sees them.  :func:`merge_by_key` is exposed separately so the regression
  suite can shuffle completion orders and assert the merge is a fixpoint.
* **Payloads** — workers return plain JSON-safe dicts and frozen
  primitive dataclasses, projected through the existing persistence layer
  (:func:`~repro.experiments.persistence.result_to_dict`); the live
  ``ExperimentResult`` (generator-based simulator processes, open tracers)
  never crosses the process boundary.

``jobs <= 1`` falls back to running the same worker functions inline, in
shard-key order — the parallel path and the serial path execute identical
code on identical inputs, so ``--jobs N`` output is byte-identical to
``--jobs 1`` by construction, not by testing alone.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import RngStreams
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import ChaosCell, chaos_sweep

__all__ = [
    "Shard",
    "shard_streams",
    "merge_by_key",
    "run_sharded",
    "ParallelChaosSweep",
    "run_chaos_sweep",
    "run_validation_suite",
    "run_perf_points",
    "run_grid",
]

#: ``fork`` keeps worker start cheap and inherits the imported simulator;
#: ``spawn`` is the fallback where fork is unavailable.  Workers are
#: module-level functions with picklable payloads, so both modes work.
_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


# ------------------------------------------------------------ generic engine
@dataclass(frozen=True)
class Shard:
    """One unit of fan-out work: a sort key plus a picklable payload.

    ``key`` is the cell's position in the serial iteration order (a tuple
    of ints so heterogeneous sweeps compare safely); the merge sorts on it.
    """

    key: Tuple[int, ...]
    payload: Any


def shard_streams(root_seed: int, key: Tuple[int, ...]) -> RngStreams:
    """Derive the RNG streams for one shard from the root seed and its key.

    Uses :meth:`RngStreams.child` (``SeedSequence`` spawn-key derivation),
    so shards get statistically independent streams, the derivation is
    order-free — shard 7 gets the same streams whether it runs first or
    last, alone or beside shard 3 — and a serial loop deriving the same
    child names draws identical values.
    """
    name = "shard/" + "/".join(str(part) for part in key)
    return RngStreams(seed=root_seed).child(name)


def merge_by_key(results: Sequence[Tuple[Tuple[int, ...], Any]]) -> List[Any]:
    """Reassemble worker results into serial order, dropping the keys.

    The inverse of the sharding step: whatever order the pool yielded
    ``(key, value)`` pairs in, the output list is ordered by key — i.e. by
    the serial loop's iteration order.  Exposed for the shuffle-order
    regression tests.
    """
    return [value for _, value in sorted(results, key=lambda kv: kv[0])]


def _call(packed: Tuple[Callable[[Any], Any], Shard]) -> Tuple[Tuple[int, ...], Any]:
    """Pool trampoline: run one shard, tag the result with its key."""
    worker, shard = packed
    return (shard.key, worker(shard.payload))


def run_sharded(
    worker: Callable[[Any], Any],
    shards: Sequence[Shard],
    jobs: int = 1,
) -> List[Any]:
    """Run ``worker`` over every shard; return results in shard-key order.

    ``jobs <= 1`` (or a single shard) runs inline — same worker, same
    payloads, no pool — which is both the graceful fallback and the
    reference ordering the parallel path must reproduce.  ``worker`` must
    be a module-level function and every payload picklable, because the
    spawn fallback re-imports them in the child.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    ordered = sorted(shards, key=lambda s: s.key)
    if jobs == 1 or len(ordered) <= 1:
        return [worker(shard.payload) for shard in ordered]
    ctx = multiprocessing.get_context(_START_METHOD)
    with ctx.Pool(processes=min(jobs, len(ordered))) as pool:
        tagged = list(
            pool.imap_unordered(_call, [(worker, s) for s in ordered])
        )
    return merge_by_key(tagged)


# -------------------------------------------------------------- chaos sweep
@dataclass
class ParallelChaosSweep:
    """A chaos sweep reassembled from per-cell worker payloads.

    ``cells`` matches :class:`~repro.experiments.scenarios.ChaosSweepResult`
    order (level-major, manager-minor); ``payloads`` carries, per cell and
    in the same order, the JSON-safe projection of the full run — the
    ``result_to_dict`` payload, the lost-task audit and the trace path —
    everything the chaos CLI's table, JSON artifact and smoke gate consume.
    """

    levels: Tuple[int, ...]
    managers: Tuple[str, ...]
    cells: List[ChaosCell] = field(default_factory=list)
    payloads: List[Dict[str, Any]] = field(default_factory=list)


def _chaos_cell_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one (manager, fault level) chaos cell and project the result.

    Runs :func:`chaos_sweep` restricted to the single cell: the fault plan
    is re-derived inside from ``(seed, 7919, level)``, so this shard's plan
    is bit-identical to the one the full serial sweep would replay — per-
    cell sharding is serial-equivalent by construction, no plan needs to
    cross the process boundary.
    """
    from repro.experiments.persistence import result_to_dict

    manager: str = payload["manager"]
    level: int = payload["level"]
    sweep = chaos_sweep(
        payload["base"],
        levels=[level],
        managers=[manager],
        horizon=payload["horizon"],
        gray=payload["gray"],
        manager_crash=payload["manager_crash"],
    )
    result = sweep.results[(manager, level)]
    lost_tasks = sum(
        1
        for app in result.apps
        for job in app.jobs
        for stage in job.stages
        for task in stage.tasks
        if task.finished_at is None and not task.cancelled
    )
    trace_path: Optional[str] = None
    if payload["trace_template"]:
        from pathlib import Path

        from repro.obs.export import write_chrome_trace

        template = Path(payload["trace_template"])
        out = template.with_name(
            f"{template.stem}.{manager}.L{level}{template.suffix or '.json'}"
        )
        meta = {
            "manager": result.config.manager,
            "seed": result.config.seed,
            "workload": result.config.workload,
        }
        trace_path = str(
            write_chrome_trace(result.trace_events or [], out, other_data=meta)
        )
    return {
        "manager": manager,
        "level": level,
        "cell": asdict(sweep.cells[0]),
        "result": result_to_dict(result),
        "lost_tasks": lost_tasks,
        "trace_path": trace_path,
    }


def run_chaos_sweep(
    base_config: ExperimentConfig,
    *,
    levels: Sequence[int] = (0, 1, 2),
    managers: Sequence[str] = ("custody", "standalone", "yarn", "mesos"),
    horizon: float = 300.0,
    gray: bool = False,
    manager_crash: bool = False,
    jobs: int = 1,
    trace_template: Optional[str] = None,
) -> ParallelChaosSweep:
    """The chaos sweep, sharded one worker per (level, manager) cell.

    Same semantics as :func:`~repro.experiments.scenarios.chaos_sweep` —
    common-trace fault plans per level, every manager replaying the same
    plan — but each cell runs in its own process when ``jobs > 1`` and the
    merged cells come back in the serial sweep's (level-major) order.
    ``trace_template`` makes each worker export its cell's Chrome trace to
    ``template.stem.<manager>.L<level><suffix>``.
    """
    shards = [
        Shard(
            key=(li, mi),
            payload={
                "base": base_config,
                "manager": manager,
                "level": level,
                "horizon": horizon,
                "gray": gray,
                "manager_crash": manager_crash,
                "trace_template": trace_template,
            },
        )
        for li, level in enumerate(levels)
        for mi, manager in enumerate(managers)
    ]
    payloads = run_sharded(_chaos_cell_worker, shards, jobs)
    return ParallelChaosSweep(
        levels=tuple(levels),
        managers=tuple(managers),
        cells=[ChaosCell(**p["cell"]) for p in payloads],
        payloads=payloads,
    )


# --------------------------------------------------------- validation suite
def _validate_cell_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one validation-suite cell; return its JSON projection.

    Importing :mod:`repro.scenarios` registers the scenario classes in the
    child (the spawn fallback starts from a clean interpreter).
    """
    from repro.scenarios import ScenarioProfile, get_scenario

    profile = ScenarioProfile(**payload["profile"])
    return get_scenario(payload["name"]).run(profile).as_dict()


def run_validation_suite(
    names: Optional[Sequence[str]] = None,
    profile: Optional[Any] = None,
    *,
    engine_variants: Optional[Sequence[tuple]] = None,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
):
    """The validation suite, sharded one worker per suite cell.

    Shards :func:`~repro.scenarios.plan_suite`'s cells by index, so the
    merged :class:`~repro.scenarios.SuiteReport` lists exactly the results,
    in exactly the order, :func:`~repro.scenarios.run_suite` would have
    produced.  Verdicts round-trip losslessly (``passed`` is re-derived
    from the checks); only ``wall_seconds`` is measured per worker and so
    differs run to run, exactly as it does between two serial runs.
    """
    from repro.scenarios import (
        ScenarioProfile,
        ScenarioResult,
        SuiteReport,
        plan_suite,
        suite_cell_label,
    )

    if profile is None:
        profile = ScenarioProfile()
    cells = plan_suite(names, profile, engine_variants=engine_variants)
    shards = [
        Shard(
            key=(index,),
            payload={
                "name": name,
                "profile": {
                    "smoke": p.smoke,
                    "seed": p.seed,
                    "network_engine": p.network_engine,
                    "alloc_engine": p.alloc_engine,
                },
            },
        )
        for index, (name, p) in enumerate(cells)
    ]
    if progress is not None:
        # Parallel cells interleave, so announce the dispatch plan up front
        # (at jobs == 1 this prints the same lines the serial runner would,
        # just before the batch instead of before each cell).
        for name, p in cells:
            progress(suite_cell_label(name, p))
    payloads = run_sharded(_validate_cell_worker, shards, jobs)
    return SuiteReport(results=[ScenarioResult.from_dict(d) for d in payloads])


# ----------------------------------------------------------- perf trajectory
def _perf_point_worker(payload: Dict[str, Any]):
    """Benchmark one flow-count point of the rate-engine trajectory."""
    from repro.experiments.netbench import run_scale_bench

    (point,) = run_scale_bench(
        [payload["flows"]],
        events=payload["events"],
        seed=payload["seed"],
        pod_size=payload["pod_size"],
    )
    return point


def run_perf_points(
    flow_counts: Sequence[int],
    *,
    events: int = 30,
    seed: int = 0,
    pod_size: Optional[int] = 16,
    jobs: int = 1,
) -> List[Any]:
    """The rate-engine scaling bench, sharded one worker per flow count.

    Each point's workload is re-derived from ``(flows, events, seed)``
    inside its worker, so the rates each point checks are identical to the
    serial bench; only the wall-time fields are machine-load-dependent
    (as they are serially).
    """
    shards = [
        Shard(
            key=(index,),
            payload={
                "flows": flows,
                "events": events,
                "seed": seed,
                "pod_size": pod_size,
            },
        )
        for index, flows in enumerate(flow_counts)
    ]
    return run_sharded(_perf_point_worker, shards, jobs)


# -------------------------------------------------------------- config grid
def _grid_cell_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one (grid point, trial) experiment; return its sweep row."""
    from repro.experiments.runner import run_experiment
    from repro.experiments.sweeps import DEFAULT_EXTRACTORS

    config: ExperimentConfig = payload["config"]
    result = run_experiment(config)
    row: Dict[str, Any] = dict(payload["point"])
    row["seed"] = config.seed
    for column, fn in DEFAULT_EXTRACTORS.items():
        row[column] = fn(result)
    return row


def run_grid(
    base: ExperimentConfig,
    grid: Dict[str, Sequence[Any]],
    *,
    repeats: int = 1,
    jobs: int = 1,
) -> List[Dict[str, Any]]:
    """The config-grid sweep, sharded one worker per (point, trial) cell.

    Row-for-row equal to :func:`repro.experiments.sweeps.sweep` with the
    default extractors: same Cartesian iteration order (sorted field
    names), same per-trial seed derivation ``base.seed + trial``.  Custom
    extractors don't cross process boundaries (lambdas aren't picklable
    under the spawn fallback) — pass them to the serial :func:`sweep`.
    """
    import itertools

    if not grid:
        raise ConfigurationError("sweep grid must name at least one parameter")
    for field_name in grid:
        if not hasattr(base, field_name):
            raise ConfigurationError(f"unknown config field {field_name!r}")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")

    names = sorted(grid)
    shards = []
    for point_index, values in enumerate(
        itertools.product(*(grid[name] for name in names))
    ):
        point = dict(zip(names, values))
        for trial in range(repeats):
            shards.append(
                Shard(
                    key=(point_index, trial),
                    payload={
                        "config": replace(
                            base, **point, seed=base.seed + trial
                        ),
                        "point": point,
                    },
                )
            )
    return run_sharded(_grid_cell_worker, shards, jobs)
