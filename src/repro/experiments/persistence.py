"""Persist experiment results to JSON for cross-run analysis.

Round-trips the serialisable core of an :class:`ExperimentResult` — the
config, the metrics and optional extras (allocation rounds, speculation
counters) — so figure sweeps can be accumulated across processes and
plotted elsewhere.  Timelines export separately as JSON-lines (one record
per line) since they can be large.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.metrics.collector import ExperimentMetrics
from repro.simulation.timeline import Timeline

__all__ = [
    "result_to_dict",
    "save_result",
    "load_result",
    "export_timeline",
    "load_timeline_records",
]

_FORMAT_VERSION = 2
#: Versions ``load_result`` still understands (v1 lacked the nested
#: per-section ``format_version`` markers and derived metric fields).
_READABLE_VERSIONS = (1, 2)


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """The JSON-serialisable projection of a result.

    ``perf``, ``faults`` and ``metrics_snapshot`` appear only when the run
    collected them (``load_result`` reads its fixed keys and passes these
    through untouched, so their presence does not bump the format version).
    Each nested section carries its own ``format_version`` marker.
    """
    payload = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(result.config),
        "metrics": result.metrics.as_dict(),
        "sim_time": result.sim_time,
        "allocation_rounds": result.allocation_rounds,
        "speculative_launches": result.speculative_launches,
        "speculative_wins": result.speculative_wins,
    }
    if result.perf is not None:
        payload["perf"] = result.perf.as_dict()
    if result.faults is not None:
        payload["faults"] = result.faults.as_dict()
    if result.registry is not None:
        payload["metrics_snapshot"] = result.registry.snapshot(
            meta={"seed": result.config.seed, "manager": result.config.manager}
        )
    return payload


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write a result to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=2, sort_keys=True))
    return path


def load_result(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a saved result; reconstructs config and metrics objects.

    Returns ``{"config": ExperimentConfig, "metrics": ExperimentMetrics,
    ...}`` with the scalar extras passed through.
    """
    data = json.loads(Path(path).read_text())
    version = data.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ConfigurationError(
            f"unsupported result format version {version!r} "
            f"(expected one of {_READABLE_VERSIONS})"
        )
    metrics_raw = dict(data["metrics"])
    # v2 sections carry markers and derived fields that are not
    # constructor arguments; strip them before rebuilding the dataclass.
    metrics_raw.pop("format_version", None)
    metrics_raw.pop("min_local_job_fraction", None)
    metrics_raw["local_job_fraction_per_app"] = tuple(
        metrics_raw["local_job_fraction_per_app"]
    )
    return {
        "config": ExperimentConfig(**data["config"]),
        "metrics": ExperimentMetrics(**metrics_raw),
        "sim_time": data["sim_time"],
        "allocation_rounds": data["allocation_rounds"],
        "speculative_launches": data.get("speculative_launches", 0),
        "speculative_wins": data.get("speculative_wins", 0),
        "metrics_snapshot": data.get("metrics_snapshot"),
    }


def export_timeline(timeline: Timeline, path: Union[str, Path]) -> Path:
    """Write a timeline as JSON-lines (one record per line)."""
    path = Path(path)
    with path.open("w") as fh:
        for record in timeline:
            fh.write(json.dumps(record.as_dict(), sort_keys=True))
            fh.write("\n")
    return path


def load_timeline_records(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read an exported timeline back as a list of flat dicts."""
    records = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
