"""End-to-end experiment runner.

Builds the full stack from an :class:`ExperimentConfig` — simulation,
network fabric, cluster, HDFS with placement policy, workload pools, the
common submission trace, the chosen cluster manager and one driver per
application — replays the trace, runs the simulation to quiescence and
returns the collected metrics.

Determinism: every stochastic component draws from its own named stream of
a single :class:`~repro.common.rng.RngStreams` derived from ``config.seed``,
and the submission trace plus all job structures are materialised *before*
the simulation starts.  Two configs differing only in ``manager`` therefore
see byte-identical workloads — the paper's common-schedule methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.common.errors import ConfigurationError
from repro.common.rng import RngStreams
from repro.common.units import BlockSpec
from repro.experiments.config import ExperimentConfig
from repro.faults.detector import AdaptiveFailureDetector, FailureDetector
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, ManagerCrash
from repro.hdfs.filesystem import HDFS
from repro.hdfs.placement import (
    PlacementPolicy,
    PopularityAwarePlacement,
    RackAwarePlacement,
    RandomPlacement,
)
from repro.managers.admission import AdmissionController
from repro.managers.base import ClusterManager
from repro.managers.custody import CustodyManager
from repro.managers.mesos import MesosManager
from repro.managers.recovery import RecoveryCoordinator
from repro.managers.standalone import StandaloneManager
from repro.managers.yarn import YarnManager
from repro.metrics.collector import (
    ExperimentMetrics,
    FaultStats,
    MetricsCollector,
    PerfCounters,
)
from repro.network.fabric import NetworkFabric
from repro.obs.events import DRIVER, ENGINE, NETWORK
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.sinks import RingSink
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.tracer import Tracer
from repro.scheduling.driver import ApplicationDriver
from repro.scheduling.policies import (
    DelayScheduler,
    FifoScheduler,
    HintedDelayScheduler,
    LocalityFirstScheduler,
    TaskScheduler,
)
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline
from repro.workload.application import Application
from repro.workload.generators import JobFactory, profile_by_name
from repro.workload.job import Job
from repro.workload.trace import SubmissionTrace, common_schedule

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass
class ExperimentResult:
    """Everything a bench or test needs from one run."""

    config: ExperimentConfig
    metrics: ExperimentMetrics
    apps: List[Application]
    sim_time: float
    allocation_rounds: int
    timeline: Optional[Timeline] = None
    manager: Optional[ClusterManager] = None
    fault_injector: Optional[FaultInjector] = None
    speculative_launches: int = 0
    speculative_wins: int = 0
    perf: Optional[PerfCounters] = None
    faults: Optional[FaultStats] = None
    tracer: Optional[Tracer] = None
    trace_events: Optional[list] = None
    sampler: Optional[TimeSeriesSampler] = None
    registry: Optional[MetricsRegistry] = None
    recovery: Optional[RecoveryCoordinator] = None


def _make_placement(config: ExperimentConfig) -> PlacementPolicy:
    if config.placement == "random":
        return RandomPlacement()
    if config.placement == "rack-aware":
        return RackAwarePlacement()
    return PopularityAwarePlacement(max_replicas=2 * config.replication + 1)


def _make_scheduler(config: ExperimentConfig, cluster: Cluster) -> TaskScheduler:
    if config.scheduler == "delay":
        cls = (
            HintedDelayScheduler
            if config.custody_enforce_hints and config.manager == "custody"
            else DelayScheduler
        )
        return cls(
            wait=config.delay_wait,
            rack_wait=config.rack_wait,
            topology=cluster.topology if config.rack_wait is not None else None,
        )
    if config.scheduler == "fifo":
        return FifoScheduler()
    return LocalityFirstScheduler()


def _make_manager(
    config: ExperimentConfig,
    sim: Simulation,
    cluster: Cluster,
    streams: RngStreams,
    timeline: Optional[Timeline],
    tracer: Optional[Tracer] = None,
    perf: Optional[PerfCounters] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ClusterManager:
    weights = None
    if config.app_weights is not None:
        weights = dict(zip(config.app_ids, config.app_weights))
    if config.manager == "standalone":
        return StandaloneManager(
            sim,
            cluster,
            num_apps=config.num_apps,
            rng=streams.get("manager.standalone"),
            spread=config.spread,
            weights=weights,
            timeline=timeline,
            tracer=tracer,
            coalesce=config.alloc_coalesce,
            counters=perf,
            metrics=metrics,
        )
    if config.manager == "yarn":
        return YarnManager(
            sim,
            cluster,
            num_apps=config.num_apps,
            weights=weights,
            timeline=timeline,
            tracer=tracer,
            coalesce=config.alloc_coalesce,
            counters=perf,
            metrics=metrics,
        )
    if config.manager == "mesos":
        return MesosManager(
            sim,
            cluster,
            num_apps=config.num_apps,
            offer_interval=config.mesos_offer_interval,
            weights=weights,
            timeline=timeline,
            tracer=tracer,
            coalesce=config.alloc_coalesce,
            counters=perf,
            metrics=metrics,
        )
    return CustodyManager(
        sim,
        cluster,
        num_apps=config.num_apps,
        fill=config.custody_fill,
        validate=config.validate_plans,
        weights=weights,
        timeline=timeline,
        tracer=tracer,
        alloc_engine=config.alloc_engine,
        coalesce=config.alloc_coalesce,
        counters=perf,
        metrics=metrics,
    )


def _make_sampler(
    config: ExperimentConfig,
    sim: Simulation,
    tracer: Tracer,
    cluster: Cluster,
    fabric: NetworkFabric,
    drivers: Dict[str, ApplicationDriver],
    manager: Optional[ClusterManager] = None,
) -> TimeSeriesSampler:
    """Standard time-series probes: utilization, queues, locality, network."""
    sampler = TimeSeriesSampler(sim, tracer, interval=config.trace_sample_interval)
    executors = cluster.executors
    total_slots = sum(e.slots for e in executors) or 1

    def busy_fraction() -> float:
        return sum(len(e.running_tasks) for e in executors) / total_slots

    def pending_tasks() -> float:
        return float(sum(len(d.runnable_tasks) for d in drivers.values()))

    def local_job_fraction() -> float:
        decided = locals_ = 0
        for driver in drivers.values():
            for job in driver.app.jobs:
                if job.is_local_job is not None:
                    decided += 1
                    locals_ += bool(job.is_local_job)
        return locals_ / decided if decided else 0.0

    sampler.add_series("executors.busy_fraction", busy_fraction, cat=DRIVER)
    sampler.add_series("tasks.pending", pending_tasks, cat=DRIVER)
    sampler.add_series("jobs.local_fraction", local_job_fraction, cat=DRIVER)
    sampler.add_series(
        "net.throughput", fabric.aggregate_rate, cat=NETWORK, track="fabric"
    )
    sampler.add_series(
        "engine.pending_events",
        lambda: float(sim.pending_events),
        cat=ENGINE,
        track="engine",
    )
    sampler.add_series(
        "engine.events_processed",
        lambda: float(sim.events_processed),
        cat=ENGINE,
        track="engine",
    )
    if manager is not None:
        sampler.add_series(
            "manager.alloc_rounds",
            lambda: float(manager.allocation_rounds),
            cat=DRIVER,
            track=f"manager:{manager.name}",
        )
    return sampler


def run_experiment(
    config: ExperimentConfig,
    *,
    max_sim_time: float = 1e7,
    fault_plan: Optional[FaultPlan] = None,
    trace: Optional[SubmissionTrace] = None,
    tracer: Optional[Tracer] = None,
) -> ExperimentResult:
    """Execute one evaluation run; see module docstring.

    ``max_sim_time`` is a safety net: a policy/scheduler combination that
    livelocks (e.g. locality-first scheduling on a data-unaware manager)
    terminates there with its unfinished jobs reported in the metrics.
    ``fault_plan`` optionally injects slowdowns / executor crashes / disk
    failures into the run (see :mod:`repro.faults`).
    ``trace`` replays a caller-supplied submission schedule instead of the
    generated common schedule — its app ids must be a subset of
    ``config.app_ids`` and its per-app job indices contiguous from zero
    (one job is built per event, in trace order).
    ``tracer`` attaches an observability tracer (:mod:`repro.obs`) to every
    layer of the stack; when None and ``config.trace`` is set, a default
    :class:`Tracer` with an in-memory ring sink is built.  The tracer's
    clock is bound to this run's virtual clock either way.
    """
    streams = RngStreams(seed=config.seed)
    sim = Simulation()
    timeline = Timeline(clock=lambda: sim.now, enabled=config.timeline_enabled)
    perf = PerfCounters() if config.perf_counters else None
    if tracer is None and config.trace:
        tracer = Tracer(sinks=[RingSink()])
    if tracer is not None:
        tracer.clock = lambda: sim.now
    registry: Optional[MetricsRegistry] = None
    metrics = NULL_METRICS
    if config.metrics:
        registry = MetricsRegistry(clock=lambda: sim.now)
        metrics = registry
    fabric = NetworkFabric(
        sim,
        timeline=timeline if config.timeline_enabled else None,
        engine=config.network_engine,
        counters=perf,
        tracer=tracer,
        metrics=metrics,
    )
    cluster = Cluster(
        ClusterConfig(
            num_nodes=config.num_nodes,
            cores_per_node=config.cores_per_node,
            memory_per_node=config.memory_per_node,
            disk_bandwidth=config.disk_bandwidth,
            uplink=config.uplink,
            downlink=config.downlink,
            executors_per_node=config.executors_per_node,
            executor_slots=config.executor_slots,
            nodes_per_rack=config.nodes_per_rack,
        ),
        fabric=fabric,
    )
    hdfs = HDFS(
        cluster,
        block_spec=BlockSpec(size=config.block_size, replication=config.replication),
        placement=_make_placement(config),
        rng=streams.get("hdfs.placement"),
        cache_per_node=config.cache_per_node,
    )

    profile = profile_by_name(config.workload)
    factory = JobFactory(
        hdfs,
        streams.get("workload.jobs"),
        pool_size=config.pool_size,
        popularity_skew=config.popularity_skew,
    )
    if trace is None:
        trace = common_schedule(
            list(config.app_ids),
            config.jobs_per_app,
            streams.get("workload.arrivals"),
            mean_interarrival=config.mean_interarrival,
        )
    else:
        unknown = {e.app_id for e in trace} - set(config.app_ids)
        if unknown:
            raise ConfigurationError(
                f"trace references apps not in the config: {sorted(unknown)}"
            )
    # Materialise every job in trace order so job structure is independent
    # of the manager policy under test.
    jobs: Dict[tuple, Job] = {}
    for event in trace:
        jobs[(event.app_id, event.job_index)] = factory.build_job(
            event.app_id,
            profile,
            expected_jobs=config.jobs_per_app,
            input_fraction=config.kmn_fraction,
        )

    manager = _make_manager(config, sim, cluster, streams, timeline, tracer, perf, metrics)
    if config.admission_control:
        manager.attach_admission(
            AdmissionController(
                sim,
                factor=config.admission_factor,
                retry_interval=config.admission_retry,
            )
        )
    recovery: Optional[RecoveryCoordinator] = None
    if config.manager_recovery:
        recovery = RecoveryCoordinator(
            sim,
            lease_duration=config.lease_duration,
            lease_renew_interval=config.lease_renew_interval,
            checkpoint_interval=config.checkpoint_interval,
            reconciliation_window=config.reconciliation_window,
            wal_flush_lag=config.wal_flush_lag,
            timeline=timeline if config.timeline_enabled else None,
            tracer=tracer,
            metrics=metrics,
        )
        manager.attach_recovery(recovery)
    if (
        fault_plan is not None
        and recovery is None
        and any(isinstance(e, ManagerCrash) for e in fault_plan)
    ):
        raise ConfigurationError(
            "fault plan contains ManagerCrash events but manager_recovery "
            "is off; enable it on the ExperimentConfig"
        )
    injector: Optional[FaultInjector] = None
    detector: Optional[FailureDetector] = None
    if fault_plan is not None and len(fault_plan):
        if config.detector_timeout is not None:
            if config.detector_mode == "adaptive":
                detector = AdaptiveFailureDetector(
                    sim,
                    interval=config.heartbeat_interval,
                    suspect_after=config.detector_suspect_after,
                    dead_after=config.detector_dead_after,
                    tracer=tracer,
                    metrics=metrics,
                )
            else:
                detector = FailureDetector(
                    sim,
                    interval=config.heartbeat_interval,
                    timeout=config.detector_timeout,
                    tracer=tracer,
                    metrics=metrics,
                )
        injector = FaultInjector(
            sim, cluster, hdfs, fault_plan,
            timeline=timeline if config.timeline_enabled else None,
            fabric=fabric,
            detector=detector,
            network_timeout=config.network_timeout,
            re_replication_parallelism=config.re_replication_parallelism,
            tracer=tracer,
            metrics=metrics,
        )
        injector.bind_manager(manager)
        manager.fault_injector = injector
        manager.detector = detector
    drivers: Dict[str, ApplicationDriver] = {}
    for app_id in config.app_ids:
        app = Application(app_id, executor_quota=manager.quota_of(app_id))
        driver = ApplicationDriver(
            sim,
            app,
            cluster,
            hdfs,
            fabric,
            _make_scheduler(config, cluster),
            timeline=timeline if config.timeline_enabled else None,
            speculation=config.speculation,
            speculation_quantile=config.speculation_quantile,
            speculation_multiplier=config.speculation_multiplier,
            fault_injector=injector,
            shuffle_fanout=config.shuffle_fanout,
            max_task_attempts=config.max_task_attempts,
            retry_backoff=config.retry_backoff,
            blacklist_threshold=config.blacklist_threshold,
            blacklist_window=config.blacklist_window,
            blacklist_timeout=config.blacklist_timeout,
            retry_jitter_rng=(
                streams.get(f"driver.retry.{app_id}") if config.retry_jitter else None
            ),
            retry_budget=config.retry_budget,
            retry_refill=config.retry_refill,
            submission_retry_limit=config.submission_retry_limit,
            circuit_breaker=config.circuit_breaker,
            hedging=config.hedging,
            hedge_quantile=config.hedge_quantile,
            hedge_multiplier=config.hedge_multiplier,
            tracer=tracer,
            metrics=metrics,
        )
        drivers[app_id] = driver
        manager.register_driver(driver)

    for event in trace:
        job = jobs[(event.app_id, event.job_index)]
        sim.schedule_at(event.time, drivers[event.app_id].submit_job, job)

    sampler: Optional[TimeSeriesSampler] = None
    if tracer is not None and tracer.enabled:
        sampler = _make_sampler(config, sim, tracer, cluster, fabric, drivers, manager)
        sampler.start()

    # Drain events up to the safety cap without advancing the clock past the
    # last real event (run(until=...) would park the clock at the cap).
    while True:
        nxt = sim.peek()
        if nxt is None or nxt > max_sim_time:
            break
        sim.step()
    if sampler is not None:
        sampler.flush()
    if sim.pending_events:
        # Hit the safety cap with work still queued: surface it loudly for
        # configurations that are *expected* to finish.
        unfinished = sum(
            1 for d in drivers.values() for j in d.app.jobs if not j.finished
        )
        if unfinished and max_sim_time >= 1e7:
            raise ConfigurationError(
                f"simulation hit max_sim_time={max_sim_time:g} with "
                f"{unfinished} unfinished jobs (policy livelock?)"
            )

    apps = [drivers[a].app for a in config.app_ids]
    summary = MetricsCollector().collect(apps)
    if registry is not None:
        for name, help_, value in (
            ("run_jobs_finished", "Jobs completed by quiescence.", summary.finished_jobs),
            ("run_jobs_unfinished", "Jobs left unfinished at quiescence.", summary.unfinished_jobs),
            ("run_locality_mean", "Mean per-job input locality.", summary.locality_mean),
            ("run_locality_min", "Worst per-job input locality.", summary.locality_min),
            ("run_fairness_index", "Jain's index over per-app local-job fractions.", summary.fairness_index),
            ("run_sim_time", "Virtual seconds simulated.", sim.now),
        ):
            registry.gauge(name, help_).set(value)
    faults: Optional[FaultStats] = None
    if injector is not None:
        breaker_totals = {"opens": 0, "probes": 0, "closes": 0}
        breakers_open = 0
        for d in drivers.values():
            if d.breakers is not None:
                totals = d.breakers.totals()
                for key in breaker_totals:
                    breaker_totals[key] += totals[key]
                # "Open at end" means still *excluding* the node: an OPEN
                # breaker past its cooldown denies nothing (the next launch
                # is its probe), so it has functionally reconverged.
                breakers_open += sum(
                    1 for _, b in d.breakers if not b.would_allow(sim.now)
                )
        admission = manager.admission
        faults = FaultStats(
            injected=injector.injected,
            tasks_requeued=injector.tasks_requeued,
            failed_attempts=sum(d.failed_attempts for d in drivers.values()),
            abandoned_tasks=sum(d.abandoned_tasks for d in drivers.values()),
            data_loss_tasks=sum(d.data_loss_tasks for d in drivers.values()),
            blacklist_events=sum(d.blacklist_events for d in drivers.values()),
            failed_launches=manager.failed_launches,
            detector_reports=detector.reported_failures if detector else 0,
            replicas_lost=injector.replicas_lost,
            replicas_restored=injector.replicas_restored,
            blocks_lost=injector.blocks_lost,
            recovery_flows=injector.recovery_flows,
            recovery_bytes=injector.recovery_bytes,
            transfers_failed=fabric.failed_count,
            mttr={
                kind: float(sum(times) / len(times))
                for kind, times in sorted(injector.mttr.items())
                if times
            },
            detector_suspicions=getattr(detector, "suspicions", 0),
            detector_false_positives=getattr(detector, "false_positives", 0),
            detector_false_negatives=getattr(detector, "false_negatives", 0),
            detector_true_positives=getattr(detector, "true_positives", 0),
            retries_denied=sum(d.retries_denied for d in drivers.values()),
            hedges_launched=sum(d.hedges_launched for d in drivers.values()),
            hedges_won=sum(d.hedges_won for d in drivers.values()),
            hedges_lost=sum(d.hedges_lost for d in drivers.values()),
            breaker_opens=breaker_totals["opens"],
            breaker_probes=breaker_totals["probes"],
            breaker_closes=breaker_totals["closes"],
            breakers_open_at_end=breakers_open,
            admission_deferred=admission.admission_deferred if admission else 0,
            load_shed=admission.load_shed if admission else 0,
            manager_crashes=recovery.manager_crashes if recovery else 0,
            manager_recoveries=recovery.recoveries if recovery else 0,
            recovery_seconds_mean=(
                sum(recovery.recovery_durations) / len(recovery.recovery_durations)
                if recovery and recovery.recovery_durations
                else 0.0
            ),
            leases_readopted=recovery.leases_readopted if recovery else 0,
            leases_expired=recovery.leases_expired if recovery else 0,
            zombies_reclaimed=recovery.zombies_reclaimed if recovery else 0,
            zombies_surviving=recovery.zombies_surviving if recovery else 0,
            wal_replay_entries=recovery.wal_replay_entries if recovery else 0,
            wal_lost_entries=recovery.wal_lost_entries if recovery else 0,
            checkpoints_taken=recovery.log.checkpoints_taken if recovery else 0,
            rounds_stalled=recovery.rounds_stalled if recovery else 0,
            recovery_tasks_requeued=recovery.tasks_requeued if recovery else 0,
            submissions_buffered=sum(
                d.submissions_buffered for d in drivers.values()
            ),
            submission_retries=sum(
                d.submission_retries for d in drivers.values()
            ),
        )
    return ExperimentResult(
        config=config,
        metrics=summary,
        apps=apps,
        sim_time=sim.now,
        allocation_rounds=manager.allocation_rounds,
        timeline=timeline if config.timeline_enabled else None,
        manager=manager,
        fault_injector=injector,
        speculative_launches=sum(d.speculative_launches for d in drivers.values()),
        speculative_wins=sum(d.speculative_wins for d in drivers.values()),
        perf=perf,
        faults=faults,
        tracer=tracer,
        trace_events=tracer.events() if tracer is not None else None,
        sampler=sampler,
        registry=registry,
        recovery=recovery,
    )
