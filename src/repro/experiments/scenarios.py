"""The paper's worked micro-examples as runnable scenarios.

Each function reproduces one of the illustrative figures with the paper's
exact numbers, returning a result object the tests assert on and the
benches print:

* **Fig. 1** — 4 workers x (1 block, 1 executor); 2 apps x 1 job x 2 tasks.
  Data-unaware round-robin yields 50% locality per app; the data-aware
  allocation yields 100%.
* **Fig. 3** — both apps want blocks D1/D2 only.  Naive fairness can give
  one app both local jobs and the other none; Algorithm 1 gives each app
  exactly one local job.
* **Fig. 4/5** — one app, two 2-task jobs, budget two executors; with CPU
  0.5 and remote transfer 1.5 time units the fairness-based allocation
  averages 2.0 time units per job while the priority allocation averages
  1.25.

Beyond the worked figures, :func:`chaos_sweep` runs the robustness
experiment: the *same* seeded fault plan (node crashes, partitions, link
degradations, executor kills, slowdowns) replayed against every manager at
increasing fault rates, measuring how locality and JCT degrade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.common.units import BlockSpec
from repro.core.allocation import two_level_allocate
from repro.core.demand import AppDemand, JobDemand, TaskDemand
from repro.hdfs.filesystem import HDFS
from repro.hdfs.placement import PlacementPolicy
from repro.network.fabric import NetworkFabric
from repro.scheduling.driver import ApplicationDriver
from repro.scheduling.policies import DelayScheduler
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline
from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind

__all__ = [
    "fig1_motivating_example",
    "fig3_interapp_example",
    "fig45_intraapp_example",
    "fig45_intraapp_trace",
    "chaos_sweep",
    "Fig1Result",
    "Fig3Result",
    "Fig45Result",
    "ChaosCell",
    "ChaosSweepResult",
]


# --------------------------------------------------------------------- Fig. 1
@dataclass(frozen=True)
class Fig1Result:
    """Locality each strategy achieves for each application."""

    data_unaware: Dict[str, float]
    data_aware: Dict[str, float]


def fig1_motivating_example() -> Fig1Result:
    """Reproduce Fig. 1's motivating comparison.

    Four executors E1..E4, one per worker; worker Wk stores only block Dk.
    A1's job needs D1, D2; A2's job needs D3, D4.  The data-unaware manager
    allocates round-robin ({E1,E3} / {E2,E4}): each app can serve only one
    task locally.  The data-aware allocation gives {E1,E2} / {E3,E4}: 100%.
    """
    demands = [
        AppDemand(
            app_id="A1",
            jobs=(
                JobDemand(
                    "A1-J1",
                    (
                        TaskDemand.of("T11", ["E1"]),
                        TaskDemand.of("T12", ["E2"]),
                    ),
                ),
            ),
            quota=2,
        ),
        AppDemand(
            app_id="A2",
            jobs=(
                JobDemand(
                    "A2-J1",
                    (
                        TaskDemand.of("T21", ["E3"]),
                        TaskDemand.of("T22", ["E4"]),
                    ),
                ),
            ),
            quota=2,
        ),
    ]
    executors = ["E1", "E2", "E3", "E4"]

    # Data-unaware round-robin (the paper's example outcome).
    round_robin = {"A1": ["E1", "E3"], "A2": ["E2", "E4"]}
    unaware = {
        app.app_id: _achievable_locality(app, set(round_robin[app.app_id]))
        for app in demands
    }

    plan = two_level_allocate(demands, executors, fill=True)
    aware = {
        app.app_id: _achievable_locality(app, set(plan.executors_of(app.app_id)))
        for app in demands
    }
    return Fig1Result(data_unaware=unaware, data_aware=aware)


def _achievable_locality(app: AppDemand, owned: set) -> float:
    """Best locality fraction any task scheduler could reach on ``owned``.

    A simple greedy suffices here because each task has a single candidate
    in the worked examples; the general case uses maximum matching in
    :mod:`repro.core.flownetwork`.
    """
    total = 0
    local = 0
    used: set = set()
    for job in app.jobs:
        for task in job.tasks:
            total += 1
            usable = sorted((task.candidates & owned) - used)
            if usable:
                used.add(usable[0])
                local += 1
    return local / total if total else 1.0


# --------------------------------------------------------------------- Fig. 3
@dataclass(frozen=True)
class Fig3Result:
    """Local-job counts per app under naive and locality-aware fairness."""

    naive_fair: Dict[str, int]
    locality_fair: Dict[str, int]


def fig3_interapp_example() -> Fig3Result:
    """Reproduce Fig. 3: conflicting demands for hot blocks D1, D2.

    Both apps run two single-task jobs needing D1 and D2, stored only on
    W1/W2 (executors E1/E2).  A naive fair manager may give A3 both hot
    executors (two local jobs, A4 zero); Algorithm 1 equalises at one each.
    """

    def demand(app_id: str) -> AppDemand:
        return AppDemand(
            app_id=app_id,
            jobs=(
                JobDemand(f"{app_id}-J1", (TaskDemand.of(f"{app_id}-T1", ["E1"]),)),
                JobDemand(f"{app_id}-J2", (TaskDemand.of(f"{app_id}-T2", ["E2"]),)),
            ),
            quota=2,
        )

    apps = [demand("A3"), demand("A4")]
    executors = ["E1", "E2", "E3", "E4"]

    # Naive fairness counts executors only: {E1,E2}->A3, {E3,E4}->A4 is
    # "fair" (2 each) yet gives A4 nothing local.
    naive = {"A3": 2, "A4": 0}

    plan = two_level_allocate(apps, executors, fill=True)
    locality = {}
    for app in apps:
        owned = set(plan.executors_of(app.app_id))
        locality[app.app_id] = sum(
            1
            for job in app.jobs
            if all(task.candidates & owned for task in job.tasks)
        )
    return Fig3Result(naive_fair=naive, locality_fair=locality)


# ------------------------------------------------------------------- Fig. 4/5
@dataclass(frozen=True)
class Fig45Result:
    """Average and per-job completion times under both intra-app strategies."""

    fairness_avg: float
    priority_avg: float
    fairness_jcts: Tuple[float, ...]
    priority_jcts: Tuple[float, ...]


class _FixedPlacement(PlacementPolicy):
    """Places block k of the single file on worker k (Fig. 4's layout)."""

    def choose_nodes(self, block, count, node_ids, topology, rng) -> List[str]:
        return [node_ids[block.index % len(node_ids)]]


def _run_fig45(
    allocated: Sequence[int],
    timeline: bool = False,
    network_engine: str = "incremental",
) -> Tuple[Tuple[float, ...], Optional[Timeline]]:
    """Simulate app A5 with executors on the given worker indices.

    Time units: CPU 0.5, remote transfer 1.0 + CPU 0.5 = 1.5, local read
    ~instant.  Achieved by a 1-"byte" block with 1 B/s NICs and an
    effectively infinite disk.  With ``timeline=True`` the full event trace
    is recorded and returned (golden-trace determinism fixtures).
    """
    sim = Simulation()
    trace = Timeline(clock=lambda: sim.now) if timeline else None
    fabric = NetworkFabric(sim, timeline=trace, engine=network_engine)
    cluster = Cluster(
        ClusterConfig(
            num_nodes=4,
            cores_per_node=1,
            executors_per_node=1,
            executor_slots=1,
            disk_bandwidth=1e12,
            uplink=1.0,
            downlink=1.0,
            nodes_per_rack=4,
        ),
        fabric=fabric,
    )
    hdfs = HDFS(
        cluster,
        block_spec=BlockSpec(size=1.0, replication=1),
        placement=_FixedPlacement(),
    )
    entry = hdfs.ingest("/data/fig45", 4.0)  # 4 blocks -> D1..D4 on W1..W4

    app = Application("A5")
    driver = ApplicationDriver(
        sim, app, cluster, hdfs, fabric, DelayScheduler(wait=0.4), timeline=trace
    )
    for idx in allocated:
        executor = cluster.executors[idx]
        executor.allocate("A5")
        driver.attach_executor(executor)

    def make_job(job_id: str, blocks) -> Job:
        tasks = [
            Task(
                f"{job_id}/t{i}",
                job_id=job_id,
                app_id="A5",
                stage_index=0,
                kind=TaskKind.INPUT,
                cpu_time=0.5,
                block=block,
            )
            for i, block in enumerate(blocks)
        ]
        return Job(job_id, "A5", [Stage(0, tasks)])

    job1 = make_job("J1", entry.blocks[0:2])
    job2 = make_job("J2", entry.blocks[2:4])
    sim.schedule_at(0.0, driver.submit_job, job1)
    sim.schedule_at(0.0, driver.submit_job, job2)
    sim.run()
    assert job1.completion_time is not None and job2.completion_time is not None
    return (job1.completion_time, job2.completion_time), trace


def fig45_intraapp_example() -> Fig45Result:
    """Reproduce Fig. 5's completion-time comparison.

    Fairness-based allocation {E1, E3} serves one task of each job locally:
    both jobs finish at 2.0 time units.  Priority allocation {E1, E2} makes
    job 1 perfectly local (0.5) without slowing job 2 (2.0): average 1.25.
    """
    fairness, _ = _run_fig45([0, 2])  # E1, E3
    priority, _ = _run_fig45([0, 1])  # E1, E2
    return Fig45Result(
        fairness_avg=sum(fairness) / 2,
        priority_avg=sum(priority) / 2,
        fairness_jcts=fairness,
        priority_jcts=priority,
    )


def fig45_intraapp_trace(network_engine: str = "incremental") -> Dict[str, Any]:
    """Both Fig. 4/5 arms with their full event traces, JSON-serialisable.

    The golden-trace determinism fixture: any behavioural drift in the
    scheduler, fabric or rate allocation shows up as a record-level diff
    against ``tests/fixtures/golden_fig45_trace.json``.
    """
    arms: Dict[str, Any] = {}
    for name, allocated in (("fairness", [0, 2]), ("priority", [0, 1])):
        jcts, trace = _run_fig45(
            allocated, timeline=True, network_engine=network_engine
        )
        assert trace is not None
        arms[name] = {
            "allocated": list(allocated),
            "jcts": list(jcts),
            "records": [r.as_dict() for r in trace],
        }
    return arms


# --------------------------------------------------------------- chaos sweep
@dataclass(frozen=True)
class ChaosCell:
    """One (manager, fault level) measurement of the chaos sweep."""

    manager: str
    level: int
    locality: float  #: mean per-job input-locality fraction
    min_locality: float  #: worst application's local-job fraction
    avg_jct: Optional[float]
    unfinished_jobs: int
    tasks_requeued: int
    failed_attempts: int
    abandoned_tasks: int
    data_loss_tasks: int
    failed_launches: int
    recovery_flows: int
    recovery_bytes: float
    blacklist_events: int
    #: gray-failure robustness tallies (zero unless the mechanisms are on)
    detector_false_positives: int = 0
    detector_false_negatives: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    retries_denied: int = 0
    breaker_opens: int = 0
    breakers_open_at_end: int = 0
    admission_deferred: int = 0
    load_shed: int = 0
    #: crash-recovery tallies (zero unless manager crashes were injected)
    manager_crashes: int = 0
    manager_recoveries: int = 0
    leases_readopted: int = 0
    leases_expired: int = 0
    zombies_reclaimed: int = 0
    zombies_surviving: int = 0
    submissions_buffered: int = 0
    recovery_tasks_requeued: int = 0


@dataclass
class ChaosSweepResult:
    """All cells of one sweep, plus the raw per-run results for inspection."""

    levels: Tuple[int, ...]
    managers: Tuple[str, ...]
    cells: List[ChaosCell] = field(default_factory=list)
    #: (manager, level) -> the full :class:`ExperimentResult`
    results: Dict[Tuple[str, int], Any] = field(default_factory=dict)

    def cell(self, manager: str, level: int) -> ChaosCell:
        """The cell for one (manager, level) pair."""
        for c in self.cells:
            if c.manager == manager and c.level == level:
                return c
        raise KeyError((manager, level))


def chaos_sweep(
    base_config,
    *,
    levels: Sequence[int] = (0, 1, 2),
    managers: Sequence[str] = ("custody", "standalone", "yarn", "mesos"),
    horizon: float = 300.0,
    gray: bool = False,
    manager_crash: bool = False,
) -> ChaosSweepResult:
    """Replay one seeded fault plan per level against every manager.

    Fault level ``L`` injects ``L`` of each fault kind (node failure,
    network partition, link degradation, executor failure, CPU slowdown)
    drawn from a generator seeded by ``(base_config.seed, level)`` — so a
    level's plan is identical across managers (common-trace methodology)
    and across repeat invocations.  Level 0 is the fault-free baseline.

    ``gray=True`` adds the gray-failure kinds on top: ``L`` link flaps per
    level, plus one correlated rack failure from level 2 up.  The gray
    draws happen after the classic ones, so a gray plan at level ``L``
    *extends* the classic plan for the same seed rather than reshuffling
    it.

    ``manager_crash=True`` additionally takes the control plane down ``L``
    times per level (drawn last, after every other kind, so it too only
    extends the plan) — the base config must have ``manager_recovery`` on.

    ``base_config.manager`` is ignored; ``detector_timeout`` decides
    whether managers see the heartbeat-delayed view or ground truth.
    """
    from repro.experiments.runner import run_experiment
    from repro.faults.chaos import build_chaos_plan

    sweep = ChaosSweepResult(levels=tuple(levels), managers=tuple(managers))
    for level in sweep.levels:
        plan = None
        if level > 0:
            rng = np.random.default_rng([base_config.seed, 7919, level])
            plan = build_chaos_plan(
                base_config.num_nodes,
                base_config.executors_per_node,
                rng,
                node_failures=level,
                partitions=level,
                degradations=level,
                executor_failures=level,
                slowdowns=level,
                link_flaps=level if gray else 0,
                correlated_failures=(1 if gray and level >= 2 else 0),
                manager_crashes=level if manager_crash else 0,
                horizon=horizon,
            )
        for manager in sweep.managers:
            result = run_experiment(
                base_config.with_manager(manager), fault_plan=plan
            )
            faults = result.faults
            sweep.results[(manager, level)] = result
            sweep.cells.append(
                ChaosCell(
                    manager=manager,
                    level=level,
                    locality=result.metrics.locality_mean,
                    min_locality=result.metrics.min_local_job_fraction,
                    avg_jct=result.metrics.avg_jct,
                    unfinished_jobs=result.metrics.unfinished_jobs,
                    tasks_requeued=faults.tasks_requeued if faults else 0,
                    failed_attempts=faults.failed_attempts if faults else 0,
                    abandoned_tasks=faults.abandoned_tasks if faults else 0,
                    data_loss_tasks=faults.data_loss_tasks if faults else 0,
                    failed_launches=faults.failed_launches if faults else 0,
                    recovery_flows=faults.recovery_flows if faults else 0,
                    recovery_bytes=faults.recovery_bytes if faults else 0.0,
                    blacklist_events=faults.blacklist_events if faults else 0,
                    detector_false_positives=(
                        faults.detector_false_positives if faults else 0
                    ),
                    detector_false_negatives=(
                        faults.detector_false_negatives if faults else 0
                    ),
                    hedges_launched=faults.hedges_launched if faults else 0,
                    hedges_won=faults.hedges_won if faults else 0,
                    retries_denied=faults.retries_denied if faults else 0,
                    breaker_opens=faults.breaker_opens if faults else 0,
                    breakers_open_at_end=(
                        faults.breakers_open_at_end if faults else 0
                    ),
                    admission_deferred=faults.admission_deferred if faults else 0,
                    load_shed=faults.load_shed if faults else 0,
                    manager_crashes=faults.manager_crashes if faults else 0,
                    manager_recoveries=(
                        faults.manager_recoveries if faults else 0
                    ),
                    leases_readopted=faults.leases_readopted if faults else 0,
                    leases_expired=faults.leases_expired if faults else 0,
                    zombies_reclaimed=faults.zombies_reclaimed if faults else 0,
                    zombies_surviving=faults.zombies_surviving if faults else 0,
                    submissions_buffered=(
                        faults.submissions_buffered if faults else 0
                    ),
                    recovery_tasks_requeued=(
                        faults.recovery_tasks_requeued if faults else 0
                    ),
                )
            )
    return sweep
