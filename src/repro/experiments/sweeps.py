"""Parameter sweeps: run a config grid and tabulate the results.

The figure drivers in :mod:`repro.experiments.figures` are hand-written for
the paper's exact panels; :func:`sweep` is the general tool behind them for
users exploring their own parameter spaces::

    from repro.experiments.sweeps import sweep

    rows = sweep(
        base=ExperimentConfig(workload="sort", jobs_per_app=6),
        grid={"manager": ["standalone", "custody"], "num_nodes": [25, 50]},
        extract={"locality": lambda r: r.metrics.locality_mean,
                 "jct": lambda r: r.metrics.avg_jct},
    )

Each row carries the grid point's parameter values plus the extracted
metrics; :func:`rows_to_csv` writes the whole table for external plotting.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = ["sweep", "rows_to_csv", "DEFAULT_EXTRACTORS"]

#: The metrics most sweeps want, by name.
DEFAULT_EXTRACTORS: Dict[str, Callable[[ExperimentResult], Any]] = {
    "locality": lambda r: r.metrics.locality_mean,
    "locality_std": lambda r: r.metrics.locality_std,
    "jct": lambda r: r.metrics.avg_jct,
    "input_stage": lambda r: r.metrics.avg_input_stage_time,
    "scheduler_delay": lambda r: r.metrics.avg_scheduler_delay,
    "makespan": lambda r: r.metrics.makespan,
    "min_local_jobs": lambda r: r.metrics.min_local_job_fraction,
    "fairness": lambda r: r.metrics.fairness_index,
}


def sweep(
    base: ExperimentConfig,
    grid: Dict[str, Sequence[Any]],
    *,
    extract: Optional[Dict[str, Callable[[ExperimentResult], Any]]] = None,
    repeats: int = 1,
    jobs: int = 1,
) -> List[Dict[str, Any]]:
    """Run the Cartesian product of ``grid`` over ``base``.

    ``grid`` maps :class:`ExperimentConfig` field names to the values to
    try; ``extract`` maps output column names to functions of the
    :class:`ExperimentResult` (default: :data:`DEFAULT_EXTRACTORS`).
    ``repeats`` runs each point with seeds ``base.seed + 0..repeats-1``,
    one row per run (callers aggregate as they prefer).  ``jobs > 1`` fans
    the (point, trial) cells out across worker processes — rows come back
    in the identical order, but custom ``extract`` callables can't cross
    the process boundary, so parallel sweeps use the default extractors.
    """
    if jobs > 1:
        if extract is not None:
            raise ConfigurationError(
                "custom extractors are not picklable across workers; "
                "use jobs=1 or the default extractors"
            )
        from repro.experiments.parallel import run_grid

        return run_grid(base, grid, repeats=repeats, jobs=jobs)
    if not grid:
        raise ConfigurationError("sweep grid must name at least one parameter")
    for field in grid:
        if not hasattr(base, field):
            raise ConfigurationError(f"unknown config field {field!r}")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    extractors = extract if extract is not None else DEFAULT_EXTRACTORS

    rows: List[Dict[str, Any]] = []
    names = sorted(grid)
    for values in itertools.product(*(grid[name] for name in names)):
        point = dict(zip(names, values))
        for trial in range(repeats):
            config = replace(base, **point, seed=base.seed + trial)
            result = run_experiment(config)
            row: Dict[str, Any] = dict(point)
            row["seed"] = config.seed
            for column, fn in extractors.items():
                row[column] = fn(result)
            rows.append(row)
    return rows


def rows_to_csv(rows: List[Dict[str, Any]], path: Union[str, Path]) -> Path:
    """Write sweep rows as CSV (columns = union of row keys, sorted)."""
    if not rows:
        raise ConfigurationError("no rows to write")
    path = Path(path)
    columns = sorted({key for row in rows for key in row})
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path
