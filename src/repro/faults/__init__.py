"""Fault injection: slowdowns, crashes, partitions, detection, recovery.

The evaluation's mechanisms — stragglers, speculative execution, NameNode
block reports, re-replication — only matter when something goes wrong.
This package makes "wrong" schedulable:

* :class:`NodeSlowdown` — a node's CPU runs at ``1/factor`` speed for a
  window (the classic straggler cause; pairs with the driver's speculative
  execution).
* :class:`ExecutorFailure` — an executor crashes: running attempts are
  killed, their tasks requeued, the executor returns to the free pool after
  a restart delay.
* :class:`DiskFailure` — a DataNode loses every replica; the NameNode is
  reconciled via a block report and (optionally) re-replicates
  under-replicated blocks onto healthy nodes.
* :class:`NodeFailure` — a whole node crashes: executors die, DataNode and
  cache vanish, in-flight flows abort, and lost blocks are copied back as
  real transfers through the fabric once the failure is detected.
* :class:`NetworkPartition` — a node set is cut off for a window; crossing
  flows abort, new ones stall until the connect timeout.
* :class:`LinkDegradation` — a node's NIC runs at reduced capacity for a
  window; flows re-rate under max-min fairness.
* :class:`LinkFlap` — a node's link cycles up/down deterministically: the
  gray failure that defeats fixed-window detection (the node is never dead
  long enough to be declared, never healthy long enough to trust).
* :class:`CorrelatedFailure` — a rack/group-scoped multi-node crash; the
  only fault class that can defeat replica placement outright.

A :class:`FaultPlan` is a list of such events (replayable via
``to_json``/``from_json``); a :class:`FaultInjector` binds the plan to a
live simulation.  A :class:`FailureDetector` gives the cluster manager a
heartbeat-delayed (stale) view of node liveness instead of ground truth;
:class:`AdaptiveFailureDetector` replaces its fixed window with a
phi-accrual-style suspicion score so gray nodes are *suspected* before
being declared dead.  :func:`build_chaos_plan` draws a random but seeded
plan for chaos sweeps.
"""

from repro.faults.chaos import build_chaos_plan
from repro.faults.detector import (
    AdaptiveFailureDetector,
    FailureDetector,
    NodeHealthHistory,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CorrelatedFailure,
    DiskFailure,
    ExecutorFailure,
    FaultEvent,
    FaultPlan,
    LinkDegradation,
    LinkFlap,
    NetworkPartition,
    NodeFailure,
    NodeSlowdown,
)

__all__ = [
    "AdaptiveFailureDetector",
    "CorrelatedFailure",
    "DiskFailure",
    "ExecutorFailure",
    "FailureDetector",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkDegradation",
    "LinkFlap",
    "NetworkPartition",
    "NodeFailure",
    "NodeHealthHistory",
    "NodeSlowdown",
    "build_chaos_plan",
]
