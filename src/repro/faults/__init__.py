"""Fault injection: slowdowns, executor failures, disk (replica) loss.

The evaluation's mechanisms — stragglers, speculative execution, NameNode
block reports, re-replication — only matter when something goes wrong.
This package makes "wrong" schedulable:

* :class:`NodeSlowdown` — a node's CPU runs at ``1/factor`` speed for a
  window (the classic straggler cause; pairs with the driver's speculative
  execution).
* :class:`ExecutorFailure` — an executor crashes: running attempts are
  killed, their tasks requeued, the executor returns to the free pool after
  a restart delay.
* :class:`DiskFailure` — a DataNode loses every replica; the NameNode is
  reconciled via a block report and (optionally) re-replicates
  under-replicated blocks onto healthy nodes.

A :class:`FaultPlan` is a list of such events; a :class:`FaultInjector`
binds the plan to a live simulation.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import DiskFailure, ExecutorFailure, FaultEvent, FaultPlan, NodeSlowdown

__all__ = [
    "DiskFailure",
    "ExecutorFailure",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "NodeSlowdown",
]
