"""Seeded random fault plans for chaos sweeps.

:func:`build_chaos_plan` draws a :class:`~repro.faults.plan.FaultPlan` from
a numpy Generator so a chaos experiment is fully reproducible from its
seed, and — critically for manager comparisons — the *same* plan can be
replayed against every manager (the common-trace methodology the fault-free
scenarios already use).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.faults.plan import (
    CorrelatedFailure,
    ExecutorFailure,
    FaultPlan,
    LinkDegradation,
    LinkFlap,
    ManagerCrash,
    NetworkPartition,
    NodeFailure,
    NodeSlowdown,
)

__all__ = ["build_chaos_plan"]


def build_chaos_plan(
    num_nodes: int,
    executors_per_node: int,
    rng: np.random.Generator,
    *,
    node_failures: int = 1,
    partitions: int = 1,
    degradations: int = 1,
    executor_failures: int = 1,
    slowdowns: int = 1,
    link_flaps: int = 0,
    correlated_failures: int = 0,
    manager_crashes: int = 0,
    horizon: float = 300.0,
) -> FaultPlan:
    """Draw a random fault plan over ``[horizon * 0.05, horizon)``.

    Node/executor ids follow the cluster's ``worker-XXX``/``executor-XXX``
    naming.  Fault windows and restart delays are sized so every fault
    heals well before ``2 * horizon`` — chaos degrades runs, it must never
    wedge them.

    The gray kinds (``link_flaps``, ``correlated_failures``) default to 0
    and are drawn *after* the original kinds, so plans from existing seeds
    are bit-identical to what earlier revisions produced.  ``manager_crashes``
    (control-plane outages, requiring ``manager_recovery``) likewise default
    to 0 and are drawn after the gray kinds for the same reason.
    """
    if num_nodes < 2:
        raise ConfigurationError(f"chaos needs >= 2 nodes, got {num_nodes}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    total_executors = num_nodes * executors_per_node
    plan = FaultPlan()

    def _when() -> float:
        return float(rng.uniform(horizon * 0.05, horizon))

    def _node() -> str:
        return f"worker-{int(rng.integers(num_nodes)):03d}"

    for _ in range(node_failures):
        plan.add(
            NodeFailure(
                at=_when(),
                node_id=_node(),
                restart_delay=float(rng.uniform(horizon * 0.1, horizon * 0.3)),
            )
        )
    for _ in range(partitions):
        # Cut off a minority island of 1..(n//2) nodes.
        size = int(rng.integers(1, max(2, num_nodes // 2 + 1)))
        members = rng.choice(num_nodes, size=size, replace=False)
        plan.add(
            NetworkPartition(
                at=_when(),
                duration=float(rng.uniform(horizon * 0.05, horizon * 0.25)),
                nodes=tuple(f"worker-{int(i):03d}" for i in members),
            )
        )
    for _ in range(degradations):
        plan.add(
            LinkDegradation(
                at=_when(),
                node_id=_node(),
                duration=float(rng.uniform(horizon * 0.1, horizon * 0.4)),
                factor=float(rng.uniform(2.0, 8.0)),
            )
        )
    for _ in range(executor_failures):
        lo = min(5.0, horizon * 0.05)
        plan.add(
            ExecutorFailure(
                at=_when(),
                executor_id=f"executor-{int(rng.integers(total_executors)):03d}",
                restart_delay=float(rng.uniform(lo, max(horizon * 0.1, lo + 1.0))),
            )
        )
    for _ in range(slowdowns):
        plan.add(
            NodeSlowdown(
                at=_when(),
                node_id=_node(),
                duration=float(rng.uniform(horizon * 0.1, horizon * 0.4)),
                factor=float(rng.uniform(1.5, 4.0)),
            )
        )
    for _ in range(link_flaps):
        plan.add(
            LinkFlap(
                at=_when(),
                node_id=_node(),
                duration=float(rng.uniform(horizon * 0.1, horizon * 0.3)),
                period=float(rng.uniform(horizon * 0.02, horizon * 0.08)),
                down_fraction=float(rng.uniform(0.25, 0.6)),
            )
        )
    for _ in range(correlated_failures):
        # A "rack" of 2..max(2, n//4) distinct nodes fails together.
        size = int(rng.integers(2, max(3, num_nodes // 4 + 1)))
        members = rng.choice(num_nodes, size=size, replace=False)
        plan.add(
            CorrelatedFailure(
                at=_when(),
                node_ids=tuple(f"worker-{int(i):03d}" for i in members),
                restart_delay=float(rng.uniform(horizon * 0.1, horizon * 0.3)),
            )
        )
    for _ in range(manager_crashes):
        plan.add(
            ManagerCrash(
                at=_when(),
                duration=float(rng.uniform(horizon * 0.05, horizon * 0.15)),
            )
        )
    return plan
