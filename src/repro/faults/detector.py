"""Heartbeat-based failure detection — the master's *stale* view of nodes.

Real cluster managers never see ground truth: workers heartbeat every
``interval`` seconds and the master declares a node dead only after
``timeout`` seconds of silence.  During that window allocation can land on
a dead node (the launch fails and feeds back into the detector), and a
recovered node is only trusted again once a fresh heartbeat arrives.

The detector is deliberately *event-free*: it schedules nothing on the
simulation.  Fault injectors report node outage windows
(:meth:`begin_outage` / :meth:`end_outage`, depth-counted so overlapping
faults compose), and every liveness query is answered analytically from
those intervals — "which was the last heartbeat tick that fell outside an
outage?".  A periodic heartbeat event would keep the event queue non-empty
forever and break the runner's run-to-quiescence loop; the lazy form is
exactly equivalent and costs O(#outage intervals) per query.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.events import HeartbeatMiss
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.engine import Simulation

__all__ = ["FailureDetector", "NodeHealthHistory"]


class NodeHealthHistory:
    """Outage intervals of one node, maintained by the fault injector.

    ``begin_outage``/``end_outage`` are depth-counted: a node that is both
    crashed *and* partitioned stays "out" until both faults clear.  Closed
    intervals are half-open ``[start, end)`` — a heartbeat tick exactly at
    the outage start is lost, one exactly at the end gets through.
    """

    __slots__ = ("_closed", "_open_start", "_depth")

    def __init__(self) -> None:
        self._closed: List[Tuple[float, float]] = []
        self._open_start: float = 0.0
        self._depth = 0

    @property
    def is_out(self) -> bool:
        """True while at least one outage is active."""
        return self._depth > 0

    def begin(self, now: float) -> None:
        """Open (or deepen) an outage starting at ``now``."""
        if self._depth == 0:
            self._open_start = now
        self._depth += 1

    def end(self, now: float) -> None:
        """Close one outage level; records the interval when depth hits 0."""
        if self._depth <= 0:
            raise ConfigurationError("end_outage without matching begin_outage")
        self._depth -= 1
        if self._depth == 0 and now > self._open_start:
            self._closed.append((self._open_start, now))

    def covering_interval(self, t: float, now: float):
        """The outage interval containing time ``t``, or None.

        The open interval (if any) extends to ``now``; with half-open
        semantics ``t == now`` while out is still covered.
        """
        for start, end in self._closed:
            if start <= t < end:
                return (start, end)
        if self._depth > 0 and self._open_start <= t <= now:
            return (self._open_start, float("inf"))
        return None


class FailureDetector:
    """Computes the master's heartbeat-delayed view of node liveness.

    Parameters
    ----------
    sim:
        The owning simulation (read-only; only ``sim.now`` is consulted).
    interval:
        Seconds between worker heartbeats (ticks at ``k * interval``).
    timeout:
        Seconds of heartbeat silence after which a node is suspected dead.
        Must be at least ``interval`` or healthy nodes would flap.
    """

    def __init__(
        self,
        sim: Simulation,
        *,
        interval: float = 3.0,
        timeout: float = 15.0,
        tracer: Optional[Tracer] = None,
    ):
        if interval <= 0:
            raise ConfigurationError(f"heartbeat interval must be positive, got {interval}")
        if timeout < interval:
            raise ConfigurationError(
                f"detector timeout ({timeout}) must be >= heartbeat interval ({interval})"
            )
        self.sim = sim
        self.interval = interval
        self.timeout = timeout
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._history: Dict[str, NodeHealthHistory] = {}
        #: node id → last time a failed launch was reported against it
        self._reported: Dict[str, float] = {}
        self.reported_failures = 0

    # ----------------------------------------------------------- injector side
    def history(self, node_id: str) -> NodeHealthHistory:
        """The (created-on-demand) outage history of one node."""
        hist = self._history.get(node_id)
        if hist is None:
            hist = self._history[node_id] = NodeHealthHistory()
        return hist

    def begin_outage(self, node_id: str) -> None:
        """The node stopped heartbeating (crash or partition) — now."""
        self.history(node_id).begin(self.sim.now)

    def end_outage(self, node_id: str) -> None:
        """The node's fault cleared; heartbeats resume from the next tick."""
        self.history(node_id).end(self.sim.now)

    # ------------------------------------------------------------ master side
    def report_failure(self, node_id: str) -> None:
        """A launch on ``node_id`` failed: the master marks it dead at once.

        The suspicion clears as soon as a heartbeat tick *after* the report
        succeeds (the node actually recovered)."""
        self._reported[node_id] = max(self._reported.get(node_id, 0.0), self.sim.now)
        self.reported_failures += 1
        if self.tracer.enabled:
            self.tracer.emit(
                HeartbeatMiss(self.sim.now, track=node_id, attrs={"node": node_id})
            )

    def last_heartbeat(self, node_id: str) -> float:
        """Arrival time of the node's most recent successful heartbeat.

        Walks heartbeat ticks backward from ``now``, skipping whole outage
        intervals at a time.  Registration at t=0 counts as the first
        heartbeat, so a node failing at the very start is still only
        suspected after ``timeout`` — never retroactively.
        """
        now = self.sim.now
        hist = self._history.get(node_id)
        interval = self.interval
        tick = int(now // interval) * interval
        if hist is None:
            return tick
        while tick >= 0:
            covering = hist.covering_interval(tick, now)
            if covering is None:
                return tick
            start = covering[0]
            # Jump to the last tick strictly before the covering interval.
            k = int(start // interval)
            if k * interval >= start:
                k -= 1
            if k < 0:
                break
            tick = k * interval
        return 0.0

    def is_alive(self, node_id: str) -> bool:
        """The master's belief: has the node heartbeated recently enough?

        False while (a) the last successful heartbeat is older than
        ``timeout`` or (b) a failed launch was reported and no heartbeat has
        succeeded since.
        """
        now = self.sim.now
        last = self.last_heartbeat(node_id)
        reported = self._reported.get(node_id)
        if reported is not None and last <= reported:
            return False
        return (now - last) <= self.timeout

    def suspected_dead(self, node_ids) -> List[str]:
        """Subset of ``node_ids`` the master currently believes dead."""
        return [n for n in node_ids if not self.is_alive(n)]
