"""Heartbeat-based failure detection — the master's *stale* view of nodes.

Real cluster managers never see ground truth: workers heartbeat every
``interval`` seconds and the master declares a node dead only after
``timeout`` seconds of silence.  During that window allocation can land on
a dead node (the launch fails and feeds back into the detector), and a
recovered node is only trusted again once a fresh heartbeat arrives.

The detector is deliberately *event-free*: it schedules nothing on the
simulation.  Fault injectors report node outage windows
(:meth:`begin_outage` / :meth:`end_outage`, depth-counted so overlapping
faults compose), and every liveness query is answered analytically from
those intervals — "which was the last heartbeat tick that fell outside an
outage?".  A periodic heartbeat event would keep the event queue non-empty
forever and break the runner's run-to-quiescence loop; the lazy form is
exactly equivalent and costs O(#outage intervals) per query.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.events import HeartbeatMiss, SuspicionChange
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.engine import Simulation

__all__ = ["AdaptiveFailureDetector", "FailureDetector", "NodeHealthHistory"]


class NodeHealthHistory:
    """Outage intervals of one node, maintained by the fault injector.

    ``begin_outage``/``end_outage`` are depth-counted: a node that is both
    crashed *and* partitioned stays "out" until both faults clear.  Closed
    intervals are half-open ``[start, end)`` — a heartbeat tick exactly at
    the outage start is lost, one exactly at the end gets through.
    """

    __slots__ = ("_closed", "_open_start", "_depth")

    def __init__(self) -> None:
        self._closed: List[Tuple[float, float]] = []
        self._open_start: float = 0.0
        self._depth = 0

    @property
    def is_out(self) -> bool:
        """True while at least one outage is active."""
        return self._depth > 0

    def begin(self, now: float) -> None:
        """Open (or deepen) an outage starting at ``now``."""
        if self._depth == 0:
            self._open_start = now
        self._depth += 1

    def end(self, now: float) -> None:
        """Close one outage level; records the interval when depth hits 0."""
        if self._depth <= 0:
            raise ConfigurationError("end_outage without matching begin_outage")
        self._depth -= 1
        if self._depth == 0 and now > self._open_start:
            self._closed.append((self._open_start, now))

    def covering_interval(self, t: float, now: float):
        """The outage interval containing time ``t``, or None.

        The open interval (if any) extends to ``now``; with half-open
        semantics ``t == now`` while out is still covered.
        """
        for start, end in self._closed:
            if start <= t < end:
                return (start, end)
        if self._depth > 0 and self._open_start <= t <= now:
            return (self._open_start, float("inf"))
        return None


class FailureDetector:
    """Computes the master's heartbeat-delayed view of node liveness.

    Parameters
    ----------
    sim:
        The owning simulation (read-only; only ``sim.now`` is consulted).
    interval:
        Seconds between worker heartbeats (ticks at ``k * interval``).
    timeout:
        Seconds of heartbeat silence after which a node is suspected dead.
        Must be at least ``interval`` or healthy nodes would flap.
    """

    def __init__(
        self,
        sim: Simulation,
        *,
        interval: float = 3.0,
        timeout: float = 15.0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if interval <= 0:
            raise ConfigurationError(f"heartbeat interval must be positive, got {interval}")
        if timeout < interval:
            raise ConfigurationError(
                f"detector timeout ({timeout}) must be >= heartbeat interval ({interval})"
            )
        self.sim = sim
        self.interval = interval
        self.timeout = timeout
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_reports = self.metrics.counter(
            "detector_reports_total",
            "Failed-launch reports fed back to the failure detector.",
        )
        self._history: Dict[str, NodeHealthHistory] = {}
        #: node id → last time a failed launch was reported against it
        self._reported: Dict[str, float] = {}
        self.reported_failures = 0

    # ----------------------------------------------------------- injector side
    def history(self, node_id: str) -> NodeHealthHistory:
        """The (created-on-demand) outage history of one node."""
        hist = self._history.get(node_id)
        if hist is None:
            hist = self._history[node_id] = NodeHealthHistory()
        return hist

    def begin_outage(self, node_id: str) -> None:
        """The node stopped heartbeating (crash or partition) — now."""
        self.history(node_id).begin(self.sim.now)

    def end_outage(self, node_id: str) -> None:
        """The node's fault cleared; heartbeats resume from the next tick."""
        self.history(node_id).end(self.sim.now)

    def begin_slow(self, node_id: str, factor: float) -> None:
        """The node's CPU slowed by ``factor`` — heartbeats keep arriving.

        The fixed-window detector ignores gray degradation entirely (a slow
        node still beats inside the timeout); :class:`AdaptiveFailureDetector`
        overrides this to stretch the node's emission clock.
        """

    def end_slow(self, node_id: str, factor: float) -> None:
        """One slowdown window on the node expired (see :meth:`begin_slow`)."""

    def is_suspected(self, node_id: str) -> bool:
        """Gray-zone belief: degraded but not yet declared dead.

        The fixed-window detector has no gray zone — a node is alive or
        dead — so this is always False; the adaptive detector overrides it.
        """
        return False

    # ------------------------------------------------------------ master side
    def report_failure(self, node_id: str) -> None:
        """A launch on ``node_id`` failed: the master marks it dead at once.

        The suspicion clears as soon as a heartbeat tick *after* the report
        succeeds (the node actually recovered)."""
        self._reported[node_id] = max(self._reported.get(node_id, 0.0), self.sim.now)
        self.reported_failures += 1
        self._m_reports.inc()
        if self.tracer.enabled:
            self.tracer.emit(
                HeartbeatMiss(self.sim.now, track=node_id, attrs={"node": node_id})
            )

    def last_heartbeat(self, node_id: str) -> float:
        """Arrival time of the node's most recent successful heartbeat.

        Walks heartbeat ticks backward from ``now``, skipping whole outage
        intervals at a time.  Registration at t=0 counts as the first
        heartbeat, so a node failing at the very start is still only
        suspected after ``timeout`` — never retroactively.
        """
        now = self.sim.now
        hist = self._history.get(node_id)
        interval = self.interval
        tick = int(now // interval) * interval
        if hist is None:
            return tick
        while tick >= 0:
            covering = hist.covering_interval(tick, now)
            if covering is None:
                return tick
            start = covering[0]
            # Jump to the last tick strictly before the covering interval.
            k = int(start // interval)
            if k * interval >= start:
                k -= 1
            if k < 0:
                break
            tick = k * interval
        return 0.0

    def is_alive(self, node_id: str) -> bool:
        """The master's belief: has the node heartbeated recently enough?

        False while (a) the last successful heartbeat is older than
        ``timeout`` or (b) a failed launch was reported and no heartbeat has
        succeeded since.
        """
        now = self.sim.now
        last = self.last_heartbeat(node_id)
        reported = self._reported.get(node_id)
        if reported is not None and last <= reported:
            return False
        return (now - last) <= self.timeout

    def suspected_dead(self, node_ids) -> List[str]:
        """Subset of ``node_ids`` the master currently believes dead."""
        return [n for n in node_ids if not self.is_alive(n)]


class AdaptiveFailureDetector(FailureDetector):
    """Phi-accrual-style detection: suspicion from inter-heartbeat history.

    Instead of one fixed silence window, the master scores each node by

        ``phi(node) = elapsed_since_last_heartbeat / mean_recent_gap``

    where the mean gap is estimated over the node's last ``window``
    heartbeat arrivals.  Two thresholds split the belief into three states:
    *alive* (``phi < suspect_after``), *suspected* (deprioritised for
    placement but not declared) and *dead* (``phi >= dead_after``).  A node
    whose CPU is merely slowed stretches its own gap history, so its mean
    adapts and phi stays low — gray nodes are suspected, not declared,
    which is exactly what the fixed window cannot express.

    Like the base class the detector is event-free: slowdown windows
    reported by the injector (:meth:`begin_slow`/:meth:`end_slow`) define a
    per-node piecewise-constant heartbeat *emission clock* — a node slowed
    by factor ``f`` emits every ``f * interval`` seconds — and every query
    is answered analytically from those segments plus the outage history.

    Belief-accuracy accounting is observational: state transitions are
    recorded when queries notice them (the master only "believes" what it
    looks at).  ``false_positives`` counts declarations of nodes that were
    actually up; ``false_negatives`` counts outages that healed without the
    master ever believing the node dead.
    """

    def __init__(
        self,
        sim: Simulation,
        *,
        interval: float = 3.0,
        suspect_after: float = 3.0,
        dead_after: float = 8.0,
        window: int = 8,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if suspect_after <= 1.0:
            raise ConfigurationError(
                f"suspect_after must be > 1 gap, got {suspect_after}"
            )
        if dead_after <= suspect_after:
            raise ConfigurationError(
                f"dead_after ({dead_after}) must exceed suspect_after ({suspect_after})"
            )
        if window < 2:
            raise ConfigurationError(f"window must be >= 2 samples, got {window}")
        # ``timeout`` doubles as the nominal detection delay consumers
        # (re-replication scheduling) plan around: dead_after healthy gaps.
        super().__init__(
            sim,
            interval=interval,
            timeout=dead_after * interval,
            tracer=tracer,
            metrics=metrics,
        )
        self._m_suspicion = self.metrics.counter(
            "suspicion_changes_total",
            "Belief transitions observed by detector queries, by new state.",
            ("state",),
        )
        _verdicts = self.metrics.counter(
            "detector_verdicts_total",
            "Detection accuracy scoring (true/false positives, misses).",
            ("verdict",),
        )
        self._m_verdict_tp = _verdicts.labels(verdict="true_positive")
        self._m_verdict_fp = _verdicts.labels(verdict="false_positive")
        self._m_verdict_fn = _verdicts.labels(verdict="false_negative")
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.window = window
        #: node id → [segment_start, [active factors]] (one open segment)
        self._slow_open: Dict[str, list] = {}
        #: node id → closed (start, end, factor) slow segments, time-ordered
        self._slow_closed: Dict[str, List[Tuple[float, float, float]]] = {}
        #: node id → last belief state a query observed
        self._last_state: Dict[str, str] = {}
        self.suspicions = 0
        self.false_positives = 0
        self.false_negatives = 0
        self.true_positives = 0

    # ---------------------------------------------------------- injector side
    def begin_slow(self, node_id: str, factor: float) -> None:
        """Open (or deepen) a slow window; effective factor is the max."""
        now = self.sim.now
        open_ = self._slow_open.get(node_id)
        if open_ is None:
            self._slow_open[node_id] = [now, [factor]]
            return
        start, factors = open_
        effective = max(factors)
        factors.append(factor)
        if max(factors) != effective:
            self._close_segment(node_id, start, now, effective)
            open_[0] = now

    def end_slow(self, node_id: str, factor: float) -> None:
        """Close one slow window level; segments stay piecewise-constant."""
        open_ = self._slow_open.get(node_id)
        if open_ is None:
            return  # unmatched end (injector gc after a detector swap)
        now = self.sim.now
        start, factors = open_
        effective = max(factors)
        try:
            factors.remove(factor)
        except ValueError:
            return
        if not factors:
            self._close_segment(node_id, start, now, effective)
            del self._slow_open[node_id]
        elif max(factors) != effective:
            self._close_segment(node_id, start, now, effective)
            open_[0] = now

    def _close_segment(self, node_id: str, start: float, end: float, factor: float) -> None:
        if end > start and factor > 1.0:
            self._slow_closed.setdefault(node_id, []).append((start, end, factor))

    def end_outage(self, node_id: str) -> None:
        """Close an outage; count a miss if the master never believed it."""
        super().end_outage(node_id)
        hist = self._history.get(node_id)
        if hist is not None and not hist.is_out:
            if self._last_state.get(node_id) == "dead":
                self.true_positives += 1
                self._m_verdict_tp.inc()
            else:
                self.false_negatives += 1
                self._m_verdict_fn.inc()

    # ----------------------------------------------------- emission-clock math
    def _segments(self, node_id: str) -> List[Tuple[float, float, float]]:
        """Closed + open slow segments of the node, clipped to ``now``."""
        segments = list(self._slow_closed.get(node_id, ()))
        open_ = self._slow_open.get(node_id)
        if open_ is not None:
            start, factors = open_
            if factors and self.sim.now > start:
                segments.append((start, self.sim.now, max(factors)))
        return segments

    def _virtual(self, node_id: str, t: float) -> float:
        """Real time → emission-clock time (slow segments tick slower)."""
        v = t
        for start, end, factor in self._segments(node_id):
            lo = min(start, t)
            hi = min(end, t)
            if hi > lo:
                v -= (hi - lo) * (1.0 - 1.0 / factor)
        return v

    def _real(self, node_id: str, v_target: float) -> float:
        """Emission-clock time → real time (inverse of :meth:`_virtual`)."""
        if v_target <= 0.0:
            return v_target
        t = 0.0
        v = 0.0
        for start, end, factor in sorted(self._segments(node_id)):
            if v_target <= v + (start - t):
                return t + (v_target - v)
            v += start - t
            t = start
            seg_v = (end - start) / factor
            if v_target <= v + seg_v:
                return t + (v_target - v) * factor
            v += seg_v
            t = end
        return t + (v_target - v)

    def _emission_index(self, node_id: str, t: float) -> int:
        """Index of the last heartbeat emitted at or before real time ``t``."""
        return int(math.floor(self._virtual(node_id, t) / self.interval + 1e-9))

    def last_heartbeat(self, node_id: str) -> float:
        """Most recent emission that fell outside every outage interval."""
        now = self.sim.now
        hist = self._history.get(node_id)
        k = self._emission_index(node_id, now)
        while k > 0:
            emitted = self._real(node_id, k * self.interval)
            covering = hist.covering_interval(emitted, now) if hist else None
            if covering is None:
                return emitted
            start = covering[0]
            if start <= 0:
                return 0.0
            kk = self._emission_index(node_id, start)
            if self._real(node_id, kk * self.interval) >= start:
                kk -= 1
            k = kk
        return 0.0

    def mean_gap(self, node_id: str) -> float:
        """Mean real-time gap over the node's recent heartbeat arrivals.

        Uses up to ``window`` gaps ending at the last successful heartbeat;
        floored at the nominal interval so an idle history cannot make the
        detector hair-triggered.
        """
        last = self.last_heartbeat(node_id)
        k = self._emission_index(node_id, last)
        n = min(self.window, k)
        if n < 1:
            return self.interval
        first = self._real(node_id, (k - n) * self.interval)
        return max(self.interval, (last - first) / n)

    def phi(self, node_id: str) -> float:
        """Suspicion score: elapsed silence in units of the adaptive gap."""
        elapsed = self.sim.now - self.last_heartbeat(node_id)
        if elapsed <= 0.0:
            return 0.0
        return elapsed / self.mean_gap(node_id)

    # ------------------------------------------------------------ master side
    def state(self, node_id: str) -> str:
        """The master's belief: "alive", "suspected" or "dead"."""
        last = self.last_heartbeat(node_id)
        reported = self._reported.get(node_id)
        if reported is not None and last <= reported:
            state = "dead"
        else:
            score = self.phi(node_id)
            if score >= self.dead_after:
                state = "dead"
            elif score >= self.suspect_after:
                state = "suspected"
            else:
                state = "alive"
        self._observe(node_id, state)
        return state

    def is_alive(self, node_id: str) -> bool:
        return self.state(node_id) != "dead"

    def is_suspected(self, node_id: str) -> bool:
        return self.state(node_id) == "suspected"

    def _observe(self, node_id: str, state: str) -> None:
        """Record belief transitions and score them against ground truth."""
        prev = self._last_state.get(node_id, "alive")
        if state == prev:
            return
        self._last_state[node_id] = state
        self._m_suspicion.labels(state=state).inc()
        if state == "suspected":
            self.suspicions += 1
        elif state == "dead":
            hist = self._history.get(node_id)
            if hist is not None and hist.is_out:
                pass  # scored at end_outage (true positive if still believed)
            else:
                self.false_positives += 1
                self._m_verdict_fp.inc()
        if self.tracer.enabled:
            self.tracer.emit(
                SuspicionChange(
                    self.sim.now,
                    track=node_id,
                    attrs={
                        "node": node_id,
                        "state": state,
                        "prev": prev,
                        "phi": round(self.phi(node_id), 3),
                    },
                )
            )
