"""Elastic node churn: autoscaler add/remove as a seeded fault plan.

Cloud clusters on spot/preemptible capacity lose nodes on short notice
and get replacements minutes later.  Composed onto the PR2 fault
machinery, that is exactly a :class:`~repro.faults.plan.NodeFailure`
stream: the preemption kills the node's executors and replicas (with
re-replication traffic to heal the block inventory), and the
``restart_delay`` models the autoscaler provisioning a replacement that
rejoins with an empty DataNode.

:func:`build_churn_plan` draws such a stream from a numpy Generator while
guaranteeing a *capacity floor*: at no instant is more than
``1 − min_alive_fraction`` of the cluster down, so churn degrades runs
without wedging them (the same contract as the chaos plans).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.faults.plan import FaultPlan, NodeFailure

__all__ = ["build_churn_plan", "merge_plans"]


def build_churn_plan(
    num_nodes: int,
    rng: np.random.Generator,
    *,
    events: int = 6,
    horizon: float = 300.0,
    min_alive_fraction: float = 0.6,
    restart_delay_range: Tuple[float, float] = (20.0, 60.0),
    re_replicate: bool = True,
) -> FaultPlan:
    """Draw ``events`` spot-preemption/replacement cycles over the horizon.

    Preemption instants are uniform over ``[0.05·horizon, horizon)`` (the
    same early-warmup exclusion as the chaos plans); victims are drawn
    uniformly among nodes that are *up* at that instant, and a candidate
    preemption that would push concurrent downtime past the capacity
    floor is skipped — so very aggressive ``events`` settings saturate at
    the floor instead of stalling the cluster.
    """
    if num_nodes < 2:
        raise ConfigurationError(f"churn needs >= 2 nodes, got {num_nodes}")
    if events < 1:
        raise ConfigurationError(f"events must be >= 1, got {events}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    if not (0.0 < min_alive_fraction < 1.0):
        raise ConfigurationError(
            f"min_alive_fraction must be in (0, 1), got {min_alive_fraction}"
        )
    lo, hi = restart_delay_range
    if lo < 0 or hi < lo:
        raise ConfigurationError(
            f"restart_delay_range must be 0 <= lo <= hi, got {restart_delay_range}"
        )
    max_down = max(1, int(num_nodes * (1.0 - min_alive_fraction)))

    #: (down_at, up_at, node_index) intervals already committed
    downtime: List[Tuple[float, float, int]] = []

    def concurrent_down(t0: float, t1: float) -> int:
        return sum(1 for d, u, _ in downtime if d < t1 and t0 < u)

    def node_is_down(node: int, t0: float, t1: float) -> bool:
        return any(
            n == node and d < t1 and t0 < u for d, u, n in downtime
        )

    plan = FaultPlan()
    for _ in range(events):
        at = float(rng.uniform(horizon * 0.05, horizon))
        delay = float(rng.uniform(lo, hi))
        node = int(rng.integers(num_nodes))
        until = at + delay
        if concurrent_down(at, until) >= max_down or node_is_down(node, at, until):
            continue  # capacity floor (or node already out): skip this draw
        downtime.append((at, until, node))
        plan.add(
            NodeFailure(
                at=at,
                node_id=f"worker-{node:03d}",
                restart_delay=delay,
                re_replicate=re_replicate,
            )
        )
    if not len(plan):
        # Degenerate parameterisations (e.g. 2 nodes, tight floor) must
        # still produce churn: force a single safe preemption.
        plan.add(
            NodeFailure(
                at=float(horizon * 0.5),
                node_id="worker-000",
                restart_delay=float(lo),
                re_replicate=re_replicate,
            )
        )
    return plan


def merge_plans(*plans: FaultPlan) -> FaultPlan:
    """Compose fault plans (e.g. churn + chaos) into one time-ordered plan."""
    merged = FaultPlan()
    for plan in plans:
        for event in plan:
            merged.add(event)
    return merged
