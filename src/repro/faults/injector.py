"""FaultInjector: binds a FaultPlan to a live simulation.

Beyond the original slowdown/executor/disk faults, the injector now models
whole-node crashes, network partitions and link degradations, and answers
the runtime queries the rest of the stack consults under faults:

* ``cpu_factor(node)`` — slowdown multiplier (as before);
* ``node_down(node)`` / ``node_reachable(node)`` / ``reachable(src, dst)``
  — ground-truth liveness and connectivity, wired into the fabric as its
  reachability oracle and into the managers' (possibly detector-delayed)
  free-pool view;
* re-replication of blocks lost to a node crash as *real* transfers through
  the fabric, contending with job traffic (a disk failure keeps the
  original instantaneous metadata-level repair).

All plan targets are validated eagerly at construction so a typo'd node or
executor id fails fast with :class:`ConfigurationError` instead of a bare
``KeyError`` minutes into a run.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.common.errors import ConfigurationError, TransferFailedError
from repro.faults.detector import FailureDetector
from repro.faults.plan import (
    CorrelatedFailure,
    DiskFailure,
    ExecutorFailure,
    FaultPlan,
    LinkDegradation,
    LinkFlap,
    ManagerCrash,
    NetworkPartition,
    NodeFailure,
    NodeSlowdown,
)
from repro.hdfs.filesystem import HDFS
from repro.network.fabric import NetworkFabric
from repro.obs.events import FaultHealed, FaultInjected, RecoveryFlow
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.engine import Simulation
from repro.simulation.process import Process
from repro.simulation.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.managers.base import ClusterManager

__all__ = ["FaultInjector"]

#: Give up re-replicating a block after this many failed/blocked attempts.
_RR_MAX_RETRIES = 6
#: Delay before retrying a re-replication that found no usable source/target.
_RR_RETRY_DELAY = 5.0


class FaultInjector:
    """Schedules fault events and answers runtime queries.

    Construction validates and schedules every plan event; the manager must
    be attached (:meth:`bind_manager`) before executor/node failures fire so
    the injector can find the owning drivers.  ``fabric`` and ``detector``
    are optional: without a fabric, partitions/degradations are rejected and
    node-failure recovery falls back to instantaneous repair; without a
    detector, managers see ground-truth liveness.
    """

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        hdfs: HDFS,
        plan: FaultPlan,
        *,
        timeline: Optional[Timeline] = None,
        fabric: Optional[NetworkFabric] = None,
        detector: Optional[FailureDetector] = None,
        network_timeout: float = 30.0,
        re_replication_parallelism: int = 4,
        tracer: Optional[Tracer] = None,
        metrics=None,
    ):
        if network_timeout <= 0:
            raise ConfigurationError(
                f"network_timeout must be positive, got {network_timeout}"
            )
        if re_replication_parallelism < 1:
            raise ConfigurationError(
                "re_replication_parallelism must be >= 1, "
                f"got {re_replication_parallelism}"
            )
        self.sim = sim
        self.cluster = cluster
        self.hdfs = hdfs
        self.plan = plan
        self.timeline = timeline
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fabric = fabric
        self.detector = detector
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_injected = self.metrics.counter(
            "faults_injected_total",
            "Fault events fired, by fault kind.",
            ("kind",),
        )
        self._m_healed = self.metrics.counter(
            "faults_healed_total",
            "Fault recoveries completed, by fault kind.",
            ("kind",),
        )
        self.network_timeout = network_timeout
        self.re_replication_parallelism = re_replication_parallelism
        self.manager: Optional["ClusterManager"] = None
        #: node id → set of (end_time, factor) currently active
        self._slowdowns: Dict[str, List[Tuple[float, float]]] = {}
        self._failed_executors: Set[str] = set()
        #: executor id → failure generation, bumped on every kill.  Pending
        #: restart callbacks carry the generation they belong to, so a
        #: restart scheduled for an earlier failure cannot revive (or
        #: double-count the heal of) a later one.
        self._executor_fail_epoch: Dict[str, int] = {}
        self._down_nodes: Set[str] = set()
        self._partitions: List[frozenset] = []
        self._degradations: Dict[str, List[Tuple[float, float]]] = {}
        #: node id → count of link-flap down phases currently active
        self._flapped: Dict[str, int] = {}
        self._rr_queue: Deque[Tuple[str, str, int]] = deque()
        self._rr_active = 0
        self.injected = 0
        self.tasks_requeued = 0
        self.replicas_lost = 0
        self.replicas_restored = 0
        self.blocks_lost = 0
        self.recovery_flows = 0
        self.recovery_bytes = 0.0
        #: fault kind → recovery durations (time from injection to repair)
        self.mttr: Dict[str, List[float]] = {}
        self._validate_plan()
        if fabric is not None:
            fabric.set_reachability(self.reachable, connect_timeout=network_timeout)
        for event in plan:
            if isinstance(event, NodeSlowdown):
                self.sim.schedule_at(event.at, self._start_slowdown, event)
            elif isinstance(event, ExecutorFailure):
                self.sim.schedule_at(event.at, self._fail_executor, event)
            elif isinstance(event, DiskFailure):
                self.sim.schedule_at(event.at, self._fail_disk, event)
            elif isinstance(event, NodeFailure):
                self.sim.schedule_at(event.at, self._fail_node, event)
            elif isinstance(event, NetworkPartition):
                self.sim.schedule_at(event.at, self._start_partition, event)
            elif isinstance(event, LinkDegradation):
                self.sim.schedule_at(event.at, self._start_degradation, event)
            elif isinstance(event, LinkFlap):
                self.sim.schedule_at(event.at, self._start_flap, event)
            elif isinstance(event, CorrelatedFailure):
                self.sim.schedule_at(event.at, self._fail_group, event)
            elif isinstance(event, ManagerCrash):
                self.sim.schedule_at(event.at, self._crash_manager, event)
            else:
                raise ConfigurationError(f"unknown fault event {event!r}")

    def _validate_plan(self) -> None:
        """Fail fast on plan targets that do not exist in this cluster."""
        nodes = set(self.cluster.node_ids)
        executors = {e.executor_id for e in self.cluster.executors}
        for event in self.plan:
            if isinstance(
                event, (NodeSlowdown, DiskFailure, NodeFailure, LinkDegradation, LinkFlap)
            ):
                if event.node_id not in nodes:
                    raise ConfigurationError(
                        f"{type(event).__name__} targets unknown node "
                        f"{event.node_id!r}"
                    )
            elif isinstance(event, ExecutorFailure):
                if event.executor_id not in executors:
                    raise ConfigurationError(
                        f"ExecutorFailure targets unknown executor "
                        f"{event.executor_id!r}"
                    )
            elif isinstance(event, (NetworkPartition, CorrelatedFailure)):
                members = (
                    event.nodes if isinstance(event, NetworkPartition) else event.node_ids
                )
                unknown = [n for n in members if n not in nodes]
                if unknown:
                    raise ConfigurationError(
                        f"{type(event).__name__} targets unknown nodes {unknown!r}"
                    )
            elif isinstance(event, ManagerCrash):
                # Targets the control plane, not a cluster entity; the
                # recovery-coordinator requirement is checked at fire time
                # (the manager is bound after construction).
                pass
            else:
                raise ConfigurationError(f"unknown fault event {event!r}")
            if (
                isinstance(event, (NetworkPartition, LinkDegradation, LinkFlap))
                and self.fabric is None
            ):
                raise ConfigurationError(
                    f"{type(event).__name__} requires a NetworkFabric; "
                    "construct the injector with fabric=..."
                )

    def bind_manager(self, manager: "ClusterManager") -> None:
        """Attach the cluster manager (needed for executor/node failures)."""
        self.manager = manager

    # ---------------------------------------------------------------- queries
    def cpu_factor(self, node_id: str) -> float:
        """Multiplier on CPU time for attempts launched on ``node_id`` now."""
        active = self._slowdowns.get(node_id)
        if not active:
            return 1.0
        now = self.sim.now
        factor = 1.0
        for end, f in active:
            if now < end:
                factor = max(factor, f)
        return factor

    @property
    def failed_executor_ids(self) -> Set[str]:
        """Executors currently down (crashed, restart pending)."""
        return set(self._failed_executors)

    def node_down(self, node_id: str) -> bool:
        """Ground truth: is the node currently crashed?"""
        return node_id in self._down_nodes

    def reachable(self, src: str, dst: str) -> bool:
        """Ground truth: can ``src`` and ``dst`` talk right now?

        False when either endpoint is down, its link is in a flap down
        phase, or any active partition separates them (nodes on the same
        side of every partition stay connected).
        """
        if src in self._down_nodes or dst in self._down_nodes:
            return False
        if self._flapped.get(src, 0) or self._flapped.get(dst, 0):
            return False
        for part in self._partitions:
            if (src in part) != (dst in part):
                return False
        return True

    def node_reachable(self, node_id: str) -> bool:
        """Ground truth: can the (partition-free) master reach the node?"""
        if node_id in self._down_nodes or self._flapped.get(node_id, 0):
            return False
        return not any(node_id in part for part in self._partitions)

    def link_flapping(self, node_id: str) -> bool:
        """Ground truth: is the node's link currently in a flap down phase?"""
        return bool(self._flapped.get(node_id, 0))

    def _notify_manager(self) -> None:
        if self.manager is not None:
            self.manager.on_executors_changed()

    # -------------------------------------------------------------- tracing
    def _trace_fault(self, kind: str, target: str, *, healed: bool = False, **attrs) -> None:
        """Emit a FaultInjected/FaultHealed instant on the target's track."""
        (self._m_healed if healed else self._m_injected).labels(kind=kind).inc()
        if not self.tracer.enabled:
            return
        cls = FaultHealed if healed else FaultInjected
        attrs.update(kind=kind, target=target)
        self.tracer.emit(cls(self.sim.now, track=target, attrs=attrs))

    # ------------------------------------------------------------- slowdowns
    def _start_slowdown(self, event: NodeSlowdown) -> None:
        self.injected += 1
        self._slowdowns.setdefault(event.node_id, []).append(
            (self.sim.now + event.duration, event.factor)
        )
        if self.timeline is not None:
            self.timeline.record(
                "fault.slowdown", event.node_id,
                factor=event.factor, duration=event.duration,
            )
        self._trace_fault(
            "slowdown", event.node_id, factor=event.factor, duration=event.duration
        )
        if self.detector is not None:
            # A slowed worker heartbeats slower too — that stretched gap is
            # exactly what an adaptive detector keys its suspicion off.
            self.detector.begin_slow(event.node_id, event.factor)
        self.sim.schedule(
            event.duration, self._gc_slowdowns, event.node_id, event.duration
        )

    def _gc_slowdowns(self, node_id: str, duration: float) -> None:
        now = self.sim.now
        active = self._slowdowns.get(node_id, [])
        expired = [(end, f) for end, f in active if end <= now]
        self._slowdowns[node_id] = [(end, f) for end, f in active if end > now]
        if expired:
            if self.detector is not None:
                for _, factor in expired:
                    self.detector.end_slow(node_id, factor)
            self.mttr.setdefault("slowdown", []).append(duration)
            self._trace_fault("slowdown", node_id, healed=True)

    # -------------------------------------------------------------- executors
    def _fail_executor(self, event: ExecutorFailure) -> None:
        executor = self.cluster.executor(event.executor_id)
        self.injected += 1
        if self.timeline is not None:
            self.timeline.record("fault.executor", event.executor_id)
        self._trace_fault(
            "executor", event.executor_id, restart_delay=event.restart_delay
        )
        if executor.executor_id in self._failed_executors:
            return  # already down
        self._kill_executor(executor)
        # Let demand-driven managers replace the lost capacity now.
        self._notify_manager()
        # Restart: the executor rejoins the free pool after the delay; a
        # reallocation nudge lets demand-driven managers pick it up.
        self.sim.schedule(
            event.restart_delay,
            self._restart_executor,
            executor,
            self._executor_fail_epoch[executor.executor_id],
        )

    def _kill_executor(self, executor) -> None:
        """Shared crash path: mark down, kill attempts, release ownership."""
        self._failed_executors.add(executor.executor_id)
        self._executor_fail_epoch[executor.executor_id] = (
            self._executor_fail_epoch.get(executor.executor_id, 0) + 1
        )
        executor.healthy = False
        owner = executor.owner
        if owner is not None:
            if self.manager is None:
                raise ConfigurationError(
                    "FaultInjector needs bind_manager() before executor failures"
                )
            driver = self.manager.drivers.get(owner)
            if driver is not None:
                self.tasks_requeued += driver.on_executor_failure(executor)
            executor.release()

    def _restart_executor(self, executor, epoch: int) -> None:
        if epoch != self._executor_fail_epoch.get(executor.executor_id, 0):
            return  # stale callback: the executor failed again meanwhile
        if executor.executor_id not in self._failed_executors:
            return  # already revived (e.g. its node restored); don't re-heal
        if executor.node_id in self._down_nodes:
            return  # the whole node crashed meanwhile; node restore handles it
        self._failed_executors.discard(executor.executor_id)
        executor.healthy = True
        if self.timeline is not None:
            self.timeline.record("fault.executor.restart", executor.executor_id)
        self._trace_fault("executor", executor.executor_id, healed=True)
        self._notify_manager()

    # ---------------------------------------------------------------- manager
    def _crash_manager(self, event: ManagerCrash) -> None:
        """Control-plane crash: hand the outage to the recovery coordinator.

        The data plane (executors, drivers, transfers) keeps running; the
        coordinator stalls allocation, marks the crash point in its WAL,
        and schedules its own restart + reconciliation.  The injector only
        owns the fault bookkeeping (trace/heal/MTTR) so chaos sweeps see
        manager crashes like any other fault kind.
        """
        if self.manager is None:
            raise ConfigurationError(
                "FaultInjector needs bind_manager() before manager crashes"
            )
        recovery = getattr(self.manager, "recovery", None)
        if recovery is None:
            raise ConfigurationError(
                "ManagerCrash requires a recovery coordinator; "
                "enable manager_recovery on the experiment config"
            )
        self.injected += 1
        if self.timeline is not None:
            self.timeline.record("fault.manager", "manager", duration=event.duration)
        self._trace_fault("manager", "manager", duration=event.duration)
        recovery.crash(event.duration)
        self.sim.schedule(event.duration, self._restore_manager, self.sim.now)

    def _restore_manager(self, failed_at: float) -> None:
        """The outage window ended: record the heal (the coordinator has
        already restarted and begun reconciliation at this instant)."""
        self.mttr.setdefault("manager", []).append(self.sim.now - failed_at)
        if self.timeline is not None:
            self.timeline.record("fault.manager.restart", "manager")
        self._trace_fault(
            "manager", "manager", healed=True, after=self.sim.now - failed_at
        )

    # ------------------------------------------------------------------ disks
    def _fail_disk(self, event: DiskFailure) -> None:
        self.injected += 1
        lost = self._wipe_storage(event.node_id)
        if self.timeline is not None:
            self.timeline.record(
                "fault.disk", event.node_id, replicas_lost=len(lost)
            )
        self._trace_fault("disk", event.node_id, replicas_lost=len(lost))
        if event.re_replicate:
            self._re_replicate(event.node_id, lost)

    def _wipe_storage(self, node_id: str) -> List[str]:
        """Drop every replica and cached copy the node holds; return ids."""
        datanode = self.hdfs.datanodes[node_id]
        lost = datanode.block_report()
        self.replicas_lost += len(lost)
        for block_id in lost:
            datanode.evict(block_id)
            self.hdfs.namenode.remove_replica(block_id, node_id)
        # The node's cache survives a disk failure in principle, but HDFS
        # treats the node as unhealthy: drop cached copies too.
        cache = self.hdfs.caches[node_id]
        for block in cache.clear():
            self.hdfs.namenode.remove_cached_replica(block.block_id, node_id)
        return lost

    def _re_replicate(self, failed_node: str, lost_block_ids) -> None:
        """Restore replication by copying from survivors to healthy nodes.

        Instantaneous metadata-level repair, used for disk failures (HDFS
        background re-replication) and as the fallback when no fabric is
        attached.  Node crashes model the copies as real transfers instead
        (:meth:`_begin_re_replication`).
        """
        for block_id in lost_block_ids:
            survivors = self.hdfs.namenode.locations(block_id)
            if not survivors:
                self.blocks_lost += 1
                if self.timeline is not None:
                    self.timeline.record("fault.block_lost", block_id)
                continue  # all replicas gone: data loss, nothing to copy
            block = None
            for node in survivors:
                dn = self.hdfs.datanodes[node]
                block = dn.block(block_id)
                if block is not None:
                    break
            if block is None:
                continue
            candidates = [
                n
                for n in self.cluster.node_ids
                if n != failed_node and not self.hdfs.datanodes[n].holds(block_id)
            ]
            if not candidates:
                continue
            # Deterministic target choice: stable hash of the block id.
            digest = sum(block_id.encode("utf-8"))
            target = candidates[digest % len(candidates)]
            self.hdfs.datanodes[target].store(block)
            self.hdfs.namenode.add_replica(block_id, target)
            self.replicas_restored += 1

    # ------------------------------------------------------------------- nodes
    def _fail_node(self, event: NodeFailure) -> None:
        node_id = event.node_id
        self.injected += 1
        if self.timeline is not None:
            self.timeline.record(
                "fault.node", node_id, restart_delay=event.restart_delay
            )
        self._trace_fault("node", node_id, restart_delay=event.restart_delay)
        self._crash_node(node_id, event.restart_delay, event.re_replicate, "node")

    def _fail_group(self, event: CorrelatedFailure) -> None:
        """Correlated crash: every group member fails at the same instant."""
        self.injected += 1
        group = ",".join(event.node_ids)
        if self.timeline is not None:
            self.timeline.record(
                "fault.correlated", group, restart_delay=event.restart_delay
            )
        self._trace_fault(
            "correlated", group,
            nodes=len(event.node_ids), restart_delay=event.restart_delay,
        )
        for node_id in event.node_ids:
            self._crash_node(
                node_id, event.restart_delay, event.re_replicate, "correlated"
            )

    def _crash_node(
        self, node_id: str, restart_delay: float, re_replicate: bool, kind: str
    ) -> None:
        """Shared crash path for single and correlated node failures."""
        if node_id in self._down_nodes:
            return  # already down
        self._down_nodes.add(node_id)
        if self.detector is not None:
            self.detector.begin_outage(node_id)
        for executor in self.cluster.executors_on(node_id):
            if executor.executor_id not in self._failed_executors:
                self._kill_executor(executor)
        if self.fabric is not None:
            self.fabric.fail_transfers_touching(node_id, cause="node-down")
        lost = self._wipe_storage(node_id)
        if re_replicate and lost:
            # Recovery starts once the failure is *detected* — the NameNode
            # only learns about the dead DataNode after the heartbeat
            # timeout when a detector models that delay.
            delay = self.detector.timeout if self.detector is not None else 0.0
            self.sim.schedule(delay, self._begin_re_replication, node_id, lost)
        self._notify_manager()
        self.sim.schedule(
            restart_delay, self._restore_node, node_id, self.sim.now, kind
        )

    def _restore_node(self, node_id: str, failed_at: float, kind: str = "node") -> None:
        """The crashed node rejoins — executors healthy, DataNode empty."""
        if node_id not in self._down_nodes:
            return
        self._down_nodes.discard(node_id)
        for executor in self.cluster.executors_on(node_id):
            self._failed_executors.discard(executor.executor_id)
            executor.healthy = True
        if self.detector is not None:
            self.detector.end_outage(node_id)
        self.mttr.setdefault(kind, []).append(self.sim.now - failed_at)
        if self.timeline is not None:
            self.timeline.record("fault.node.restore", node_id)
        self._trace_fault("node", node_id, healed=True, after=self.sim.now - failed_at)
        if self.fabric is not None:
            self.fabric.refresh_stalled()
        self._notify_manager()

    # ------------------------------------------------------------------- flaps
    def _start_flap(self, event: LinkFlap) -> None:
        self.injected += 1
        if self.timeline is not None:
            self.timeline.record(
                "fault.flap", event.node_id,
                duration=event.duration, period=event.period,
            )
        self._trace_fault(
            "flap", event.node_id,
            duration=event.duration, period=event.period,
            down_fraction=event.down_fraction,
        )
        windows = event.down_windows()
        for i, (start, end) in enumerate(windows):
            last = i == len(windows) - 1
            self.sim.schedule_at(start, self._flap_down, event.node_id)
            self.sim.schedule_at(
                end, self._flap_up, event.node_id, self.sim.now if last else None
            )

    def _flap_down(self, node_id: str) -> None:
        """One down phase begins: crossing flows abort, heartbeats stop."""
        self._flapped[node_id] = self._flapped.get(node_id, 0) + 1
        if self._flapped[node_id] == 1:
            if self.detector is not None:
                self.detector.begin_outage(node_id)
            if self.fabric is not None:
                self.fabric.fail_transfers_touching(node_id, cause="link-flap")
            self._notify_manager()

    def _flap_up(self, node_id: str, episode_started) -> None:
        """One down phase ends; ``episode_started`` is set on the last one."""
        depth = self._flapped.get(node_id, 0)
        if depth <= 0:
            return
        self._flapped[node_id] = depth - 1
        if self._flapped[node_id] == 0:
            if self.detector is not None:
                self.detector.end_outage(node_id)
            if self.fabric is not None:
                self.fabric.refresh_stalled()
            self._notify_manager()
        if episode_started is not None:
            self.mttr.setdefault("flap", []).append(self.sim.now - episode_started)
            self._trace_fault(
                "flap", node_id, healed=True, after=self.sim.now - episode_started
            )

    # -------------------------------------------------------------- partitions
    def _start_partition(self, event: NetworkPartition) -> None:
        self.injected += 1
        part = frozenset(event.nodes)
        self._partitions.append(part)
        if self.timeline is not None:
            self.timeline.record(
                "fault.partition", ",".join(sorted(part)), duration=event.duration
            )
        self._trace_fault(
            "partition", ",".join(sorted(part)), duration=event.duration
        )
        if self.detector is not None:
            for node in sorted(part):
                self.detector.begin_outage(node)
        if self.fabric is not None:
            self.fabric.fail_where(
                lambda t: (t.src in part) != (t.dst in part), "partition"
            )
        self.sim.schedule(event.duration, self._heal_partition, part, self.sim.now)

    def _heal_partition(self, part: frozenset, started: float) -> None:
        self._partitions.remove(part)
        if self.detector is not None:
            for node in sorted(part):
                self.detector.end_outage(node)
        self.mttr.setdefault("partition", []).append(self.sim.now - started)
        if self.timeline is not None:
            self.timeline.record("fault.partition.heal", ",".join(sorted(part)))
        self._trace_fault(
            "partition",
            ",".join(sorted(part)),
            healed=True,
            after=self.sim.now - started,
        )
        if self.fabric is not None:
            self.fabric.refresh_stalled()
        self._notify_manager()

    # ------------------------------------------------------------ degradations
    def _start_degradation(self, event: LinkDegradation) -> None:
        self.injected += 1
        self._degradations.setdefault(event.node_id, []).append(
            (self.sim.now + event.duration, event.factor)
        )
        if self.timeline is not None:
            self.timeline.record(
                "fault.degradation", event.node_id,
                factor=event.factor, duration=event.duration,
            )
        self._trace_fault(
            "degradation", event.node_id, factor=event.factor, duration=event.duration
        )
        self._apply_link_scale(event.node_id)
        self.sim.schedule(
            event.duration, self._end_degradation, event.node_id, self.sim.now
        )

    def _end_degradation(self, node_id: str, started: float) -> None:
        now = self.sim.now
        active = self._degradations.get(node_id, [])
        self._degradations[node_id] = [(end, f) for end, f in active if end > now]
        self.mttr.setdefault("degradation", []).append(now - started)
        if self.timeline is not None:
            self.timeline.record("fault.degradation.end", node_id)
        self._trace_fault("degradation", node_id, healed=True, after=now - started)
        self._apply_link_scale(node_id)

    def _apply_link_scale(self, node_id: str) -> None:
        """Worst active degradation wins; no degradation restores base."""
        now = self.sim.now
        factors = [f for end, f in self._degradations.get(node_id, []) if end > now]
        scale = 1.0 / max(factors) if factors else 1.0
        assert self.fabric is not None  # validated at construction
        self.fabric.set_link_scale(node_id, scale)

    # ---------------------------------------------------------- re-replication
    def _begin_re_replication(self, failed_node: str, lost_block_ids) -> None:
        """Queue recovery copies for a crashed node's lost blocks."""
        if self.fabric is None:
            self._re_replicate(failed_node, lost_block_ids)
            return
        for block_id in lost_block_ids:
            self._rr_queue.append((block_id, failed_node, 0))
        self._pump_re_replication()

    def _pump_re_replication(self) -> None:
        """Start recovery transfers up to the parallelism limit."""
        while self._rr_active < self.re_replication_parallelism and self._rr_queue:
            block_id, exclude, retries = self._rr_queue.popleft()
            try:
                survivors = self.hdfs.namenode.locations(block_id)
            except ConfigurationError:
                continue  # file deleted meanwhile
            if len(survivors) >= self.hdfs.block_spec.replication:
                continue  # already back at full replication
            if not survivors:
                self.blocks_lost += 1
                if self.timeline is not None:
                    self.timeline.record("fault.block_lost", block_id)
                continue
            src = None
            block = None
            for node in survivors:
                if node in self._down_nodes:
                    continue
                candidate_block = self.hdfs.datanodes[node].block(block_id)
                if candidate_block is not None:
                    src = node
                    block = candidate_block
                    break
            # The crashed node is excluded only while down (it wipes on
            # restore, so it becomes a legitimate target again after).
            targets = (
                []
                if src is None
                else [
                    n
                    for n in self.cluster.node_ids
                    if n not in self._down_nodes
                    and not self.hdfs.datanodes[n].holds(block_id)
                    and self.reachable(src, n)
                ]
            )
            if src is None or not targets:
                self._rr_retry(block_id, exclude, retries, "no-source-or-target")
                continue
            digest = sum(block_id.encode("utf-8"))
            target = targets[digest % len(targets)]
            transfer = self.fabric.start_transfer(src, target, block.size)
            self._rr_active += 1
            self.recovery_flows += 1
            self.recovery_bytes += block.size
            if self.timeline is not None:
                self.timeline.record(
                    "fault.re_replicate", block_id, src=src, dst=target
                )
            Process(
                self.sim,
                self._rr_proc(transfer, block, target, exclude, retries),
                name=f"re-replicate:{block_id}->{target}",
            )

    def _rr_retry(self, block_id: str, exclude: str, retries: int, why: str) -> None:
        """Re-queue a blocked/failed recovery copy, bounded."""
        if retries >= _RR_MAX_RETRIES:
            if self.timeline is not None:
                self.timeline.record(
                    "fault.re_replicate.giveup", block_id, reason=why
                )
            return
        self.sim.schedule(
            _RR_RETRY_DELAY, self._rr_requeue, block_id, exclude, retries + 1
        )

    def _rr_requeue(self, block_id: str, exclude: str, retries: int) -> None:
        self._rr_queue.append((block_id, exclude, retries))
        self._pump_re_replication()

    def _rr_proc(self, transfer, block, target: str, exclude: str, retries: int):
        """Process body: wait out one recovery transfer, commit the replica."""
        try:
            yield transfer.done
        except TransferFailedError:
            self._rr_active -= 1
            self._trace_recovery(transfer, block, target, "transfer-failed")
            self._rr_retry(block.block_id, exclude, retries, "transfer-failed")
            self._pump_re_replication()
            return
        self._rr_active -= 1
        if (
            target not in self._down_nodes
            and not self.hdfs.datanodes[target].holds(block.block_id)
        ):
            self.hdfs.datanodes[target].store(block)
            self.hdfs.namenode.add_replica(block.block_id, target)
            self.replicas_restored += 1
            self._trace_recovery(transfer, block, target, "restored")
        else:
            self._trace_recovery(transfer, block, target, "superseded")
        self._pump_re_replication()

    def _trace_recovery(self, transfer, block, target: str, outcome: str) -> None:
        """Emit one re-replication copy's lifetime as a RecoveryFlow span."""
        if not self.tracer.enabled:
            return
        now = self.sim.now
        self.tracer.emit(
            RecoveryFlow(
                transfer.started_at,
                dur=now - transfer.started_at,
                track=transfer.src,
                lane=f"recovery:{transfer.src}",
                attrs={
                    "block": block.block_id,
                    "src": transfer.src,
                    "dst": target,
                    "bytes": block.size,
                    "outcome": outcome,
                },
            )
        )
