"""FaultInjector: binds a FaultPlan to a live simulation."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.common.errors import ConfigurationError
from repro.faults.plan import DiskFailure, ExecutorFailure, FaultPlan, NodeSlowdown
from repro.hdfs.filesystem import HDFS
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.managers.base import ClusterManager

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules fault events and answers runtime queries (cpu_factor).

    Construction schedules every plan event; the manager must be attached
    (:meth:`bind_manager`) before executor failures fire so the injector can
    find the owning driver.
    """

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        hdfs: HDFS,
        plan: FaultPlan,
        *,
        timeline: Optional[Timeline] = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.hdfs = hdfs
        self.plan = plan
        self.timeline = timeline
        self.manager: Optional["ClusterManager"] = None
        #: node id → set of (end_time, factor) currently active
        self._slowdowns: Dict[str, List[Tuple[float, float]]] = {}
        self._failed_executors: Set[str] = set()
        self.injected = 0
        self.tasks_requeued = 0
        self.replicas_lost = 0
        self.replicas_restored = 0
        for event in plan:
            if isinstance(event, NodeSlowdown):
                self.sim.schedule_at(event.at, self._start_slowdown, event)
            elif isinstance(event, ExecutorFailure):
                self.sim.schedule_at(event.at, self._fail_executor, event)
            elif isinstance(event, DiskFailure):
                self.sim.schedule_at(event.at, self._fail_disk, event)
            else:
                raise ConfigurationError(f"unknown fault event {event!r}")

    def bind_manager(self, manager: "ClusterManager") -> None:
        """Attach the cluster manager (needed for executor failures)."""
        self.manager = manager

    # ---------------------------------------------------------------- queries
    def cpu_factor(self, node_id: str) -> float:
        """Multiplier on CPU time for attempts launched on ``node_id`` now."""
        active = self._slowdowns.get(node_id)
        if not active:
            return 1.0
        now = self.sim.now
        factor = 1.0
        for end, f in active:
            if now < end:
                factor = max(factor, f)
        return factor

    @property
    def failed_executor_ids(self) -> Set[str]:
        """Executors currently down (crashed, restart pending)."""
        return set(self._failed_executors)

    # ------------------------------------------------------------- slowdowns
    def _start_slowdown(self, event: NodeSlowdown) -> None:
        self.injected += 1
        self._slowdowns.setdefault(event.node_id, []).append(
            (self.sim.now + event.duration, event.factor)
        )
        if self.timeline is not None:
            self.timeline.record(
                "fault.slowdown", event.node_id,
                factor=event.factor, duration=event.duration,
            )
        self.sim.schedule(event.duration, self._gc_slowdowns, event.node_id)

    def _gc_slowdowns(self, node_id: str) -> None:
        now = self.sim.now
        active = self._slowdowns.get(node_id, [])
        self._slowdowns[node_id] = [(end, f) for end, f in active if end > now]

    # -------------------------------------------------------------- executors
    def _fail_executor(self, event: ExecutorFailure) -> None:
        executor = self.cluster.executor(event.executor_id)
        self.injected += 1
        if self.timeline is not None:
            self.timeline.record("fault.executor", event.executor_id)
        if executor.executor_id in self._failed_executors:
            return  # already down
        self._failed_executors.add(executor.executor_id)
        executor.healthy = False
        owner = executor.owner
        if owner is not None:
            if self.manager is None:
                raise ConfigurationError(
                    "FaultInjector needs bind_manager() before executor failures"
                )
            driver = self.manager.drivers.get(owner)
            if driver is not None:
                self.tasks_requeued += driver.on_executor_failure(executor)
            executor.release()
            # Let demand-driven managers replace the lost capacity now.
            if hasattr(self.manager, "reallocate"):
                self.manager.reallocate()
        # Restart: the executor rejoins the free pool after the delay; a
        # reallocation nudge lets demand-driven managers pick it up.
        self.sim.schedule(event.restart_delay, self._restart_executor, executor)

    def _restart_executor(self, executor) -> None:
        self._failed_executors.discard(executor.executor_id)
        executor.healthy = True
        if self.timeline is not None:
            self.timeline.record("fault.executor.restart", executor.executor_id)
        if self.manager is not None and hasattr(self.manager, "reallocate"):
            self.manager.reallocate()

    # ------------------------------------------------------------------ disks
    def _fail_disk(self, event: DiskFailure) -> None:
        self.injected += 1
        datanode = self.hdfs.datanodes[event.node_id]
        lost = datanode.block_report()
        self.replicas_lost += len(lost)
        for block_id in lost:
            datanode.evict(block_id)
            self.hdfs.namenode.remove_replica(block_id, event.node_id)
        # The node's cache survives a disk failure in principle, but HDFS
        # treats the node as unhealthy: drop cached copies too.
        cache = self.hdfs.caches[event.node_id]
        for block in cache.clear():
            self.hdfs.namenode.remove_cached_replica(block.block_id, event.node_id)
        if self.timeline is not None:
            self.timeline.record(
                "fault.disk", event.node_id, replicas_lost=len(lost)
            )
        if event.re_replicate:
            self._re_replicate(event.node_id, lost)

    def _re_replicate(self, failed_node: str, lost_block_ids) -> None:
        """Restore replication by copying from survivors to healthy nodes."""
        for block_id in lost_block_ids:
            survivors = self.hdfs.namenode.locations(block_id)
            if not survivors:
                continue  # all replicas gone: data loss, nothing to copy
            block = None
            for node in survivors:
                dn = self.hdfs.datanodes[node]
                block = dn.block(block_id)
                if block is not None:
                    break
            if block is None:
                continue
            candidates = [
                n
                for n in self.cluster.node_ids
                if n != failed_node and not self.hdfs.datanodes[n].holds(block_id)
            ]
            if not candidates:
                continue
            # Deterministic target choice: stable hash of the block id.
            digest = sum(block_id.encode("utf-8"))
            target = candidates[digest % len(candidates)]
            self.hdfs.datanodes[target].store(block)
            self.hdfs.namenode.add_replica(block_id, target)
            self.replicas_restored += 1
