"""Fault event types and the FaultPlan container."""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, replace
from typing import Iterator, List, Sequence, Tuple

from repro.common.errors import ConfigurationError

__all__ = [
    "FaultEvent",
    "NodeSlowdown",
    "ExecutorFailure",
    "DiskFailure",
    "NodeFailure",
    "NetworkPartition",
    "LinkDegradation",
    "LinkFlap",
    "CorrelatedFailure",
    "ManagerCrash",
    "FaultPlan",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base: something goes wrong at virtual time ``at``."""

    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class NodeSlowdown(FaultEvent):
    """CPU on ``node_id`` runs ``factor``x slower for ``duration`` seconds.

    Applies to task attempts *launched* during the window (the per-launch
    approximation keeps already-running timeouts immutable; with typical
    task lengths well below slowdown windows the difference is negligible).
    """

    node_id: str = ""
    duration: float = 0.0
    factor: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigurationError("NodeSlowdown requires a node_id")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class ExecutorFailure(FaultEvent):
    """Executor crash: attempts killed, tasks requeued, executor restarts
    after ``restart_delay`` seconds back in the free pool."""

    executor_id: str = ""
    restart_delay: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.executor_id:
            raise ConfigurationError("ExecutorFailure requires an executor_id")
        if self.restart_delay < 0:
            raise ConfigurationError(
                f"restart_delay must be >= 0, got {self.restart_delay}"
            )


@dataclass(frozen=True)
class DiskFailure(FaultEvent):
    """DataNode disk loss on ``node_id``: every stored replica vanishes.

    With ``re_replicate`` the filesystem restores each block's replication
    level by copying from surviving holders to random healthy nodes
    (instantaneous metadata-level repair — the recovery traffic itself is
    not modelled, matching how HDFS re-replication runs in the background).
    """

    node_id: str = ""
    re_replicate: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigurationError("DiskFailure requires a node_id")


@dataclass(frozen=True)
class NodeFailure(FaultEvent):
    """Whole-node crash (cloud instance loss): every executor on the node
    dies, its DataNode replicas and cached blocks vanish, and all flows
    traversing the node's links abort.  The node rejoins the cluster — with
    an *empty* DataNode — after ``restart_delay`` seconds.

    With ``re_replicate`` the lost blocks are copied back onto healthy
    nodes as real transfers through the fabric (the recovery traffic
    contends with job traffic); the copies start once the failure has been
    *detected* (after the FailureDetector timeout when one is configured).
    """

    node_id: str = ""
    restart_delay: float = 30.0
    re_replicate: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigurationError("NodeFailure requires a node_id")
        if self.restart_delay < 0:
            raise ConfigurationError(
                f"restart_delay must be >= 0, got {self.restart_delay}"
            )


@dataclass(frozen=True)
class NetworkPartition(FaultEvent):
    """``nodes`` are cut off from the rest of the fabric for ``duration``
    seconds.  Nodes inside the set can still reach each other; any flow
    crossing the boundary aborts, new crossing transfers stall until they
    hit the fabric's connect timeout, and heartbeats from the partitioned
    side stop arriving (so a FailureDetector eventually suspects them)."""

    duration: float = 0.0
    nodes: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if not self.nodes:
            raise ConfigurationError("NetworkPartition requires at least one node")
        # Frozen dataclass: normalise via object.__setattr__ for hashability.
        object.__setattr__(self, "nodes", tuple(sorted(set(self.nodes))))


@dataclass(frozen=True)
class LinkDegradation(FaultEvent):
    """``node_id``'s NIC runs at ``1/factor`` capacity for ``duration``
    seconds (a flaky link / oversubscribed ToR).  In-flight flows through
    the node re-rate under max-min fairness; nothing aborts."""

    node_id: str = ""
    duration: float = 0.0
    factor: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigurationError("LinkDegradation requires a node_id")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.factor <= 1.0:
            raise ConfigurationError(f"factor must be > 1, got {self.factor}")


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """``node_id``'s link cycles up/down deterministically for ``duration``
    seconds — the classic gray failure a fixed-window detector mishandles.

    Each ``period``-second cycle starts with a down phase of
    ``down_fraction * period`` seconds (crossing flows abort, new transfers
    stall) followed by an up phase where traffic drains normally.  Cycles
    repeat until the episode ends; a down phase is clipped at the episode
    boundary so the link is always healthy after ``at + duration``.
    """

    node_id: str = ""
    duration: float = 0.0
    period: float = 10.0
    down_fraction: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigurationError("LinkFlap requires a node_id")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.period <= 0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if not (0.0 < self.down_fraction < 1.0):
            raise ConfigurationError(
                f"down_fraction must be in (0, 1), got {self.down_fraction}"
            )

    def down_windows(self) -> List[Tuple[float, float]]:
        """Absolute ``[start, end)`` down phases of the episode, in order."""
        windows: List[Tuple[float, float]] = []
        episode_end = self.at + self.duration
        cycles = int(math.ceil(self.duration / self.period))
        for k in range(cycles):
            start = self.at + k * self.period
            if start >= episode_end:
                break
            end = min(start + self.down_fraction * self.period, episode_end)
            if end > start:
                windows.append((start, end))
        return windows


@dataclass(frozen=True)
class CorrelatedFailure(FaultEvent):
    """Rack/group-scoped crash: every node in ``node_ids`` fails at once
    (shared power feed, ToR switch, availability-zone event).  Each member
    follows the :class:`NodeFailure` path — executors die, storage is
    wiped, flows abort — and rejoins after ``restart_delay`` seconds.

    Because the members fail together, surviving replicas of a block may
    all be inside the group: correlated failures are how replication
    placement actually loses data, which single-node plans cannot show.
    """

    node_ids: Tuple[str, ...] = field(default_factory=tuple)
    restart_delay: float = 30.0
    re_replicate: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(set(self.node_ids)) < 2:
            raise ConfigurationError(
                "CorrelatedFailure requires at least two distinct nodes"
            )
        if any(not node_id for node_id in self.node_ids):
            raise ConfigurationError("CorrelatedFailure node ids must be non-empty")
        if self.restart_delay < 0:
            raise ConfigurationError(
                f"restart_delay must be >= 0, got {self.restart_delay}"
            )
        object.__setattr__(self, "node_ids", tuple(sorted(set(self.node_ids))))


@dataclass(frozen=True)
class ManagerCrash(FaultEvent):
    """Control-plane crash: the cluster manager process dies for
    ``duration`` seconds.  Registrations, submissions, and allocation
    rounds stall; running executors and drivers keep working (the data
    plane is unaffected — this is the classic control/data separation).

    Requires a run with ``manager_recovery`` enabled: on expiry the
    manager restarts from its last durable checkpoint + WAL suffix and
    reconciles its lease ledger against the live cluster (re-adopting
    live leases, expiring orphans, reclaiming zombie executors) before
    resuming allocation.
    """

    duration: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")


#: JSON tag → event class, the serialisable surface of the fault model.
_EVENT_TYPES = {
    cls.__name__: cls
    for cls in (
        NodeSlowdown,
        ExecutorFailure,
        DiskFailure,
        NodeFailure,
        NetworkPartition,
        LinkDegradation,
        LinkFlap,
        CorrelatedFailure,
        ManagerCrash,
    )
}
#: dataclass fields serialised as JSON arrays that must round-trip to tuples
_TUPLE_FIELDS = ("nodes", "node_ids")


class FaultPlan:
    """A time-ordered collection of fault events."""

    def __init__(self, events: Sequence[FaultEvent] = ()):
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.at)

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append an event (keeps the plan sorted); returns self for chaining."""
        self.events.append(event)
        self.events.sort(key=lambda e: e.at)
        return self

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        inner = ", ".join(repr(e) for e in self.events)
        return f"FaultPlan([{inner}])"

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def of_type(self, kind: type) -> List[FaultEvent]:
        """Events of one fault class."""
        return [e for e in self.events if isinstance(e, kind)]

    # -------------------------------------------------------- (de)serialisation
    def to_json(self, *, indent: int = 2) -> str:
        """Serialise the plan as a replayable JSON artifact.

        Mirrors ``SubmissionTrace.to_csv``: the artifact plus the config
        seed fully determines a chaos run, so any sweep cell can be
        re-executed (or bisected) from files alone.
        """
        events = [
            {"kind": type(event).__name__, **asdict(event)}
            for event in self.events
        ]
        return json.dumps({"version": 1, "events": events}, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output (strictly validated)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "events" not in payload:
            raise ConfigurationError("fault plan JSON needs an 'events' list")
        version = payload.get("version", 1)
        if version != 1:
            raise ConfigurationError(f"unsupported fault plan version {version!r}")
        events: List[FaultEvent] = []
        for item in payload["events"]:
            if not isinstance(item, dict) or "kind" not in item:
                raise ConfigurationError(f"fault plan event needs a 'kind': {item!r}")
            fields = dict(item)
            kind = fields.pop("kind")
            event_cls = _EVENT_TYPES.get(kind)
            if event_cls is None:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; choose from {sorted(_EVENT_TYPES)}"
                )
            for name in _TUPLE_FIELDS:
                if name in fields:
                    fields[name] = tuple(fields[name])
            try:
                events.append(event_cls(**fields))
            except TypeError as exc:
                raise ConfigurationError(f"bad {kind} fields: {exc}") from exc
        return cls(events).validate()

    def validate(self) -> "FaultPlan":
        """Re-check every event invariant; returns self for chaining.

        Events validate at construction, but a plan assembled from mutated
        or hand-edited artifacts can bypass that — ``replace`` re-runs each
        frozen dataclass's ``__post_init__`` without copying semantics.
        """
        for event in self.events:
            replace(event)
            if not math.isfinite(event.at):
                raise ConfigurationError(f"fault time must be finite, got {event.at}")
        for earlier, later in zip(self.events, self.events[1:]):
            if earlier.at > later.at:
                raise ConfigurationError("fault plan events are not time-sorted")
        return self
