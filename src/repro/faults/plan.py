"""Fault event types and the FaultPlan container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.common.errors import ConfigurationError

__all__ = [
    "FaultEvent",
    "NodeSlowdown",
    "ExecutorFailure",
    "DiskFailure",
    "NodeFailure",
    "NetworkPartition",
    "LinkDegradation",
    "FaultPlan",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base: something goes wrong at virtual time ``at``."""

    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class NodeSlowdown(FaultEvent):
    """CPU on ``node_id`` runs ``factor``x slower for ``duration`` seconds.

    Applies to task attempts *launched* during the window (the per-launch
    approximation keeps already-running timeouts immutable; with typical
    task lengths well below slowdown windows the difference is negligible).
    """

    node_id: str = ""
    duration: float = 0.0
    factor: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigurationError("NodeSlowdown requires a node_id")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class ExecutorFailure(FaultEvent):
    """Executor crash: attempts killed, tasks requeued, executor restarts
    after ``restart_delay`` seconds back in the free pool."""

    executor_id: str = ""
    restart_delay: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.executor_id:
            raise ConfigurationError("ExecutorFailure requires an executor_id")
        if self.restart_delay < 0:
            raise ConfigurationError(
                f"restart_delay must be >= 0, got {self.restart_delay}"
            )


@dataclass(frozen=True)
class DiskFailure(FaultEvent):
    """DataNode disk loss on ``node_id``: every stored replica vanishes.

    With ``re_replicate`` the filesystem restores each block's replication
    level by copying from surviving holders to random healthy nodes
    (instantaneous metadata-level repair — the recovery traffic itself is
    not modelled, matching how HDFS re-replication runs in the background).
    """

    node_id: str = ""
    re_replicate: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigurationError("DiskFailure requires a node_id")


@dataclass(frozen=True)
class NodeFailure(FaultEvent):
    """Whole-node crash (cloud instance loss): every executor on the node
    dies, its DataNode replicas and cached blocks vanish, and all flows
    traversing the node's links abort.  The node rejoins the cluster — with
    an *empty* DataNode — after ``restart_delay`` seconds.

    With ``re_replicate`` the lost blocks are copied back onto healthy
    nodes as real transfers through the fabric (the recovery traffic
    contends with job traffic); the copies start once the failure has been
    *detected* (after the FailureDetector timeout when one is configured).
    """

    node_id: str = ""
    restart_delay: float = 30.0
    re_replicate: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigurationError("NodeFailure requires a node_id")
        if self.restart_delay < 0:
            raise ConfigurationError(
                f"restart_delay must be >= 0, got {self.restart_delay}"
            )


@dataclass(frozen=True)
class NetworkPartition(FaultEvent):
    """``nodes`` are cut off from the rest of the fabric for ``duration``
    seconds.  Nodes inside the set can still reach each other; any flow
    crossing the boundary aborts, new crossing transfers stall until they
    hit the fabric's connect timeout, and heartbeats from the partitioned
    side stop arriving (so a FailureDetector eventually suspects them)."""

    duration: float = 0.0
    nodes: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if not self.nodes:
            raise ConfigurationError("NetworkPartition requires at least one node")
        # Frozen dataclass: normalise via object.__setattr__ for hashability.
        object.__setattr__(self, "nodes", tuple(sorted(set(self.nodes))))


@dataclass(frozen=True)
class LinkDegradation(FaultEvent):
    """``node_id``'s NIC runs at ``1/factor`` capacity for ``duration``
    seconds (a flaky link / oversubscribed ToR).  In-flight flows through
    the node re-rate under max-min fairness; nothing aborts."""

    node_id: str = ""
    duration: float = 0.0
    factor: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigurationError("LinkDegradation requires a node_id")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.factor <= 1.0:
            raise ConfigurationError(f"factor must be > 1, got {self.factor}")


class FaultPlan:
    """A time-ordered collection of fault events."""

    def __init__(self, events: Sequence[FaultEvent] = ()):
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.at)

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append an event (keeps the plan sorted); returns self for chaining."""
        self.events.append(event)
        self.events.sort(key=lambda e: e.at)
        return self

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        inner = ", ".join(repr(e) for e in self.events)
        return f"FaultPlan([{inner}])"

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def of_type(self, kind: type) -> List[FaultEvent]:
        """Events of one fault class."""
        return [e for e in self.events if isinstance(e, kind)]
