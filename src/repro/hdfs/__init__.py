"""HDFS substrate: NameNode, DataNodes, blocks, placement policies.

Custody's only interface to the storage layer is the NameNode query "which
DataNodes hold the blocks of this file?" (§IV-C).  We model exactly the
machinery that answers it:

* :class:`Block` — a fixed-size chunk of a file (128 MB default, §VI-A);
* :class:`DataNode` — per-worker block inventory with capacity accounting;
* :class:`NameNode` — directory tree, file → block list, block → replica map;
* placement policies — HDFS's rack-aware default, uniform random, and a
  Scarlett-style popularity-proportional policy (§VII, [9]);
* :class:`HDFS` — the facade tying them together.
"""

from repro.hdfs.blocks import Block
from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HDFS
from repro.hdfs.namenode import FileEntry, NameNode
from repro.hdfs.placement import (
    PlacementPolicy,
    PopularityAwarePlacement,
    RackAwarePlacement,
    RandomPlacement,
)

__all__ = [
    "Block",
    "DataNode",
    "FileEntry",
    "HDFS",
    "NameNode",
    "PlacementPolicy",
    "PopularityAwarePlacement",
    "RackAwarePlacement",
    "RandomPlacement",
]
