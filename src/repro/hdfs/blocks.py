"""Block: the unit of storage, replication and input-task granularity."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Block"]


@dataclass(frozen=True)
class Block:
    """A fixed-size chunk of one file.

    ``index`` is the block's position within its file; the last block of a
    file may be shorter than the configured block size.  Blocks are hashable
    and compared by value, so they key dictionaries throughout the allocator.
    """

    block_id: str
    path: str
    index: int
    size: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"block index must be >= 0, got {self.index}")
        if self.size <= 0:
            raise ValueError(f"block size must be positive, got {self.size}")

    def __str__(self) -> str:
        return self.block_id
