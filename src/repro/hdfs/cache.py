"""In-memory block caching.

The paper's executor model is ``E_u = {D_x : E_u stores or caches D_x}``
(§III-A): a block *cached* in a node's memory serves locality exactly like
a disk replica.  This module adds that second tier:

* :class:`BlockCache` — one per worker node: a byte-capacity LRU over block
  replicas, read at memory bandwidth;
* cache locations are registered with the NameNode
  (:meth:`~repro.hdfs.namenode.NameNode.add_cached_replica`), whose
  :meth:`~repro.hdfs.namenode.NameNode.serving_locations` is what the task
  schedulers and the Custody allocator consult.

The runtime policy (wired in :class:`~repro.scheduling.driver.ApplicationDriver`)
is cache-on-remote-read: when an input task fetches its block over the
network, the destination node caches it, so repeated scans of a hot dataset
become local — the Alluxio/HDFS-cache behaviour the paper's popularity
discussion (§VII) assumes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.hdfs.blocks import Block

__all__ = ["BlockCache"]

#: Default memory-read bandwidth: 2 GB/s, an order of magnitude over SSD.
DEFAULT_CACHE_BANDWIDTH = 2.0 * 2.0**30


class BlockCache:
    """LRU cache of block replicas on one worker node.

    ``capacity`` is in bytes; a capacity of zero disables the cache (every
    insert is refused).  Reads at ``bandwidth`` bytes/second.
    """

    def __init__(
        self,
        node_id: str,
        capacity: float,
        *,
        bandwidth: float = DEFAULT_CACHE_BANDWIDTH,
    ):
        if capacity < 0:
            raise ConfigurationError(f"{node_id}: cache capacity must be >= 0")
        if bandwidth <= 0:
            raise ConfigurationError(f"{node_id}: cache bandwidth must be positive")
        self.node_id = node_id
        self.capacity = float(capacity)
        self.bandwidth = float(bandwidth)
        self._blocks: "OrderedDict[str, Block]" = OrderedDict()
        self._used = 0.0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    # ---------------------------------------------------------------- lookup
    @property
    def used(self) -> float:
        """Bytes currently cached."""
        return self._used

    @property
    def block_count(self) -> int:
        """Number of cached blocks."""
        return len(self._blocks)

    def holds(self, block_id: str) -> bool:
        """True when ``block_id`` is cached here (does not touch LRU order)."""
        return block_id in self._blocks

    def touch(self, block_id: str) -> bool:
        """Record a read: refresh LRU position; count hit/miss."""
        if block_id in self._blocks:
            self._blocks.move_to_end(block_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def read_time(self, size: float) -> float:
        """Seconds to stream ``size`` bytes from memory."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return size / self.bandwidth

    # ---------------------------------------------------------------- mutate
    def insert(self, block: Block) -> List[Block]:
        """Cache a block, evicting LRU entries to make room.

        Returns the evicted blocks (callers deregister them from the
        NameNode).  A block larger than the whole cache — or any insert on a
        zero-capacity cache — is refused (returns the block uncached is not
        signalled; the cache simply does not hold it).
        Re-inserting an already-cached block refreshes its LRU position.
        """
        if block.block_id in self._blocks:
            self._blocks.move_to_end(block.block_id)
            return []
        if block.size > self.capacity:
            return []
        evicted: List[Block] = []
        while self._used + block.size > self.capacity and self._blocks:
            _bid, victim = self._blocks.popitem(last=False)
            self._used -= victim.size
            self.evictions += 1
            evicted.append(victim)
        self._blocks[block.block_id] = block
        self._used += block.size
        self.insertions += 1
        return evicted

    def evict(self, block_id: str) -> Optional[Block]:
        """Drop a specific block (None if absent)."""
        block = self._blocks.pop(block_id, None)
        if block is not None:
            self._used -= block.size
            self.evictions += 1
        return block

    def clear(self) -> List[Block]:
        """Empty the cache, returning everything that was cached."""
        blocks = list(self._blocks.values())
        self._blocks.clear()
        self._used = 0.0
        self.evictions += len(blocks)
        return blocks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BlockCache {self.node_id} {len(self._blocks)} blocks "
            f"{self._used:.0f}/{self.capacity:.0f} B>"
        )
