"""DataNode: the per-worker block inventory.

Each worker node runs one DataNode.  It stores block replicas, enforces its
storage capacity, and reports its inventory to the NameNode — the periodic
block-report mechanism, collapsed here to a synchronous call since the
simulated NameNode and DataNodes share one process.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import CapacityError
from repro.hdfs.blocks import Block

__all__ = ["DataNode"]


class DataNode:
    """Block storage bound to one worker node."""

    def __init__(self, node_id: str, capacity: float):
        if capacity <= 0:
            raise CapacityError(f"{node_id}: storage capacity must be positive")
        self.node_id = node_id
        self.capacity = capacity
        self._blocks: Dict[str, Block] = {}
        self._used = 0.0

    # ---------------------------------------------------------------- storage
    @property
    def used(self) -> float:
        """Bytes currently stored."""
        return self._used

    @property
    def free(self) -> float:
        """Bytes of remaining capacity."""
        return self.capacity - self._used

    @property
    def block_count(self) -> int:
        """Number of replicas stored here."""
        return len(self._blocks)

    def holds(self, block_id: str) -> bool:
        """True when a replica of ``block_id`` lives on this node."""
        return block_id in self._blocks

    def store(self, block: Block) -> None:
        """Write one replica of ``block``.

        Storing a block twice is idempotent (HDFS never keeps two replicas of
        one block on the same DataNode).
        """
        if block.block_id in self._blocks:
            return
        if block.size > self.free:
            raise CapacityError(
                f"{self.node_id}: block {block.block_id} ({block.size:.0f} B) "
                f"exceeds free space ({self.free:.0f} B)"
            )
        self._blocks[block.block_id] = block
        self._used += block.size

    def evict(self, block_id: str) -> None:
        """Drop the local replica of ``block_id`` (no-op if absent)."""
        block = self._blocks.pop(block_id, None)
        if block is not None:
            self._used -= block.size

    def block(self, block_id: str) -> "Block | None":
        """The stored :class:`Block` object, or None when absent."""
        return self._blocks.get(block_id)

    def block_report(self) -> List[str]:
        """Ids of all replicas stored here (insertion order)."""
        return list(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DataNode {self.node_id} blocks={len(self._blocks)} used={self._used:.0f}B>"
