"""HDFS facade: ingest files, place replicas, answer locality queries."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import IdFactory
from repro.common.units import BlockSpec
from repro.cluster.cluster import Cluster
from repro.hdfs.blocks import Block
from repro.hdfs.cache import DEFAULT_CACHE_BANDWIDTH, BlockCache
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import FileEntry, NameNode
from repro.hdfs.placement import PlacementPolicy, RandomPlacement

__all__ = ["HDFS"]


class HDFS:
    """The distributed file system serving the simulated cluster.

    One DataNode per worker node; a single NameNode.  ``ingest`` cuts a file
    into blocks, asks the placement policy for replica nodes, writes the
    replicas and registers everything with the NameNode.

    Parameters
    ----------
    cluster:
        Supplies node ids, storage capacity, and the rack topology.
    block_spec:
        Block size and default replication (defaults: 128 MB x3, §VI-A).
    placement:
        Replica placement policy (default: uniform random, the paper's model).
    rng:
        Random generator used exclusively for placement decisions.
    storage_per_node:
        DataNode capacity in bytes (defaults to the paper's 384 GB SSD).
    cache_per_node:
        In-memory block cache per node in bytes (0 disables caching).
    cache_bandwidth:
        Memory-read bandwidth of the caches in bytes/second.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        block_spec: Optional[BlockSpec] = None,
        placement: Optional[PlacementPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        storage_per_node: float = 384 * 2.0**30,
        cache_per_node: float = 0.0,
        cache_bandwidth: float = DEFAULT_CACHE_BANDWIDTH,
    ):
        self.cluster = cluster
        self.block_spec = block_spec or BlockSpec()
        self.placement = placement or RandomPlacement()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.namenode = NameNode()
        self.datanodes: Dict[str, DataNode] = {
            node_id: DataNode(node_id, capacity=storage_per_node)
            for node_id in cluster.node_ids
        }
        self.caches: Dict[str, BlockCache] = {
            node_id: BlockCache(node_id, cache_per_node, bandwidth=cache_bandwidth)
            for node_id in cluster.node_ids
        }
        self._ids = IdFactory(width=6)

    # ------------------------------------------------------------------ ingest
    def ingest(self, path: str, size: float, *, popularity: float = 1.0) -> FileEntry:
        """Store a new file of ``size`` bytes and return its metadata entry."""
        if size <= 0:
            raise ConfigurationError(f"file size must be positive, got {size}")
        blocks: List[Block] = []
        remaining = float(size)
        index = 0
        while remaining > 0:
            block_size = min(self.block_spec.size, remaining)
            blocks.append(
                Block(self._ids.next("block"), path=path, index=index, size=block_size)
            )
            remaining -= block_size
            index += 1
        entry = FileEntry(path=path, size=float(size), blocks=blocks, popularity=popularity)
        self.namenode.register_file(entry)
        node_ids = self.cluster.node_ids
        replicas = self.placement.replicas_for(self.block_spec.replication, popularity)
        for block in blocks:
            chosen = self.placement.choose_nodes(
                block, replicas, node_ids, self.cluster.topology, self.rng
            )
            for node_id in chosen:
                self.datanodes[node_id].store(block)
                self.namenode.add_replica(block.block_id, node_id)
        return entry

    # ----------------------------------------------------------------- queries
    def block_locations(self, path: str) -> Dict[Block, List[str]]:
        """Every block of ``path`` with its replica node ids."""
        return dict(self.namenode.locate_file(path))

    def is_local(self, block_id: str, node_id: str) -> bool:
        """True when ``node_id`` holds a disk replica of ``block_id``."""
        return node_id in self.namenode.locations(block_id)

    def can_serve_locally(self, block_id: str, node_id: str) -> bool:
        """True when ``node_id`` holds the block on disk *or* in cache —
        the paper's locality test (§III-A)."""
        return node_id in self.namenode.serving_locations(block_id)

    # ----------------------------------------------------------------- caching
    @property
    def caching_enabled(self) -> bool:
        """True when nodes have non-zero cache capacity."""
        return any(c.capacity > 0 for c in self.caches.values())

    def cache_block(self, node_id: str, block: Block) -> bool:
        """Cache a block on ``node_id``, registering/deregistering with the
        NameNode.  Returns True when the block ended up cached."""
        cache = self.caches[node_id]
        evicted = cache.insert(block)
        for victim in evicted:
            self.namenode.remove_cached_replica(victim.block_id, node_id)
        if cache.holds(block.block_id):
            self.namenode.add_cached_replica(block.block_id, node_id)
            return True
        return False

    def local_read_time(self, block: Block, node_id: str) -> float:
        """Seconds to read ``block`` on ``node_id`` from its fastest local
        tier: cache (memory bandwidth) if cached, else SSD.

        Touches the cache's LRU state, so repeated hot reads stay resident.
        """
        cache = self.caches[node_id]
        if cache.touch(block.block_id):
            return cache.read_time(block.size)
        return self.cluster.node(node_id).local_read_time(block.size)

    def cache_stats(self) -> Dict[str, float]:
        """Aggregate cache effectiveness counters across the cluster."""
        hits = sum(c.hits for c in self.caches.values())
        misses = sum(c.misses for c in self.caches.values())
        total = hits + misses
        return {
            "hits": float(hits),
            "misses": float(misses),
            "hit_rate": hits / total if total else 0.0,
            "cached_blocks": float(sum(c.block_count for c in self.caches.values())),
            "evictions": float(sum(c.evictions for c in self.caches.values())),
        }

    def delete(self, path: str) -> None:
        """Remove a file: NameNode metadata and every DataNode replica."""
        entry = self.namenode.file(path)
        for block in entry.blocks:
            for node_id in self.namenode.locations(block.block_id):
                self.datanodes[node_id].evict(block.block_id)
        self.namenode.delete(path)

    def rebalance_reports(self) -> None:
        """Re-sync the NameNode from full DataNode block reports."""
        for node_id, datanode in self.datanodes.items():
            self.namenode.apply_block_report(node_id, datanode.block_report())

    def storage_utilization(self) -> Dict[str, float]:
        """Fraction of capacity used per node (load-balance diagnostics)."""
        return {
            node_id: dn.used / dn.capacity for node_id, dn in self.datanodes.items()
        }
