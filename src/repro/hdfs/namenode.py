"""NameNode: directory tree, file → blocks, block → replica locations.

This is the component Custody queries at job submission: *"By inquiring the
NameNode, Custody acquires the list of relevant DataNodes that store the
input data blocks of jobs in an application"* (§IV-C).  The model keeps the
full directory tree so path semantics (create, exists, list, delete) behave
like a filesystem rather than a flat dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.hdfs.blocks import Block

__all__ = ["FileEntry", "NameNode"]


def _normalize(path: str) -> str:
    """Canonical absolute path: leading slash, no duplicate or trailing slashes."""
    if not path or not path.startswith("/"):
        raise ConfigurationError(f"paths must be absolute, got {path!r}")
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts)


@dataclass
class FileEntry:
    """NameNode metadata for one file."""

    path: str
    size: float
    blocks: List[Block] = field(default_factory=list)
    popularity: float = 1.0

    @property
    def block_count(self) -> int:
        """Blocks the file is split into."""
        return len(self.blocks)


class NameNode:
    """Central metadata service of the simulated HDFS."""

    def __init__(self) -> None:
        self._files: Dict[str, FileEntry] = {}
        self._dirs: Set[str] = {"/"}
        #: block id → set of node ids currently holding a disk replica
        self._replicas: Dict[str, Set[str]] = {}
        #: block id → set of node ids holding an in-memory cached copy
        self._cached: Dict[str, Set[str]] = {}
        self._block_owner: Dict[str, str] = {}  # block id → file path
        #: Metadata epoch: bumped on every mutation that can change any
        #: block's serving locations (replica add/loss, cache churn, file
        #: create/delete, block reports).  Memoised replica lookups — the
        #: manager's per-round NameNode cache — are valid exactly while this
        #: number is unchanged.
        self.version = 0

    # -------------------------------------------------------------- directories
    def mkdirs(self, path: str) -> None:
        """Create a directory and all ancestors (idempotent)."""
        path = _normalize(path)
        if path in self._files:
            raise ConfigurationError(f"{path!r} exists and is a file")
        parts = [p for p in path.split("/") if p]
        cur = ""
        for part in parts:
            cur += "/" + part
            if cur in self._files:
                raise ConfigurationError(f"{cur!r} exists and is a file")
            self._dirs.add(cur)

    def is_dir(self, path: str) -> bool:
        """True when ``path`` is an existing directory."""
        return _normalize(path) in self._dirs

    def exists(self, path: str) -> bool:
        """True when ``path`` is an existing file or directory."""
        path = _normalize(path)
        return path in self._files or path in self._dirs

    def listdir(self, path: str) -> List[str]:
        """Immediate children of directory ``path`` (sorted)."""
        path = _normalize(path)
        if path not in self._dirs:
            raise ConfigurationError(f"{path!r} is not a directory")
        prefix = path if path != "/" else ""
        children: Set[str] = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate == path or not candidate.startswith(prefix + "/"):
                continue
            rest = candidate[len(prefix) + 1 :]
            children.add(rest.split("/", 1)[0])
        return sorted(children)

    # -------------------------------------------------------------------- files
    def register_file(self, entry: FileEntry) -> None:
        """Record a new file's metadata (blocks must already be cut)."""
        path = _normalize(entry.path)
        if path in self._files or path in self._dirs:
            raise ConfigurationError(f"{path!r} already exists")
        parent = path.rsplit("/", 1)[0] or "/"
        self.mkdirs(parent)
        entry.path = path
        self._files[path] = entry
        for block in entry.blocks:
            if block.block_id in self._block_owner:
                raise ConfigurationError(f"duplicate block id {block.block_id!r}")
            self._block_owner[block.block_id] = path
            self._replicas.setdefault(block.block_id, set())
        self.version += 1

    def file(self, path: str) -> FileEntry:
        """Metadata of file ``path``."""
        path = _normalize(path)
        try:
            return self._files[path]
        except KeyError:
            raise ConfigurationError(f"no such file {path!r}") from None

    def files(self) -> List[FileEntry]:
        """All registered files (insertion order)."""
        return list(self._files.values())

    def delete(self, path: str) -> None:
        """Remove a file and its replica records."""
        path = _normalize(path)
        entry = self._files.pop(path, None)
        if entry is None:
            raise ConfigurationError(f"no such file {path!r}")
        for block in entry.blocks:
            self._replicas.pop(block.block_id, None)
            self._cached.pop(block.block_id, None)
            self._block_owner.pop(block.block_id, None)
        self.version += 1

    # ----------------------------------------------------------------- replicas
    def add_replica(self, block_id: str, node_id: str) -> None:
        """Record that ``node_id`` now holds a replica of ``block_id``."""
        if block_id not in self._block_owner:
            raise ConfigurationError(f"unknown block {block_id!r}")
        self._replicas[block_id].add(node_id)
        self.version += 1

    def remove_replica(self, block_id: str, node_id: str) -> None:
        """Record loss/eviction of one replica."""
        nodes = self._replicas.get(block_id)
        if nodes is not None:
            nodes.discard(node_id)
            self.version += 1

    def locations(self, block_id: str) -> List[str]:
        """Node ids holding a replica of ``block_id`` (sorted, deterministic)."""
        nodes = self._replicas.get(block_id)
        if nodes is None:
            raise ConfigurationError(f"unknown block {block_id!r}")
        return sorted(nodes)

    def add_cached_replica(self, block_id: str, node_id: str) -> None:
        """Record that ``node_id`` holds an in-memory cached copy."""
        if block_id not in self._block_owner:
            raise ConfigurationError(f"unknown block {block_id!r}")
        self._cached.setdefault(block_id, set()).add(node_id)
        self.version += 1

    def remove_cached_replica(self, block_id: str, node_id: str) -> None:
        """Record eviction of a cached copy (no-op if absent)."""
        nodes = self._cached.get(block_id)
        if nodes is not None:
            nodes.discard(node_id)
            self.version += 1

    def cached_locations(self, block_id: str) -> List[str]:
        """Node ids holding a cached copy of ``block_id`` (sorted)."""
        if block_id not in self._block_owner:
            raise ConfigurationError(f"unknown block {block_id!r}")
        return sorted(self._cached.get(block_id, ()))

    def serving_locations(self, block_id: str) -> List[str]:
        """All nodes that can serve ``block_id`` locally: disk ∪ cache.

        This is the paper's ``E_u = {D_x : stores or caches D_x}`` — what
        task schedulers and the Custody allocator consult for locality.
        """
        nodes = self._replicas.get(block_id)
        if nodes is None:
            raise ConfigurationError(f"unknown block {block_id!r}")
        return sorted(nodes | self._cached.get(block_id, set()))

    def locate_file(self, path: str) -> List[Tuple[Block, List[str]]]:
        """The Custody query: every block of ``path`` with its replica nodes."""
        entry = self.file(path)
        return [(block, self.locations(block.block_id)) for block in entry.blocks]

    def replication_of(self, block_id: str) -> int:
        """Current replica count of ``block_id``."""
        return len(self.locations(block_id))

    # ------------------------------------------------------------------ reports
    def apply_block_report(self, node_id: str, block_ids: List[str]) -> None:
        """Reconcile a DataNode's full inventory (the HDFS block report)."""
        reported = set(block_ids)
        for block_id, nodes in self._replicas.items():
            if block_id in reported:
                nodes.add(node_id)
            else:
                nodes.discard(node_id)
        self.version += 1

    def stats(self) -> Dict[str, float]:
        """Aggregate metadata statistics (for reports and sanity tests)."""
        total_blocks = len(self._block_owner)
        total_replicas = sum(len(v) for v in self._replicas.values())
        return {
            "files": float(len(self._files)),
            "directories": float(len(self._dirs)),
            "blocks": float(total_blocks),
            "replicas": float(total_replicas),
            "cached_replicas": float(sum(len(v) for v in self._cached.values())),
            "mean_replication": (total_replicas / total_blocks) if total_blocks else 0.0,
        }

    def pick_source(self, block_id: str, reader_node: str, preferred: Optional[str] = None) -> str:
        """Choose the replica a remote reader fetches from.

        Prefers ``preferred`` when it holds a replica, else the
        lexicographically first holder that is not the reader itself (the
        reader-local case should be handled by the caller as a local read).
        Deterministic so experiment runs are reproducible.
        """
        holders = self.locations(block_id)
        if not holders:
            raise ConfigurationError(f"block {block_id!r} has no replicas")
        if preferred is not None and preferred in holders:
            return preferred
        for node in holders:
            if node != reader_node:
                return node
        return holders[0]
