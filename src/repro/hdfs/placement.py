"""Replica placement policies.

A policy answers two questions per block: *how many* replicas (usually the
configured replication level) and *on which nodes*.  Three policies:

* :class:`RandomPlacement` — uniform without replacement; the paper's model
  ("each data block typically has three replicas randomly distributed",
  §II) and the default for all headline experiments.
* :class:`RackAwarePlacement` — HDFS's default: first replica on a random
  node, second on a different rack, third on the second's rack.
* :class:`PopularityAwarePlacement` — Scarlett-style ([9], §VII): the replica
  count grows with the file's access popularity, eliminating hot spots.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cluster.topology import Topology
from repro.hdfs.blocks import Block

__all__ = [
    "PlacementPolicy",
    "RandomPlacement",
    "RackAwarePlacement",
    "PopularityAwarePlacement",
]


class PlacementPolicy(abc.ABC):
    """Strategy deciding replica count and replica locations for a block."""

    def replicas_for(self, replication: int, popularity: float) -> int:
        """Number of replicas to store; default: the configured level."""
        return replication

    @abc.abstractmethod
    def choose_nodes(
        self,
        block: Block,
        count: int,
        node_ids: Sequence[str],
        topology: Optional[Topology],
        rng: np.random.Generator,
    ) -> List[str]:
        """Pick ``count`` distinct node ids for the block's replicas."""

    @staticmethod
    def _check(count: int, node_ids: Sequence[str]) -> int:
        if not node_ids:
            raise ConfigurationError("no nodes available for placement")
        return min(count, len(node_ids))


class RandomPlacement(PlacementPolicy):
    """Uniformly random distinct nodes — the paper's storage model."""

    def choose_nodes(
        self,
        block: Block,
        count: int,
        node_ids: Sequence[str],
        topology: Optional[Topology],
        rng: np.random.Generator,
    ) -> List[str]:
        count = self._check(count, node_ids)
        picks = rng.choice(len(node_ids), size=count, replace=False)
        return [node_ids[int(i)] for i in picks]


class RackAwarePlacement(PlacementPolicy):
    """HDFS default: replica 1 anywhere, replica 2 off-rack, replica 3 with 2.

    Additional replicas (count > 3) fall back to uniform choice among nodes
    not yet holding the block.  Degrades gracefully on single-rack clusters.
    """

    def choose_nodes(
        self,
        block: Block,
        count: int,
        node_ids: Sequence[str],
        topology: Optional[Topology],
        rng: np.random.Generator,
    ) -> List[str]:
        count = self._check(count, node_ids)
        if topology is None:
            raise ConfigurationError("RackAwarePlacement requires a topology")
        chosen: List[str] = []
        first = node_ids[int(rng.integers(len(node_ids)))]
        chosen.append(first)
        if count >= 2:
            remote = [n for n in topology.nodes_outside(topology.rack_of(first)) if n in set(node_ids)]
            if remote:
                second = remote[int(rng.integers(len(remote)))]
            else:  # single rack: any other node
                others = [n for n in node_ids if n != first]
                if not others:
                    return chosen
                second = others[int(rng.integers(len(others)))]
            chosen.append(second)
        if count >= 3:
            same_as_second = [
                n
                for n in topology.nodes_in(topology.rack_of(chosen[1]))
                if n not in chosen and n in set(node_ids)
            ]
            pool = same_as_second or [n for n in node_ids if n not in chosen]
            if pool:
                chosen.append(pool[int(rng.integers(len(pool)))])
        while len(chosen) < count:
            pool = [n for n in node_ids if n not in chosen]
            if not pool:
                break
            chosen.append(pool[int(rng.integers(len(pool)))])
        return chosen


class PopularityAwarePlacement(RandomPlacement):
    """Scarlett-style popularity-proportional replication.

    ``replicas = clip(round(base * popularity), min_replicas, max_replicas)``
    where ``popularity`` is the expected concurrent-access count supplied by
    the workload (1.0 = accessed by one job at a time).  Placement itself is
    uniform random, as in Scarlett's storage-constrained mode.
    """

    def __init__(self, min_replicas: int = 1, max_replicas: int = 10):
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ConfigurationError(
                f"invalid replica bounds [{min_replicas}, {max_replicas}]"
            )
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas

    def replicas_for(self, replication: int, popularity: float) -> int:
        scaled = int(round(replication * max(popularity, 0.0)))
        return int(np.clip(scaled, self.min_replicas, self.max_replicas))
