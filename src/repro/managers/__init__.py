"""Cluster managers: the resource-sharing policies under comparison.

* :class:`StandaloneManager` — Spark standalone [13]: a static, data-unaware
  executor set per application, fixed for its lifetime.  The paper's
  baseline.
* :class:`YarnManager` — YARN-style [12] dynamic capacity pools: executor
  counts track demand, but the *choice* of executors ignores data.
* :class:`MesosManager` — Mesos-style [11] offer-based fine-grained sharing:
  idle executors are offered round-robin; data-aware task schedulers reject
  unhelpful offers, reproducing the repeated-rejection overhead of §II-A.
* :class:`CustodyManager` — the paper's contribution: allocation postponed
  to job submission, NameNode-informed demands, and the two-level
  data-aware procedure of :mod:`repro.core`.

:class:`AdmissionController` is an optional overload valve any manager can
carry: when pending demand outruns deliverable capacity (dead/suspected
nodes excluded), new jobs' allocation rounds are deferred until a re-check
finds headroom.
"""

from repro.managers.admission import AdmissionController
from repro.managers.base import ClusterManager
from repro.managers.custody import CustodyManager
from repro.managers.mesos import MesosManager
from repro.managers.standalone import StandaloneManager
from repro.managers.yarn import YarnManager

__all__ = [
    "AdmissionController",
    "ClusterManager",
    "CustodyManager",
    "MesosManager",
    "StandaloneManager",
    "YarnManager",
]
