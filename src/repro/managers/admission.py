"""Admission control: defer new jobs when demand outruns deliverable capacity.

Congestion collapse in a shared cluster is a control-plane failure mode:
when pending demand far exceeds what the (partially sick) cluster can
actually deliver, every new job triggers another allocation round that
reshuffles executors between already-starved applications — allocation
thrash that slows everyone and helps no one.

The :class:`AdmissionController` is the managers' overload valve.  On job
submission it compares total pending task demand against *deliverable*
slot capacity — executors on nodes the master believes alive and
unsuspected — and when demand exceeds ``factor ×`` capacity the job's
allocation round is **deferred**: the job still queues in its driver (work
is never dropped), but the manager does not reshuffle executors for it
until a periodic re-check finds headroom.  Sustained overload at re-check
time is counted as ``load_shed``; recovery drains every deferred job into
one coalesced round.

The controller is inert unless attached (``manager.admission``), schedules
an event only while deferrals are outstanding, and draws no randomness —
disabled, it cannot perturb a run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.events import AdmissionDecision
from repro.simulation.engine import EventHandle, Simulation

if TYPE_CHECKING:  # pragma: no cover
    from repro.managers.base import ClusterManager
    from repro.scheduling.driver import ApplicationDriver
    from repro.workload.job import Job

__all__ = ["AdmissionController"]


class AdmissionController:
    """Overload gate consulted by ``ClusterManager.admit_job``."""

    def __init__(
        self,
        sim: Simulation,
        *,
        factor: float = 4.0,
        retry_interval: float = 5.0,
    ):
        if factor <= 0:
            raise ConfigurationError(f"admission factor must be positive, got {factor}")
        if retry_interval <= 0:
            raise ConfigurationError(
                f"retry_interval must be positive, got {retry_interval}"
            )
        self.sim = sim
        self.factor = factor
        self.retry_interval = retry_interval
        self.manager: Optional["ClusterManager"] = None
        self._deferred: List[Tuple["ApplicationDriver", "Job"]] = []
        self._retry_handle: Optional[EventHandle] = None
        self.admission_deferred = 0
        self.load_shed = 0
        self.admitted_after_defer = 0

    def bind(self, manager: "ClusterManager") -> None:
        """Attach to the owning manager (needed for demand/capacity views)."""
        self.manager = manager
        decisions = manager.metrics.counter(
            "admission_decisions_total",
            "Admission-control outcomes (deferred / shed re-checks / "
            "admitted-after-defer).",
            ("manager", "decision"),
        )
        self._m_decisions = {
            decision: decisions.labels(manager=manager.name, decision=decision)
            for decision in ("deferred", "shed", "admitted")
        }

    @property
    def deferred_jobs(self) -> int:
        """Jobs currently waiting for an allocation round."""
        return len(self._deferred)

    # ------------------------------------------------------------ measurement
    def demand_and_capacity(self) -> Tuple[int, int]:
        """(pending task demand, deliverable slot capacity), master's view.

        Demand sums every driver's outstanding tasks (the submitted job's
        tasks are already enqueued when the admission check runs).
        Capacity counts slots on executors whose nodes the master believes
        alive *and* unsuspected — dead, partitioned, flapping or gray nodes
        do not count toward what the cluster can deliver.
        """
        manager = self.manager
        assert manager is not None, "AdmissionController.bind() first"
        pending = sum(
            d.outstanding_tasks for d in manager.drivers.values()
        )
        injector = manager.fault_injector
        detector = manager.detector
        capacity = 0
        for executor in manager.cluster.executors:
            node = executor.node_id
            if injector is not None:
                if detector is not None:
                    if not detector.is_alive(node) or detector.is_suspected(node):
                        continue
                    if not executor.healthy and not injector.node_down(node):
                        continue  # individually-crashed executor
                elif not injector.node_reachable(node) or not executor.healthy:
                    continue
            capacity += executor.slots
        return pending, capacity

    def overloaded(self) -> Tuple[bool, int, int]:
        """(is overloaded, pending, capacity) at this instant."""
        pending, capacity = self.demand_and_capacity()
        return pending > self.factor * capacity, pending, capacity

    # ------------------------------------------------------------- admission
    def admit(self, driver: "ApplicationDriver", job: "Job") -> bool:
        """Gate one submission; False defers its allocation round."""
        over, pending, capacity = self.overloaded()
        if not over:
            return True
        self.admission_deferred += 1
        self._deferred.append((driver, job))
        self._record("deferred", driver.app_id, job.job_id, pending, capacity)
        self._arm_retry()
        return False

    def _arm_retry(self) -> None:
        if self._retry_handle is None or not self._retry_handle.pending:
            self._retry_handle = self.sim.schedule(self.retry_interval, self._retry)

    def _retry(self) -> None:
        """Periodic re-check: drain on recovery, count sustained overload."""
        self._retry_handle = None
        if not self._deferred:
            return
        over, pending, capacity = self.overloaded()
        manager = self.manager
        assert manager is not None
        if over:
            # Still overloaded: the deferral stands — that *is* the shed
            # decision (work stays queued instead of thrashing allocations).
            self.load_shed += 1
            self._record("shed", "", "", pending, capacity, jobs=len(self._deferred))
            self._arm_retry()
            return
        batch, self._deferred = self._deferred, []
        for driver, job in batch:
            self.admitted_after_defer += 1
            self._record("admitted", driver.app_id, job.job_id, pending, capacity)
        # One coalesced round serves the whole drained batch.
        manager._schedule_round()

    # --------------------------------------------------------------- tracing
    def _record(
        self,
        decision: str,
        app_id: str,
        job_id: str,
        pending: int,
        capacity: int,
        **extra,
    ) -> None:
        manager = self.manager
        assert manager is not None
        self._m_decisions[decision].inc()
        if manager.timeline is not None:
            manager.timeline.record(
                f"admission.{decision}",
                job_id or manager.name,
                app=app_id,
                pending=pending,
                capacity=capacity,
                **extra,
            )
        if manager.tracer.enabled:
            attrs = {
                "app": app_id,
                "job": job_id,
                "decision": decision,
                "pending": pending,
                "capacity": capacity,
            }
            attrs.update(extra)
            manager.tracer.emit(
                AdmissionDecision(
                    self.sim.now, track=f"manager:{manager.name}", attrs=attrs
                )
            )
