"""Shared cluster-manager machinery.

A manager owns the free-executor pool and decides which application gets
which executor; drivers call back into it on job submission, job completion
and executor idleness.  Subclasses override the four hooks; the base class
provides the grant/revoke plumbing with invariant checks and timeline
records, plus the equal-share quota every policy in the paper uses.
"""

from __future__ import annotations

import abc
import math
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.executor import Executor
from repro.common.errors import AllocationError, ConfigurationError
from repro.obs.events import AllocationRound, ExecutorGrant
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.driver import ApplicationDriver

__all__ = ["ClusterManager"]


class ClusterManager(abc.ABC):
    """Base class for all resource-sharing policies."""

    #: Human-readable policy name, shown in reports.
    name: str = "abstract"

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        *,
        num_apps: int,
        weights: Optional[Dict[str, float]] = None,
        timeline: Optional[Timeline] = None,
        tracer: Optional[Tracer] = None,
        coalesce: bool = False,
        counters=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if num_apps < 1:
            raise ConfigurationError(f"num_apps must be >= 1, got {num_apps}")
        if weights is not None:
            if any(w <= 0 for w in weights.values()):
                raise ConfigurationError("application weights must be positive")
            if not weights:
                weights = None
        self.sim = sim
        self.cluster = cluster
        self.num_apps = num_apps
        self.weights = weights
        self.timeline = timeline
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.drivers: Dict[str, "ApplicationDriver"] = {}
        self.allocation_rounds = 0
        #: Round coalescing: when True, demand-changing hooks defer one
        #: allocation round to the end of the current instant instead of
        #: running one round per hook (library default False = the seed's
        #: synchronous semantics; the experiment runner turns it on).
        self.coalesce = coalesce
        #: optional :class:`repro.metrics.collector.PerfCounters`
        self.counters = counters
        #: label-aware aggregation registry (NULL_METRICS when metering is
        #: off).  Instruments are pre-bound here once so hot paths pay one
        #: method call, no dict lookups — and a no-op when disabled.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_rounds = self.metrics.counter(
            "alloc_rounds_total", "Allocation rounds executed.", ("manager",)
        ).labels(manager=self.name)
        self._m_rounds_coalesced = self.metrics.counter(
            "alloc_rounds_coalesced_total",
            "Same-instant allocation-round triggers absorbed by coalescing.",
            ("manager",),
        ).labels(manager=self.name)
        _grants = self.metrics.counter(
            "executor_grants_total",
            "Executor grants attempted, by outcome (ok / dead node).",
            ("manager", "outcome"),
        )
        self._m_grants_ok = _grants.labels(manager=self.name, outcome="ok")
        self._m_grants_dead = _grants.labels(manager=self.name, outcome="dead")
        self._round_pending = False
        #: set by the experiment runner under fault injection; None otherwise.
        #: The manager's liveness view goes through these — a detector gives
        #: the master a heartbeat-delayed (stale) picture of the cluster.
        self.fault_injector = None
        self.detector = None
        #: grants that landed on a node the master wrongly believed alive
        self.failed_launches = 0
        #: optional :class:`repro.managers.admission.AdmissionController`;
        #: None (the default) admits every job unconditionally.
        self.admission = None
        #: optional :class:`repro.managers.recovery.RecoveryCoordinator`;
        #: None (the default) = the immortal seed control plane.
        self.recovery = None

    # ------------------------------------------------------------------ quota
    @property
    def quota(self) -> int:
        """σ_i under equal sharing — each application's executor share."""
        return max(1, self.cluster.config.total_executors // self.num_apps)

    def quota_of(self, app_id: str) -> int:
        """σ_i for ``app_id`` — weighted share when weights are configured.

        Weighted max-min: quotas are proportional to the application's
        weight over the sum of all configured weights (unknown apps weigh
        1.0); always at least one executor.
        """
        if self.weights is None:
            return self.quota
        total_weight = sum(self.weights.values())
        weight = self.weights.get(app_id, 1.0)
        share = self.cluster.config.total_executors * weight / total_weight
        return max(1, int(share))

    def needed_executors(self, driver: "ApplicationDriver") -> int:
        """Executors required to serve a driver's outstanding tasks."""
        slots = self.cluster.config.executor_slots
        return math.ceil(driver.outstanding_tasks / slots) if slots else 0

    # ------------------------------------------------------------ registration
    def register_driver(self, driver: "ApplicationDriver") -> None:
        """Admit an application; subclasses may allocate immediately."""
        if driver.app_id in self.drivers:
            raise AllocationError(f"app {driver.app_id} registered twice")
        if driver.manager is not None and driver.manager is not self:
            raise AllocationError(f"driver {driver.app_id} already has a manager")
        if self.recovery is not None and not self.recovery.available:
            # The control plane is down: the registration queues and
            # completes when reconciliation ends.
            self.recovery.queue_registration(driver)
            return
        self.drivers[driver.app_id] = driver
        driver.manager = self
        if self.timeline is not None:
            self.timeline.record("app.register", driver.app_id, manager=self.name)
        if self.recovery is not None:
            self.recovery.note_register(driver.app_id)
        self._on_register(driver)

    # ---------------------------------------------------------------- plumbing
    def grant(self, driver: "ApplicationDriver", executor: Executor) -> bool:
        """Allocate a free executor to an application.

        Returns True on success.  Under fault injection the master's view is
        stale: a grant can land on an executor whose node has actually died
        or is partitioned away — the launch fails, the failure is reported
        to the detector (so the master stops believing in the node), and the
        grant returns False instead of raising.
        """
        if self.recovery is not None and not self.recovery.available:
            # A dead control plane cannot hand out leases (offer paths can
            # reach here without an allocation round, e.g. Mesos idle
            # re-offers).
            self.recovery.note_grant_refused()
            return False
        injector = self.fault_injector
        if injector is not None and (
            not executor.healthy or not injector.node_reachable(executor.node_id)
        ):
            self.failed_launches += 1
            self._m_grants_dead.inc()
            if self.detector is not None:
                self.detector.report_failure(executor.node_id)
            if self.timeline is not None:
                self.timeline.record(
                    "executor.grant.dead",
                    executor.executor_id,
                    app=driver.app_id,
                    node=executor.node_id,
                )
            if self.tracer.enabled:
                self.tracer.emit(
                    ExecutorGrant(
                        self.sim.now,
                        track=executor.node_id,
                        lane=executor.executor_id,
                        attrs={
                            "app": driver.app_id,
                            "executor": executor.executor_id,
                            "node": executor.node_id,
                            "ok": False,
                        },
                    )
                )
            return False
        executor.allocate(driver.app_id)
        self._m_grants_ok.inc()
        self._note_pool_change(executor)
        if self.timeline is not None:
            self.timeline.record(
                "executor.grant",
                executor.executor_id,
                app=driver.app_id,
                node=executor.node_id,
            )
        if self.tracer.enabled:
            self.tracer.emit(
                ExecutorGrant(
                    self.sim.now,
                    track=executor.node_id,
                    lane=executor.executor_id,
                    attrs={
                        "app": driver.app_id,
                        "executor": executor.executor_id,
                        "node": executor.node_id,
                        "ok": True,
                    },
                )
            )
        if self.recovery is not None:
            self.recovery.note_grant(executor.executor_id, driver.app_id)
        driver.attach_executor(executor)
        return True

    def revoke_idle(self, driver: "ApplicationDriver", executor: Executor) -> bool:
        """Take an idle executor back from an application; False if busy."""
        if executor.owner != driver.app_id:
            raise AllocationError(
                f"{executor.executor_id} is not owned by {driver.app_id}"
            )
        if executor.running_tasks:
            return False
        if self.recovery is not None and not self.recovery.available:
            return False  # revocation is a manager decision; it is down
        driver.detach_executor(executor)
        executor.release()
        if self.recovery is not None:
            self.recovery.note_release(executor.executor_id, driver.app_id)
        self._note_pool_change(executor)
        if self.timeline is not None:
            self.timeline.record(
                "executor.release", executor.executor_id, app=driver.app_id
            )
        if self.tracer.enabled:
            self.tracer.instant(
                "executor.release",
                "manager",
                track=executor.node_id,
                lane=executor.executor_id,
                app=driver.app_id,
            )
        return True

    # --------------------------------------------------------- round scheduling
    @property
    def round_pending(self) -> bool:
        """True while a coalesced allocation round awaits the instant flush."""
        return self._round_pending

    def _schedule_round(self) -> None:
        """Run (or coalesce) one allocation round.

        Synchronous managers (``coalesce=False``) run the round inline —
        grants land before the hook returns, exactly the seed behaviour.
        With coalescing on, the first trigger at an instant defers one round
        via :meth:`Simulation.defer`; further same-instant triggers are
        absorbed (counted as ``alloc_rounds_coalesced``), so N job
        boundaries cost one round.

        Every manager (and the admission controller's re-check timer)
        routes allocation through here, so this single gate stalls the
        whole control plane while a crashed manager is down.
        """
        if self.recovery is not None and not self.recovery.rounds_enabled:
            self.recovery.note_round_stalled()
            return
        if not self.coalesce:
            self._run_round()
            return
        if self._round_pending:
            if self.counters is not None:
                self.counters.alloc_rounds_coalesced += 1
            self._m_rounds_coalesced.inc()
            return
        self._round_pending = True
        self.sim.defer(("alloc-round", id(self)), self._flush_round)

    def _flush_round(self) -> None:
        self._round_pending = False
        self._run_round()

    def _run_round(self) -> None:
        """Execute one allocation pass, timing it into the perf counters."""
        if self.recovery is not None and not self.recovery.rounds_enabled:
            # Direct callers (Mesos offer retry) bypass _schedule_round;
            # the disjoint gates never double-count a stalled trigger.
            self.recovery.note_round_stalled()
            return
        self._m_rounds.inc()
        if self.counters is None:
            self._allocation_round()
            return
        start = perf_counter()
        self._allocation_round()
        self.counters.alloc_rounds += 1
        self.counters.alloc_seconds += perf_counter() - start

    def _allocation_round(self) -> None:
        """Subclass hook: the policy's allocation pass (one round)."""

    def _note_pool_change(self, executor: Executor) -> None:
        """Subclass hook: ``executor`` just entered or left the free pool."""

    def trace_round(self, **attrs) -> None:
        """Emit one :class:`AllocationRound` event for the pass just run.

        Subclasses call this at the end of their allocation entry point with
        their policy-specific decision detail; the round ordinal and policy
        name are filled in here.  No-op while tracing is off.
        """
        if not self.tracer.enabled:
            return
        attrs.setdefault("round", self.allocation_rounds)
        attrs.setdefault("manager", self.name)
        self.tracer.emit(
            AllocationRound(self.sim.now, track=f"manager:{self.name}", attrs=attrs)
        )
        self.tracer.counter(
            "alloc.rounds",
            "manager",
            value=float(self.allocation_rounds),
            track=f"manager:{self.name}",
        )

    def free_pool(self) -> List[Executor]:
        """Free executors *as the master believes them* (creation order).

        Without fault injection this is ground truth.  With an injector but
        no detector the master is omniscient about liveness yet cannot reach
        partitioned nodes.  With a detector the view is heartbeat-delayed: a
        just-died node's executors still look allocatable until the timeout
        expires (grants on them fail, see :meth:`grant`), and a recovered
        node only re-enters the pool once believed alive again.
        """
        injector = self.fault_injector
        if injector is None:
            return self.cluster.free_executors()
        detector = self.detector
        if detector is None:
            return [
                e
                for e in self.cluster.free_executors()
                if injector.node_reachable(e.node_id)
            ]
        pool = [
            e
            for e in self.cluster.executors
            if e.is_free
            and detector.is_alive(e.node_id)
            and (e.healthy or injector.node_down(e.node_id))
        ]
        # Gray-failure deprioritisation: executors on *suspected* nodes sink
        # to the back of the pool (stable, so order within each class is
        # unchanged).  The fixed-window detector never suspects, so this is
        # the identity ordering unless the adaptive detector is in play.
        pool.sort(key=lambda e: detector.is_suspected(e.node_id))
        return pool

    # --------------------------------------------------------------- admission
    def attach_admission(self, controller) -> None:
        """Install an :class:`~repro.managers.admission.AdmissionController`."""
        controller.bind(self)
        self.admission = controller

    # ---------------------------------------------------------------- recovery
    def attach_recovery(self, coordinator) -> None:
        """Install a :class:`~repro.managers.recovery.RecoveryCoordinator`."""
        coordinator.bind(self)
        self.recovery = coordinator

    def admit_job(self, driver: "ApplicationDriver", job: Job) -> bool:
        """Overload gate consulted by job-submission hooks.

        ``True`` (always, when no controller is attached) lets the hook
        trigger its allocation round; ``False`` defers the round — the job
        stays queued in its driver and the controller re-checks capacity
        on a timer, draining deferred jobs into one coalesced round.
        """
        if self.admission is None:
            return True
        return self.admission.admit(driver, job)

    # -------------------------------------------------------------------- hooks
    def on_executors_changed(self) -> None:
        """Fault hook: cluster membership changed (crash/restart/heal).

        Subclasses react by re-running their allocation pass so displaced
        work finds new executors; the base implementation does nothing.
        """
    def on_demand_changed(self, driver: "ApplicationDriver") -> None:
        """A driver's demand resurfaced outside the job/stage flow.

        Retry backoff hides a task from ``outstanding_tasks``; if the
        manager reclaimed the driver's executors during that window, the
        requeued task has nowhere to run and nothing left to trigger a
        grant.  Default: treat it like a membership change and re-run the
        allocation pass.
        """
        self.on_executors_changed()

    def _on_register(self, driver: "ApplicationDriver") -> None:
        """Subclass hook: called after an application registers."""

    def on_job_submitted(self, driver: "ApplicationDriver", job: Job) -> None:
        """Subclass hook: a driver accepted a new job."""

    def on_job_finished(self, driver: "ApplicationDriver", job: Job) -> None:
        """Subclass hook: a driver completed a job."""

    def on_executor_idle(self, driver: "ApplicationDriver", executor: Executor) -> None:
        """Subclass hook: an owned executor's last running task finished."""
