"""Shared cluster-manager machinery.

A manager owns the free-executor pool and decides which application gets
which executor; drivers call back into it on job submission, job completion
and executor idleness.  Subclasses override the four hooks; the base class
provides the grant/revoke plumbing with invariant checks and timeline
records, plus the equal-share quota every policy in the paper uses.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.executor import Executor
from repro.common.errors import AllocationError, ConfigurationError
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.driver import ApplicationDriver

__all__ = ["ClusterManager"]


class ClusterManager(abc.ABC):
    """Base class for all resource-sharing policies."""

    #: Human-readable policy name, shown in reports.
    name: str = "abstract"

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        *,
        num_apps: int,
        weights: Optional[Dict[str, float]] = None,
        timeline: Optional[Timeline] = None,
    ):
        if num_apps < 1:
            raise ConfigurationError(f"num_apps must be >= 1, got {num_apps}")
        if weights is not None:
            if any(w <= 0 for w in weights.values()):
                raise ConfigurationError("application weights must be positive")
            if not weights:
                weights = None
        self.sim = sim
        self.cluster = cluster
        self.num_apps = num_apps
        self.weights = weights
        self.timeline = timeline
        self.drivers: Dict[str, "ApplicationDriver"] = {}
        self.allocation_rounds = 0

    # ------------------------------------------------------------------ quota
    @property
    def quota(self) -> int:
        """σ_i under equal sharing — each application's executor share."""
        return max(1, self.cluster.config.total_executors // self.num_apps)

    def quota_of(self, app_id: str) -> int:
        """σ_i for ``app_id`` — weighted share when weights are configured.

        Weighted max-min: quotas are proportional to the application's
        weight over the sum of all configured weights (unknown apps weigh
        1.0); always at least one executor.
        """
        if self.weights is None:
            return self.quota
        total_weight = sum(self.weights.values())
        weight = self.weights.get(app_id, 1.0)
        share = self.cluster.config.total_executors * weight / total_weight
        return max(1, int(share))

    def needed_executors(self, driver: "ApplicationDriver") -> int:
        """Executors required to serve a driver's outstanding tasks."""
        slots = self.cluster.config.executor_slots
        return math.ceil(driver.outstanding_tasks / slots) if slots else 0

    # ------------------------------------------------------------ registration
    def register_driver(self, driver: "ApplicationDriver") -> None:
        """Admit an application; subclasses may allocate immediately."""
        if driver.app_id in self.drivers:
            raise AllocationError(f"app {driver.app_id} registered twice")
        if driver.manager is not None and driver.manager is not self:
            raise AllocationError(f"driver {driver.app_id} already has a manager")
        self.drivers[driver.app_id] = driver
        driver.manager = self
        if self.timeline is not None:
            self.timeline.record("app.register", driver.app_id, manager=self.name)
        self._on_register(driver)

    # ---------------------------------------------------------------- plumbing
    def grant(self, driver: "ApplicationDriver", executor: Executor) -> None:
        """Allocate a free executor to an application."""
        executor.allocate(driver.app_id)
        if self.timeline is not None:
            self.timeline.record(
                "executor.grant",
                executor.executor_id,
                app=driver.app_id,
                node=executor.node_id,
            )
        driver.attach_executor(executor)

    def revoke_idle(self, driver: "ApplicationDriver", executor: Executor) -> bool:
        """Take an idle executor back from an application; False if busy."""
        if executor.owner != driver.app_id:
            raise AllocationError(
                f"{executor.executor_id} is not owned by {driver.app_id}"
            )
        if executor.running_tasks:
            return False
        driver.detach_executor(executor)
        executor.release()
        if self.timeline is not None:
            self.timeline.record(
                "executor.release", executor.executor_id, app=driver.app_id
            )
        return True

    def free_pool(self) -> List[Executor]:
        """Free executors in deterministic (creation) order."""
        return self.cluster.free_executors()

    # -------------------------------------------------------------------- hooks
    def _on_register(self, driver: "ApplicationDriver") -> None:
        """Subclass hook: called after an application registers."""

    def on_job_submitted(self, driver: "ApplicationDriver", job: Job) -> None:
        """Subclass hook: a driver accepted a new job."""

    def on_job_finished(self, driver: "ApplicationDriver", job: Job) -> None:
        """Subclass hook: a driver completed a job."""

    def on_executor_idle(self, driver: "ApplicationDriver", executor: Executor) -> None:
        """Subclass hook: an owned executor's last running task finished."""
