"""Custody: the data-aware cluster manager (the paper's contribution).

The manager mirrors the plugin architecture of §V:

1. **Postponed allocation.**  Nothing is allocated at registration; demands
   become known when jobs are submitted.
2. **NameNode query.**  On every job boundary the manager asks the NameNode
   where each pending input block lives and derives, per application, the
   set of *unsatisfied* input tasks — those with no owned executor on any
   replica node — and their candidate free executors.
3. **Release.**  Each application proactively returns idle executors that
   are neither on a replica node of its pending inputs nor needed for its
   outstanding task volume ("a specific executor can be released"), so the
   pool reflects true availability and executor *swaps* are possible at
   quota.
4. **Two-level allocation.**  :func:`repro.core.allocation.two_level_allocate`
   runs Algorithms 1 + 2 over the demands and the idle pool; the resulting
   grants are applied.  Task-level assignments are forwarded as *hints*;
   by default applications keep their own (delay) schedulers and ignore
   them, exactly as the paper deploys it — a
   :class:`~repro.scheduling.policies.HintedDelayScheduler` opts in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.core.allocation import DataAwareAllocator
from repro.core.demand import AllocationPlan, AppDemand, JobDemand, TaskDemand, validate_plan
from repro.managers.base import ClusterManager
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.driver import ApplicationDriver

__all__ = ["CustodyManager"]


class CustodyManager(ClusterManager):
    """Data-aware executor allocation via the two-level procedure."""

    name = "custody"

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        *,
        num_apps: int,
        fill: bool = True,
        validate: bool = False,
        weights=None,
        timeline: Optional[Timeline] = None,
        tracer=None,
    ):
        super().__init__(
            sim,
            cluster,
            num_apps=num_apps,
            weights=weights,
            timeline=timeline,
            tracer=tracer,
        )
        self.allocator = DataAwareAllocator(
            fill=fill, executor_capacity=cluster.config.executor_slots
        )
        self.validate = validate
        self.last_plan: Optional[AllocationPlan] = None

    # -------------------------------------------------------------------- hooks
    def on_job_submitted(self, driver: "ApplicationDriver", job: Job) -> None:
        self.reallocate()

    def on_job_finished(self, driver: "ApplicationDriver", job: Job) -> None:
        self.reallocate()

    def on_executors_changed(self) -> None:
        """Node crash/restart: run a full round so displaced work re-lands."""
        self.reallocate()

    # --------------------------------------------------------------- allocation
    def reallocate(self) -> AllocationPlan:
        """One full Custody round: release, build demands, allocate, apply."""
        self.allocation_rounds += 1
        self._release_surplus()
        demands, fill_limits = self._build_demands()
        idle = [e.executor_id for e in self.free_pool()]
        plan = self.allocator.allocate(demands, idle, fill_limits=fill_limits)
        if self.validate:
            validate_plan(
                plan,
                demands,
                idle,
                executor_capacity=self.cluster.config.executor_slots,
            )
        for app_id, executor_ids in plan.grants.items():
            driver = self.drivers[app_id]
            for executor_id in executor_ids:
                self.grant(driver, self.cluster.executor(executor_id))
        # Forward the z^u_ijk suggestions to hint-aware schedulers (§V: the
        # allocation "can submit both the list of executors and the
        # scheduling suggestions"); plain delay schedulers ignore them.
        if plan.assignment:
            owner_of_task = {
                t.task_id: a.app_id for a in demands for j in a.jobs for t in j.tasks
            }
            per_app: Dict[str, Dict[str, str]] = {}
            for task_id, executor_id in plan.assignment.items():
                per_app.setdefault(owner_of_task[task_id], {})[task_id] = executor_id
            for app_id, hints in per_app.items():
                self.drivers[app_id].set_task_hints(hints)
        if self.timeline is not None:
            self.timeline.record(
                "custody.round",
                f"round-{self.allocation_rounds:05d}",
                granted=plan.total_granted,
                promised=len(plan.assignment),
            )
        # Algorithm 1/2 decision record: which apps demanded, how much idle
        # capacity the max-min pass saw, and the grant pick order it chose.
        self.trace_round(
            demand_apps=sum(1 for a in demands if a.jobs),
            demand_tasks=sum(len(j.tasks) for a in demands for j in a.jobs),
            idle=len(idle),
            granted=plan.total_granted,
            promised=len(plan.assignment),
            grants=",".join(
                f"{app}:{len(execs)}" for app, execs in plan.grants.items() if execs
            ),
        )
        self.last_plan = plan
        return plan

    # ----------------------------------------------------------------- releases
    def _release_surplus(self) -> None:
        """Return idle executors that serve neither locality nor capacity."""
        for driver in self._driver_order():
            useful_nodes = self._pending_replica_nodes(driver)
            needed = self.needed_executors(driver)
            for executor in driver.executors:
                if driver.executor_count <= needed:
                    break
                if executor.running_tasks:
                    continue
                if executor.node_id in useful_nodes:
                    continue
                self.revoke_idle(driver, executor)

    def _pending_replica_nodes(self, driver: "ApplicationDriver") -> set:
        """Nodes holding replicas of any pending (unstarted) input task."""
        namenode = driver.hdfs.namenode
        nodes: set = set()
        for task in driver.runnable_tasks:
            if task.is_input and task.started_at is None and task.block is not None:
                nodes.update(namenode.serving_locations(task.block.block_id))
        return nodes

    # ------------------------------------------------------------------ demands
    def _build_demands(self) -> tuple:
        """Construct the AppDemand list and fill limits from live state."""
        free_by_node: Dict[str, List[str]] = {}
        for executor in self.free_pool():
            free_by_node.setdefault(executor.node_id, []).append(executor.executor_id)

        demands: List[AppDemand] = []
        fill_limits: Dict[str, int] = {}
        for driver in self._driver_order():
            namenode = driver.hdfs.namenode
            owned_nodes = set(driver.owned_nodes())
            job_by_id = {j.job_id: j for j in driver.app.jobs}
            jobs: Dict[str, List[TaskDemand]] = {}
            totals: Dict[str, int] = {}
            for task in driver.runnable_tasks:
                if not task.is_input or task.started_at is not None:
                    continue
                assert task.block is not None
                replica_nodes = namenode.serving_locations(task.block.block_id)
                if owned_nodes.intersection(replica_nodes):
                    continue  # satisfied: an owned executor can serve it locally
                candidates = [
                    ex for node in replica_nodes for ex in free_by_node.get(node, ())
                ]
                jobs.setdefault(task.job_id, []).append(
                    TaskDemand.of(task.task_id, candidates)
                )
                totals[task.job_id] = job_by_id[task.job_id].num_input_tasks
            job_demands = [
                JobDemand(job_id, tuple(tasks), total_tasks=totals[job_id])
                for job_id, tasks in sorted(jobs.items())
            ]
            app = driver.app
            decided_jobs = sum(1 for j in app.jobs if j.is_local_job is not None)
            local_jobs = sum(1 for j in app.jobs if j.is_local_job)
            decided_tasks = sum(
                1 for t in app.input_tasks if t.was_local is not None
            )
            local_tasks = sum(1 for t in app.input_tasks if t.was_local)
            quota = self.quota_of(driver.app_id)
            held = min(driver.executor_count, quota)
            demands.append(
                AppDemand(
                    app_id=driver.app_id,
                    jobs=tuple(job_demands),
                    quota=quota,
                    held=held,
                    local_jobs=local_jobs,
                    decided_jobs=decided_jobs,
                    local_tasks=local_tasks,
                    decided_tasks=decided_tasks,
                )
            )
            fill_limits[driver.app_id] = max(
                0, self.needed_executors(driver) - driver.executor_count
            )
        return demands, fill_limits

    def _driver_order(self):
        return [self.drivers[k] for k in sorted(self.drivers)]
