"""Custody: the data-aware cluster manager (the paper's contribution).

The manager mirrors the plugin architecture of §V:

1. **Postponed allocation.**  Nothing is allocated at registration; demands
   become known when jobs are submitted.
2. **NameNode query.**  On every job boundary the manager asks the NameNode
   where each pending input block lives and derives, per application, the
   set of *unsatisfied* input tasks — those with no owned executor on any
   replica node — and their candidate free executors.
3. **Release.**  Each application proactively returns idle executors that
   are neither on a replica node of its pending inputs nor needed for its
   outstanding task volume ("a specific executor can be released"), so the
   pool reflects true availability and executor *swaps* are possible at
   quota.
4. **Two-level allocation.**  :func:`repro.core.allocation.two_level_allocate`
   runs Algorithms 1 + 2 over the demands and the idle pool; the resulting
   grants are applied.  Task-level assignments are forwarded as *hints*;
   by default applications keep their own (delay) schedulers and ignore
   them, exactly as the paper deploys it — a
   :class:`~repro.scheduling.policies.HintedDelayScheduler` opts in.

Two control-plane implementations share this round structure:

* ``alloc_engine="reference"`` — the seed from-scratch path: every round
  rebuilds every application's demand with per-task NameNode lookups and
  full locality-history scans.
* ``alloc_engine="incremental"`` (default) — live indexes: a per-round
  NameNode replica memo (keyed on ``NameNode.version``) shared between
  release, usefulness and demand building; a per-driver demand cache whose
  entries stay valid while the driver's ``demand_epoch``, the NameNode
  version and the free pool on the demand's *watched* replica nodes are all
  unchanged; and the O(1) locality counters the drivers maintain through
  ``Application.note_input_decided``.  The incremental path produces
  byte-identical demands and plans — the equivalence suite asserts it — and
  is bypassed under fault injection, where the master's stale liveness view
  makes pool membership unobservable through :meth:`_note_pool_change`.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set

from repro.cluster.cluster import Cluster
from repro.cluster.executor import Executor
from repro.core.allocation import DataAwareAllocator
from repro.core.demand import AllocationPlan, AppDemand, JobDemand, TaskDemand, validate_plan
from repro.managers.base import ClusterManager
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.driver import ApplicationDriver

__all__ = ["CustodyManager"]


def _gc_collection_count() -> int:
    """Total cyclic-GC passes run so far, across all generations."""
    return sum(s["collections"] for s in gc.get_stats())


@dataclass
class _DemandEntry:
    """One driver's cached demand with its validity preconditions."""

    epoch: int  # driver.demand_epoch at build time
    nn_version: int  # NameNode.version at build time
    pool_version: int  # manager pool clock at build time
    watch_nodes: FrozenSet[str]  # replica nodes whose free pool the demand read
    demand: AppDemand
    fill_limit: int


class CustodyManager(ClusterManager):
    """Data-aware executor allocation via the two-level procedure."""

    name = "custody"

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        *,
        num_apps: int,
        fill: bool = True,
        validate: bool = False,
        weights=None,
        timeline: Optional[Timeline] = None,
        tracer=None,
        alloc_engine: str = "incremental",
        coalesce: bool = False,
        counters=None,
        metrics=None,
    ):
        super().__init__(
            sim,
            cluster,
            num_apps=num_apps,
            weights=weights,
            timeline=timeline,
            tracer=tracer,
            coalesce=coalesce,
            counters=counters,
            metrics=metrics,
        )
        _cache = self.metrics.counter(
            "demand_cache_requests_total",
            "Per-round demand builds served from / missing the incremental "
            "cache.",
            ("manager", "result"),
        )
        self._m_cache_hit = _cache.labels(manager=self.name, result="hit")
        self._m_cache_miss = _cache.labels(manager=self.name, result="miss")
        self.allocator = DataAwareAllocator(
            fill=fill,
            executor_capacity=cluster.config.executor_slots,
            engine=alloc_engine,
        )
        self.alloc_engine = alloc_engine
        self.validate = validate
        self.last_plan: Optional[AllocationPlan] = None
        # Incremental control-plane state (see module docstring).
        self.demand_cache_hits = 0
        self.demand_cache_misses = 0
        self._demand_cache: Dict[str, _DemandEntry] = {}
        #: app id → (epoch, nn version, useful replica nodes) for release
        self._useful_cache: Dict[str, tuple] = {}
        #: per-NameNode-version replica memo: block id → serving node list
        self._serving_memo: Dict[str, List[str]] = {}
        self._serving_memo_version = -1
        #: pool clock: bumped on every grant/release, per-node high-water mark
        self._pool_version = 0
        self._node_version: Dict[str, int] = {}
        #: apps whose scheduler accepts task hints (skip hint plumbing else)
        self._hint_drivers: Set[str] = set()

    # -------------------------------------------------------------------- hooks
    def _on_register(self, driver: "ApplicationDriver") -> None:
        if getattr(driver.scheduler, "set_hints", None) is not None:
            self._hint_drivers.add(driver.app_id)

    def on_job_submitted(self, driver: "ApplicationDriver", job: Job) -> None:
        if not self.admit_job(driver, job):
            return  # overloaded: round deferred until capacity recovers
        self._schedule_round()

    def on_job_finished(self, driver: "ApplicationDriver", job: Job) -> None:
        self._schedule_round()

    def on_executors_changed(self) -> None:
        """Node crash/restart: run a full round so displaced work re-lands."""
        self._schedule_round()

    def _allocation_round(self) -> None:
        self.reallocate()

    # ------------------------------------------------------- incremental indexes
    @property
    def _incremental_enabled(self) -> bool:
        """Caches apply only on the incremental engine without fault injection.

        Under faults the believed free pool changes through detector state
        transitions that never pass :meth:`_note_pool_change`, so cached
        demands could go stale invisibly; the reference rebuild is the
        correct (and rare) path there.
        """
        return (
            self.alloc_engine in ("incremental", "vectorized")
            and self.fault_injector is None
        )

    def _note_pool_change(self, executor: Executor) -> None:
        self._pool_version += 1
        self._node_version[executor.node_id] = self._pool_version

    def _serving(self, namenode, block_id: str) -> List[str]:
        """Memoised ``NameNode.serving_locations`` (one lookup per version).

        The memo lives across rounds and is dropped wholesale whenever the
        NameNode's metadata epoch moves; within a round the same block is
        consulted by release, usefulness and demand building, so this
        collapses up to three sorted-set unions into one.
        """
        if namenode.version != self._serving_memo_version:
            self._serving_memo = {}
            self._serving_memo_version = namenode.version
        nodes = self._serving_memo.get(block_id)
        if nodes is None:
            nodes = namenode.serving_locations(block_id)
            self._serving_memo[block_id] = nodes
        return nodes

    # --------------------------------------------------------------- allocation
    def reallocate(self) -> AllocationPlan:
        """One full Custody round: release, build demands, allocate, apply.

        With counters attached, each phase is timed separately and the
        cyclic-GC passes that fire mid-round are tallied — the breakdown
        that attributes tail latency to collector pauses rather than to
        any allocation phase.
        """
        counters = self.counters
        if counters is not None:
            gc_before = _gc_collection_count()
            mark = time.perf_counter()
        self.allocation_rounds += 1
        self._release_surplus()
        # One pool scan serves both the demand builder and the idle list —
        # the seed scanned twice with identical results post-release.
        pool = self.free_pool()
        if counters is not None:
            now = time.perf_counter()
            counters.alloc_release_seconds += now - mark
            mark = now
        if self._incremental_enabled:
            demands, fill_limits = self._build_demands_incremental(pool)
        else:
            demands, fill_limits = self._build_demands(pool)
        idle = [e.executor_id for e in pool]
        if counters is not None:
            now = time.perf_counter()
            counters.alloc_demand_seconds += now - mark
            mark = now
        plan = self.allocator.allocate(demands, idle, fill_limits=fill_limits)
        if counters is not None:
            now = time.perf_counter()
            counters.alloc_plan_seconds += now - mark
            mark = now
        if self.validate:
            validate_plan(
                plan,
                demands,
                idle,
                executor_capacity=self.cluster.config.executor_slots,
            )
        for app_id, executor_ids in plan.grants.items():
            driver = self.drivers[app_id]
            for executor_id in executor_ids:
                self.grant(driver, self.cluster.executor(executor_id))
        # Forward the z^u_ijk suggestions to hint-aware schedulers (§V: the
        # allocation "can submit both the list of executors and the
        # scheduling suggestions"); plain delay schedulers ignore them, and
        # when no registered scheduler accepts hints the owner map is not
        # even built.
        if plan.assignment and self._hint_drivers:
            owner_of_task = {
                t.task_id: a.app_id for a in demands for j in a.jobs for t in j.tasks
            }
            per_app: Dict[str, Dict[str, str]] = {}
            for task_id, executor_id in plan.assignment.items():
                per_app.setdefault(owner_of_task[task_id], {})[task_id] = executor_id
            for app_id, hints in per_app.items():
                self.drivers[app_id].set_task_hints(hints)
        if self.timeline is not None:
            self.timeline.record(
                "custody.round",
                f"round-{self.allocation_rounds:05d}",
                granted=plan.total_granted,
                promised=len(plan.assignment),
            )
        # Algorithm 1/2 decision record: which apps demanded, how much idle
        # capacity the max-min pass saw, and the grant pick order it chose.
        demand_tasks = sum(len(j.tasks) for a in demands for j in a.jobs)
        self.trace_round(
            demand_apps=sum(1 for a in demands if a.jobs),
            demand_tasks=demand_tasks,
            idle=len(idle),
            granted=plan.total_granted,
            promised=len(plan.assignment),
            grants=",".join(
                f"{app}:{len(execs)}" for app, execs in plan.grants.items() if execs
            ),
        )
        if self.tracer.enabled:
            self.tracer.counter(
                "alloc.demand_tasks",
                "manager",
                value=float(demand_tasks),
                track=f"manager:{self.name}",
            )
            self.tracer.counter(
                "alloc.demand_cache_hits",
                "manager",
                value=float(self.demand_cache_hits),
                track=f"manager:{self.name}",
            )
        self.last_plan = plan
        if counters is not None:
            counters.alloc_apply_seconds += time.perf_counter() - mark
            counters.alloc_gc_collections += _gc_collection_count() - gc_before
        return plan

    # ----------------------------------------------------------------- releases
    def _release_surplus(self) -> None:
        """Return idle executors that serve neither locality nor capacity."""
        for driver in self._driver_order():
            useful_nodes = self._useful_nodes(driver)
            needed = self.needed_executors(driver)
            for executor in driver.executors:
                if driver.executor_count <= needed:
                    break
                if executor.running_tasks:
                    continue
                if executor.node_id in useful_nodes:
                    continue
                self.revoke_idle(driver, executor)

    def _useful_nodes(self, driver: "ApplicationDriver") -> set:
        """Replica nodes of the driver's pending inputs, cached when possible.

        The set depends only on the driver's runnable input tasks and the
        NameNode metadata, so a ``(demand_epoch, NameNode.version)`` pair
        keys its validity exactly.
        """
        if not self._incremental_enabled:
            return self._pending_replica_nodes(driver)
        namenode = driver.hdfs.namenode
        cached = self._useful_cache.get(driver.app_id)
        if (
            cached is not None
            and cached[0] == driver.demand_epoch
            and cached[1] == namenode.version
        ):
            return cached[2]
        nodes: set = set()
        for task in driver.runnable_tasks:
            if task.is_input and task.started_at is None and task.block is not None:
                nodes.update(self._serving(namenode, task.block.block_id))
        self._useful_cache[driver.app_id] = (driver.demand_epoch, namenode.version, nodes)
        return nodes

    def _pending_replica_nodes(self, driver: "ApplicationDriver") -> set:
        """Nodes holding replicas of any pending (unstarted) input task."""
        namenode = driver.hdfs.namenode
        nodes: set = set()
        for task in driver.runnable_tasks:
            if task.is_input and task.started_at is None and task.block is not None:
                nodes.update(namenode.serving_locations(task.block.block_id))
        return nodes

    # ------------------------------------------------------------------ demands
    def _build_demands(self, pool: Optional[List[Executor]] = None) -> tuple:
        """Construct the AppDemand list and fill limits from live state."""
        free_by_node: Dict[str, List[str]] = {}
        for executor in pool if pool is not None else self.free_pool():
            free_by_node.setdefault(executor.node_id, []).append(executor.executor_id)

        demands: List[AppDemand] = []
        fill_limits: Dict[str, int] = {}
        for driver in self._driver_order():
            namenode = driver.hdfs.namenode
            owned_nodes = set(driver.owned_nodes())
            job_by_id: Optional[Dict[str, Job]] = None
            jobs: Dict[str, List[TaskDemand]] = {}
            totals: Dict[str, int] = {}
            for task in driver.runnable_tasks:
                if not task.is_input or task.started_at is not None:
                    continue
                assert task.block is not None
                replica_nodes = namenode.serving_locations(task.block.block_id)
                if owned_nodes.intersection(replica_nodes):
                    continue  # satisfied: an owned executor can serve it locally
                candidates = [
                    ex for node in replica_nodes for ex in free_by_node.get(node, ())
                ]
                jobs.setdefault(task.job_id, []).append(
                    TaskDemand.of(task.task_id, candidates)
                )
                if task.job_id not in totals:
                    # Lazily index the job list once per driver, and resolve
                    # each job's task total once rather than per task.
                    if job_by_id is None:
                        job_by_id = {j.job_id: j for j in driver.app.jobs}
                    totals[task.job_id] = job_by_id[task.job_id].num_input_tasks
            job_demands = [
                JobDemand(job_id, tuple(tasks), total_tasks=totals[job_id])
                for job_id, tasks in sorted(jobs.items())
            ]
            app = driver.app
            decided_jobs = sum(1 for j in app.jobs if j.is_local_job is not None)
            local_jobs = sum(1 for j in app.jobs if j.is_local_job)
            decided_tasks = sum(
                1 for t in app.input_tasks if t.was_local is not None
            )
            local_tasks = sum(1 for t in app.input_tasks if t.was_local)
            quota = self.quota_of(driver.app_id)
            held = min(driver.executor_count, quota)
            demands.append(
                AppDemand(
                    app_id=driver.app_id,
                    jobs=tuple(job_demands),
                    quota=quota,
                    held=held,
                    local_jobs=local_jobs,
                    decided_jobs=decided_jobs,
                    local_tasks=local_tasks,
                    decided_tasks=decided_tasks,
                )
            )
            fill_limits[driver.app_id] = max(
                0, self.needed_executors(driver) - driver.executor_count
            )
        return demands, fill_limits

    def _build_demands_incremental(self, pool: List[Executor]) -> tuple:
        """Demand construction through the per-driver cache.

        A cached entry is reused when (a) the driver's ``demand_epoch`` is
        unchanged — covering runnable tasks, owned executors, task
        starts/finishes and hence held/fill/locality counters; (b) the
        NameNode version is unchanged — covering every replica set read; and
        (c) no *watched* node's free pool moved since the entry was built —
        covering candidate executor sets.  Watched nodes are the replica
        nodes of the entry's unsatisfied tasks: satisfied tasks' skip
        decisions read only owned nodes and replica sets, already covered
        by (a) + (b).  Only dirty drivers pay the rebuild.
        """
        free_by_node: Dict[str, List[str]] = {}
        for executor in pool:
            free_by_node.setdefault(executor.node_id, []).append(executor.executor_id)

        demands: List[AppDemand] = []
        fill_limits: Dict[str, int] = {}
        for driver in self._driver_order():
            namenode = driver.hdfs.namenode
            entry = self._demand_cache.get(driver.app_id)
            if (
                entry is not None
                and entry.epoch == driver.demand_epoch
                and entry.nn_version == namenode.version
                and all(
                    self._node_version.get(n, 0) <= entry.pool_version
                    for n in entry.watch_nodes
                )
            ):
                self.demand_cache_hits += 1
                self._m_cache_hit.inc()
                if self.counters is not None:
                    self.counters.demand_cache_hits += 1
                demands.append(entry.demand)
                fill_limits[driver.app_id] = entry.fill_limit
                continue
            self.demand_cache_misses += 1
            self._m_cache_miss.inc()
            if self.counters is not None:
                self.counters.demand_cache_misses += 1
            epoch = driver.demand_epoch
            owned_nodes = set(driver.owned_nodes())
            watch: Set[str] = set()
            job_by_id: Optional[Dict[str, Job]] = None
            jobs: Dict[str, List[TaskDemand]] = {}
            totals: Dict[str, int] = {}
            for task in driver.runnable_tasks:
                if not task.is_input or task.started_at is not None:
                    continue
                assert task.block is not None
                replica_nodes = self._serving(namenode, task.block.block_id)
                if owned_nodes.intersection(replica_nodes):
                    continue
                watch.update(replica_nodes)
                candidates = [
                    ex for node in replica_nodes for ex in free_by_node.get(node, ())
                ]
                jobs.setdefault(task.job_id, []).append(
                    TaskDemand.of(task.task_id, candidates)
                )
                if task.job_id not in totals:
                    if job_by_id is None:
                        job_by_id = {j.job_id: j for j in driver.app.jobs}
                    totals[task.job_id] = job_by_id[task.job_id].num_input_tasks
            job_demands = [
                JobDemand(job_id, tuple(tasks), total_tasks=totals[job_id])
                for job_id, tasks in sorted(jobs.items())
            ]
            app = driver.app
            quota = self.quota_of(driver.app_id)
            held = min(driver.executor_count, quota)
            demand = AppDemand(
                app_id=driver.app_id,
                jobs=tuple(job_demands),
                quota=quota,
                held=held,
                local_jobs=app.local_job_count,
                decided_jobs=app.decided_job_count,
                local_tasks=app.local_task_count,
                decided_tasks=app.decided_task_count,
            )
            fill_limit = max(0, self.needed_executors(driver) - driver.executor_count)
            demands.append(demand)
            fill_limits[driver.app_id] = fill_limit
            self._demand_cache[driver.app_id] = _DemandEntry(
                epoch=epoch,
                nn_version=namenode.version,
                pool_version=self._pool_version,
                watch_nodes=frozenset(watch),
                demand=demand,
                fill_limit=fill_limit,
            )
        return demands, fill_limits

    def _driver_order(self):
        return [self.drivers[k] for k in sorted(self.drivers)]
