"""Mesos-style offer-based fine-grained sharing.

Free executors are *offered* to applications round-robin; an application's
task scheduler accepts an offer only when it could use a slot on that node
right now (delay scheduling rejects non-local offers while its wait budget
lasts).  Executors return to the pool as soon as their application has no
more work.  This reproduces the §II-A pathology: "the resource manager has
to resend an offer to multiple applications before any of them accepts it
... the applications may still not achieve data locality after waiting for a
long time."

Offers declined by every application are retried after ``offer_interval``
seconds — the offer-cycle latency a real Mesos master exhibits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.executor import Executor
from repro.managers.base import ClusterManager
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.driver import ApplicationDriver

__all__ = ["MesosManager"]


class MesosManager(ClusterManager):
    """Offer/accept resource sharing with per-app quotas."""

    name = "mesos"

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        *,
        num_apps: int,
        offer_interval: float = 1.0,
        weights=None,
        timeline: Optional[Timeline] = None,
        tracer=None,
        coalesce: bool = False,
        counters=None,
        metrics=None,
    ):
        super().__init__(
            sim,
            cluster,
            num_apps=num_apps,
            weights=weights,
            timeline=timeline,
            tracer=tracer,
            coalesce=coalesce,
            counters=counters,
            metrics=metrics,
        )
        if offer_interval <= 0:
            raise ValueError(f"offer_interval must be positive, got {offer_interval}")
        self.offer_interval = offer_interval
        self._offer_rotation = 0
        self._retry_armed = False
        self.offers_made = 0
        self.offers_rejected = 0

    # -------------------------------------------------------------------- hooks
    def _on_register(self, driver: "ApplicationDriver") -> None:
        # Registration happens pre-simulation; always offer synchronously.
        self._run_round()

    def on_job_submitted(self, driver: "ApplicationDriver", job: Job) -> None:
        if not self.admit_job(driver, job):
            return  # overloaded: round deferred until capacity recovers
        self._schedule_round()

    def on_job_finished(self, driver: "ApplicationDriver", job: Job) -> None:
        self._schedule_round()

    def on_executors_changed(self) -> None:
        """Node crash/restart: re-offer whatever the master believes free."""
        self._schedule_round()

    def _allocation_round(self) -> None:
        self._offer_all_free()

    def on_executor_idle(self, driver: "ApplicationDriver", executor: Executor) -> None:
        # Fine-grained sharing: an app keeps an executor only while it has
        # work queued for it; otherwise the executor re-enters the pool.
        if not driver.runnable_tasks:
            if self.revoke_idle(driver, executor):
                self._offer_one(executor)

    # -------------------------------------------------------------------- offers
    def _offer_all_free(self) -> None:
        self.allocation_rounds += 1
        made_before, rejected_before = self.offers_made, self.offers_rejected
        offered = 0
        for executor in self.free_pool():
            if executor.is_free:  # may have been taken earlier this sweep
                self._offer_one(executor)
                offered += 1
        self.trace_round(
            executors_offered=offered,
            offers=self.offers_made - made_before,
            rejected=self.offers_rejected - rejected_before,
        )

    def _offer_one(self, executor: Executor) -> None:
        """Offer one executor round-robin; arm a retry if everyone declines."""
        drivers = [self.drivers[k] for k in sorted(self.drivers)]
        if not drivers:
            return
        n = len(drivers)
        start = self._offer_rotation % n
        self._offer_rotation += 1
        for step in range(n):
            driver = drivers[(start + step) % n]
            self.offers_made += 1
            if driver.executor_count >= self.quota_of(driver.app_id):
                self.offers_rejected += 1
                continue
            if driver.consider_offer(executor):
                if self.grant(driver, executor):
                    return
                # Launch on a believed-alive-but-dead node failed; the
                # executor is unplaceable right now — retry later.
                self._arm_retry()
                return
            self.offers_rejected += 1
        self._arm_retry()

    def _arm_retry(self) -> None:
        """Periodic re-offer of executors nobody wanted (one timer at a time)."""
        if self._retry_armed:
            return
        self._retry_armed = True
        self.sim.schedule(self.offer_interval, self._retry)

    def _retry(self) -> None:
        # Stays synchronous even under coalescing: the re-arm decision below
        # must read the post-offer state.
        self._retry_armed = False
        free = self.free_pool()
        wanted = any(d.runnable_tasks for d in self.drivers.values())
        if free and wanted:
            self._run_round()
        # Re-arm while there is still unplaced work and idle capacity.
        free = self.free_pool()
        wanted = any(d.runnable_tasks for d in self.drivers.values())
        if free and wanted:
            self._arm_retry()
