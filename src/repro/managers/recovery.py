"""Control-plane crash-recovery: checkpointed state, grant leases, and a
work-preserving manager restart.

The cluster manager is a single point of failure; this module gives it the
recovery story a real control plane needs, in three pieces:

* :class:`RecoveryLog` — a write-ahead log plus periodic checkpoints of the
  manager's allocation-relevant state (registered apps, outstanding grants,
  demand epochs, admission queue).  Checkpoints piggyback on WAL appends
  (no timer events — the simulation stays quiescence-safe), and a
  configurable ``flush lag`` models the tail of the WAL that had not hit
  disk when the process died.
* Leases — every grant carries an implicit lease with a renewal interval
  and an expiry.  Renewals are *analytic*: a healthy manager renews every
  ``lease_renew_interval`` seconds, so the last renewal before a crash is
  a closed-form function of the grant time — no per-lease sim events.
* :class:`RecoveryCoordinator` — the state machine.  ``crash()`` freezes
  the durable view of the log and stalls allocation (rounds, grants,
  registrations, submissions); ``_restart()`` replays the WAL suffix onto
  the last checkpoint, re-registers the live drivers, and reconciles the
  rebuilt lease ledger against the *physical* cluster: live leases are
  re-adopted (work-preserving), expired or orphaned leases are reclaimed,
  and zombie executors — granted in WAL entries the flush lag lost — are
  detected and reclaimed.  After ``reconciliation_window`` seconds the
  manager resumes allocation and drains buffered submissions.

Everything here is opt-in and event-free until a crash actually fires:
bookkeeping hooks only mutate coordinator state, so a recovery-enabled run
with no :class:`~repro.faults.plan.ManagerCrash` in its plan replays the
seed trajectory record-for-record (pinned by the lockstep test).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.obs.events import LeaseOutcome, ManagerDown, ManagerRestart
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.managers.base import ClusterManager

__all__ = [
    "Lease",
    "WalEntry",
    "ManagerCheckpoint",
    "RecoveryLog",
    "RecoveryCoordinator",
    "save_recovery_state",
    "load_recovery_state",
]

#: On-disk recovery-state format (mirrors the persistence-v2 conventions:
#: a top-level ``format_version`` plus a strict loader).
_FORMAT_VERSION = 1
_READABLE_VERSIONS = (1,)


@dataclass(frozen=True)
class Lease:
    """One executor grant as the recovery ledger sees it."""

    executor_id: str
    app_id: str
    granted_at: float


@dataclass(frozen=True)
class WalEntry:
    """One logged state mutation (``seq`` is the total order)."""

    seq: int
    ts: float
    op: str
    args: Tuple[Tuple[str, object], ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """The JSON-serialisable projection of this WAL entry."""
        return {"seq": self.seq, "ts": self.ts, "op": self.op,
                "args": dict(self.args)}


@dataclass(frozen=True)
class ManagerCheckpoint:
    """Snapshot of manager state as of WAL entry ``seq``."""

    seq: int
    taken_at: float
    apps: Tuple[str, ...] = ()
    leases: Tuple[Lease, ...] = ()
    demand_epochs: Tuple[Tuple[str, int], ...] = ()
    admission_queue: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """The JSON-serialisable projection of this checkpoint."""
        return {
            "seq": self.seq,
            "taken_at": self.taken_at,
            "apps": list(self.apps),
            "leases": [
                {"executor_id": l.executor_id, "app_id": l.app_id,
                 "granted_at": l.granted_at}
                for l in self.leases
            ],
            "demand_epochs": dict(self.demand_epochs),
            "admission_queue": list(self.admission_queue),
        }


class RecoveryLog:
    """Checkpoint + WAL for manager state.

    ``flush_lag`` models write-behind durability: an entry appended at
    ``t`` is only durable once ``t + flush_lag`` has passed, so a crash at
    ``t_c`` loses every entry with ``ts > t_c - flush_lag``.  With the
    default lag of 0 the log is synchronous and nothing is ever lost.
    """

    def __init__(self, *, checkpoint_interval: float = 30.0,
                 flush_lag: float = 0.0):
        if checkpoint_interval <= 0:
            raise ConfigurationError(
                f"checkpoint_interval must be positive, got {checkpoint_interval}"
            )
        if flush_lag < 0:
            raise ConfigurationError(
                f"flush_lag must be >= 0, got {flush_lag}"
            )
        self.checkpoint_interval = checkpoint_interval
        self.flush_lag = flush_lag
        self.entries: List[WalEntry] = []
        self.checkpoint: Optional[ManagerCheckpoint] = None
        self._seq = 0
        self.entries_total = 0
        self.checkpoints_taken = 0

    def append(self, ts: float, op: str, **args) -> WalEntry:
        """Log one mutation; returns the entry (callers may trace it)."""
        self._seq += 1
        entry = WalEntry(
            seq=self._seq, ts=ts, op=op, args=tuple(sorted(args.items()))
        )
        self.entries.append(entry)
        self.entries_total += 1
        return entry

    def checkpoint_due(self, now: float) -> bool:
        """Has ``checkpoint_interval`` elapsed since the last snapshot?"""
        last = self.checkpoint.taken_at if self.checkpoint is not None else 0.0
        return now - last >= self.checkpoint_interval

    def install_checkpoint(self, checkpoint: ManagerCheckpoint) -> None:
        """Adopt a snapshot and truncate the WAL prefix it covers."""
        self.checkpoint = checkpoint
        self.entries = [e for e in self.entries if e.seq > checkpoint.seq]
        self.checkpoints_taken += 1

    def durable_entries(self, at: float) -> List[WalEntry]:
        """WAL entries that had reached disk by time ``at``."""
        horizon = at - self.flush_lag
        return [e for e in self.entries if e.ts <= horizon]

    def lost_entries(self, at: float) -> List[WalEntry]:
        """Trailing entries a crash at ``at`` destroys (flush lag)."""
        horizon = at - self.flush_lag
        return [e for e in self.entries if e.ts > horizon]


def save_recovery_state(log: RecoveryLog, path: Union[str, Path], *,
                        at: float) -> Path:
    """Persist the durable view of a recovery log as versioned JSON.

    Writes exactly what a restart at time ``at`` would see: the last
    checkpoint plus the durable WAL suffix (entries the flush lag had not
    yet destroyed are *excluded*, same as an in-sim recovery).
    """
    payload = {
        "format_version": _FORMAT_VERSION,
        "at": at,
        "checkpoint": (
            log.checkpoint.as_dict() if log.checkpoint is not None else None
        ),
        "wal": [e.as_dict() for e in log.durable_entries(at)],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_recovery_state(path: Union[str, Path]) -> Dict[str, object]:
    """Load persisted recovery state; strict about the format version."""
    data = json.loads(Path(path).read_text())
    version = data.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ConfigurationError(
            f"unsupported recovery state format version {version!r} "
            f"(expected one of {_READABLE_VERSIONS})"
        )
    checkpoint = None
    if data.get("checkpoint") is not None:
        raw = data["checkpoint"]
        checkpoint = ManagerCheckpoint(
            seq=raw["seq"],
            taken_at=raw["taken_at"],
            apps=tuple(raw["apps"]),
            leases=tuple(Lease(**l) for l in raw["leases"]),
            demand_epochs=tuple(sorted(raw["demand_epochs"].items())),
            admission_queue=tuple(raw["admission_queue"]),
        )
    entries = [
        WalEntry(seq=e["seq"], ts=e["ts"], op=e["op"],
                 args=tuple(sorted(e["args"].items())))
        for e in data["wal"]
    ]
    return {"at": data["at"], "checkpoint": checkpoint, "wal": entries}


class RecoveryCoordinator:
    """The manager's crash/restart state machine.

    States: ``up`` → (crash) → ``down`` → (outage ends) → ``reconciling``
    → (window ends) → ``up``.  While not ``up``, allocation rounds are
    stalled (:meth:`rounds_enabled`), new registrations queue, and drivers
    buffer job-submission notifications (:meth:`accepting_submissions`).
    """

    def __init__(
        self,
        sim: Simulation,
        *,
        lease_duration: float = 60.0,
        lease_renew_interval: float = 10.0,
        checkpoint_interval: float = 30.0,
        reconciliation_window: float = 5.0,
        wal_flush_lag: float = 0.0,
        timeline: Optional[Timeline] = None,
        tracer: Optional[Tracer] = None,
        metrics=None,
    ):
        if lease_duration <= 0:
            raise ConfigurationError(
                f"lease_duration must be positive, got {lease_duration}"
            )
        if lease_renew_interval <= 0:
            raise ConfigurationError(
                f"lease_renew_interval must be positive, got {lease_renew_interval}"
            )
        if reconciliation_window < 0:
            raise ConfigurationError(
                f"reconciliation_window must be >= 0, got {reconciliation_window}"
            )
        self.sim = sim
        self.lease_duration = lease_duration
        self.lease_renew_interval = lease_renew_interval
        self.reconciliation_window = reconciliation_window
        self.timeline = timeline
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.log = RecoveryLog(
            checkpoint_interval=checkpoint_interval, flush_lag=wal_flush_lag
        )
        self.manager: Optional["ClusterManager"] = None
        self._state = "up"
        self._crash_gen = 0
        self._crashed_at: Optional[float] = None
        self._durable_at_crash: Optional[
            Tuple[Optional[ManagerCheckpoint], List[WalEntry]]
        ] = None
        #: executor id → live lease, the coordinator's grant ledger
        self.leases: Dict[str, Lease] = {}
        self._pending_registrations: List = []
        # ------------------------------------------------------- tallies
        self.manager_crashes = 0
        self.recoveries = 0
        self.recovery_durations: List[float] = []
        self.leases_at_crash = 0
        self.leases_readopted = 0
        self.leases_expired = 0
        self.zombies_reclaimed = 0
        self.zombies_surviving = 0
        self.lease_renewals = 0
        self.wal_replay_entries = 0
        self.wal_lost_entries = 0
        self.rounds_stalled = 0
        self.grants_refused = 0
        self.reregistrations = 0
        self.tasks_requeued = 0
        # -------------------------------------- pre-bound instruments
        self._m_crashes = self.metrics.counter(
            "manager_crashes_total", "Control-plane crashes injected."
        )
        self._m_recoveries = self.metrics.counter(
            "manager_recoveries_total",
            "Manager restarts that completed reconciliation.",
        )
        self._m_recovery_seconds = self.metrics.histogram(
            "manager_recovery_seconds",
            "Crash to allocation-resumed, sim seconds.",
        )
        self._m_leases = self.metrics.counter(
            "manager_leases_total",
            "Reconciliation lease outcomes (readopted / expired / zombie).",
            ("outcome",),
        )
        self._m_lease_readopted = self._m_leases.labels(outcome="readopted")
        self._m_lease_expired = self._m_leases.labels(outcome="expired")
        self._m_lease_zombie = self._m_leases.labels(outcome="zombie")
        self._m_wal_entries = self.metrics.counter(
            "manager_wal_entries_total", "WAL entries appended."
        )
        self._m_checkpoints = self.metrics.counter(
            "manager_checkpoints_total", "Manager state snapshots taken."
        )
        self._m_wal_replay = self.metrics.gauge(
            "manager_wal_replay_entries",
            "WAL entries replayed by the most recent restart.",
        )
        self._m_zombies_surviving = self.metrics.gauge(
            "manager_zombies_surviving",
            "Zombie executors still allocated after the last reconciliation.",
        )
        self._m_rounds_stalled = self.metrics.counter(
            "manager_rounds_stalled_total",
            "Allocation-round triggers refused while the manager was down.",
        )
        # The zero-zombie SLO reads this gauge even on crash-free runs.
        self._m_zombies_surviving.set(0)

    # ------------------------------------------------------------- plumbing
    def bind(self, manager: "ClusterManager") -> None:
        """Attach the manager whose state this coordinator guards."""
        self.manager = manager

    @property
    def state(self) -> str:
        """``up`` | ``down`` | ``reconciling``."""
        return self._state

    @property
    def available(self) -> bool:
        """Can the manager serve registrations and grants right now?"""
        return self._state == "up"

    @property
    def rounds_enabled(self) -> bool:
        """Allocation rounds run only while fully up (not reconciling)."""
        return self._state == "up"

    @property
    def accepting_submissions(self) -> bool:
        """Drivers buffer job-submission notifications while this is False."""
        return self._state == "up"

    def note_round_stalled(self) -> None:
        """A round trigger arrived while down; count and drop it."""
        self.rounds_stalled += 1
        self._m_rounds_stalled.inc()

    def note_grant_refused(self) -> None:
        """A grant was attempted against the dead manager; count it."""
        self.grants_refused += 1

    # ----------------------------------------------------------- WAL hooks
    def _append(self, op: str, **args) -> None:
        self.log.append(self.sim.now, op, **args)
        self._m_wal_entries.inc()
        self._maybe_checkpoint()

    def note_register(self, app_id: str) -> None:
        """An application registered (or re-registered after a restart)."""
        self._append("register", app=app_id)

    def note_grant(self, executor_id: str, app_id: str) -> None:
        """A grant succeeded: open a lease and log it."""
        self.leases[executor_id] = Lease(
            executor_id=executor_id, app_id=app_id, granted_at=self.sim.now
        )
        self._append("grant", executor=executor_id, app=app_id)

    def note_release(self, executor_id: str, app_id: str) -> None:
        """An executor went back to the pool: close its lease."""
        self.leases.pop(executor_id, None)
        self._append("release", executor=executor_id, app=app_id)

    def note_job_submitted(self, app_id: str, job_id: str) -> None:
        """A job entered the admission path."""
        self._append("job_submit", app=app_id, job=job_id)

    def queue_registration(self, driver) -> None:
        """A registration arrived while down; complete it after recovery."""
        self._pending_registrations.append(driver)

    def _maybe_checkpoint(self) -> None:
        """Piggybacked snapshot: runs on WAL appends, never on a timer."""
        if not self.log.checkpoint_due(self.sim.now):
            return
        self.take_checkpoint()

    def take_checkpoint(self) -> ManagerCheckpoint:
        """Snapshot the manager's allocation-relevant state right now."""
        manager = self.manager
        apps: Tuple[str, ...] = ()
        demand_epochs: Tuple[Tuple[str, int], ...] = ()
        admission_queue: Tuple[str, ...] = ()
        if manager is not None:
            apps = tuple(sorted(manager.drivers))
            demand_epochs = tuple(
                (app_id, manager.drivers[app_id].demand_epoch)
                for app_id in apps
            )
            admission = manager.admission
            if admission is not None:
                admission_queue = tuple(
                    job.job_id for _, job in getattr(admission, "_deferred", [])
                )
        checkpoint = ManagerCheckpoint(
            seq=self.log._seq,
            taken_at=self.sim.now,
            apps=apps,
            leases=tuple(
                self.leases[k] for k in sorted(self.leases)
            ),
            demand_epochs=demand_epochs,
            admission_queue=admission_queue,
        )
        self.log.install_checkpoint(checkpoint)
        self._m_checkpoints.inc()
        return checkpoint

    # ------------------------------------------------------------ lease math
    def _last_renewal(self, granted_at: float, crash_time: float) -> float:
        """When the healthy manager last renewed this lease before dying.

        Renewals tick every ``lease_renew_interval`` seconds from the grant;
        the manager renewed on every tick it was alive for, so the last
        renewal is the latest tick at or before the crash — closed form, no
        per-lease events.
        """
        if crash_time <= granted_at:
            return granted_at
        ticks = math.floor((crash_time - granted_at) / self.lease_renew_interval)
        return granted_at + ticks * self.lease_renew_interval

    def lease_live(self, granted_at: float, crash_time: float,
                   restart_time: float) -> bool:
        """Is a lease still within ``lease_duration`` of its last renewal?"""
        return restart_time <= self._last_renewal(granted_at, crash_time) + (
            self.lease_duration
        )

    # ---------------------------------------------------------- crash path
    def crash(self, outage: float) -> None:
        """The manager process dies for ``outage`` seconds.

        Captures the durable view of the log (checkpoint + WAL entries the
        flush lag had persisted) *at the crash instant* — everything the
        restarted process will know.  A second crash while already down
        simply extends the outage (generation-guarded restart).
        """
        if outage <= 0:
            raise ConfigurationError(f"outage must be positive, got {outage}")
        now = self.sim.now
        self._crash_gen += 1
        self.manager_crashes += 1
        self._m_crashes.inc()
        if self._state == "up":
            self._crashed_at = now
            self.leases_at_crash = len(self.leases)
            lost = self.log.lost_entries(now)
            self.wal_lost_entries += len(lost)
            self._durable_at_crash = (
                self.log.checkpoint, self.log.durable_entries(now)
            )
            # Implied renewals the healthy manager performed before dying.
            self.lease_renewals += sum(
                int(math.floor((now - lease.granted_at)
                               / self.lease_renew_interval))
                for lease in self.leases.values()
                if now > lease.granted_at
            )
            if self.timeline is not None:
                self.timeline.record(
                    "manager.down", "manager",
                    outage=outage, leases=self.leases_at_crash,
                    wal_lost=len(lost),
                )
            if self.tracer.enabled:
                self.tracer.emit(
                    ManagerDown(
                        now, track="manager",
                        attrs={
                            "outage": outage,
                            "leases": self.leases_at_crash,
                            "wal_durable": len(self._durable_at_crash[1]),
                            "wal_lost": len(lost),
                        },
                    )
                )
        self._state = "down"
        self.sim.schedule(outage, self._restart, self._crash_gen)

    def _rebuild_ledger(self) -> Tuple[Dict[str, Lease], int]:
        """Replay the durable WAL suffix onto the last checkpoint."""
        checkpoint, entries = self._durable_at_crash or (None, [])
        leases: Dict[str, Lease] = {}
        if checkpoint is not None:
            for lease in checkpoint.leases:
                leases[lease.executor_id] = lease
        replayed = 0
        for entry in entries:
            args = dict(entry.args)
            if entry.op == "grant":
                leases[args["executor"]] = Lease(
                    executor_id=args["executor"], app_id=args["app"],
                    granted_at=entry.ts,
                )
            elif entry.op == "release":
                leases.pop(args["executor"], None)
            replayed += 1
        return leases, replayed

    def _restart(self, gen: int) -> None:
        """The outage ended: replay, re-register, reconcile."""
        if gen != self._crash_gen:
            return  # superseded by a later crash while we were down
        manager = self.manager
        assert manager is not None and self._crashed_at is not None
        now = self.sim.now
        crash_time = self._crashed_at
        ledger, replayed = self._rebuild_ledger()
        self.wal_replay_entries = replayed
        self._m_wal_replay.set(replayed)
        self._state = "reconciling"
        # Live drivers re-announce themselves during the window (the
        # driver objects survive — only the manager's process died).
        for app_id in sorted(manager.drivers):
            self.reregistrations += 1
            self.log.append(now, "reregister", app=app_id)
            self._m_wal_entries.inc()
        if self.timeline is not None:
            self.timeline.record(
                "manager.restart", "manager", wal_replayed=replayed
            )
        if self.tracer.enabled:
            self.tracer.emit(
                ManagerRestart(
                    now, track="manager",
                    attrs={"phase": "replay", "wal_replayed": replayed},
                )
            )
        # Reconcile the rebuilt ledger against physical cluster truth.
        readopted = expired = zombies = 0
        self.leases = {}
        for executor in manager.cluster.executors:
            owner = executor.owner
            if owner is None:
                continue
            known = ledger.pop(executor.executor_id, None)
            if known is not None and known.app_id == owner:
                if self.lease_live(known.granted_at, crash_time, now):
                    # Work-preserving re-adoption: running attempts keep
                    # going; the lease clock restarts at reconciliation.
                    self.leases[executor.executor_id] = Lease(
                        executor_id=executor.executor_id,
                        app_id=owner,
                        granted_at=now,
                    )
                    readopted += 1
                    self._m_lease_readopted.inc()
                    self._lease_outcome(executor.executor_id, owner, "readopted")
                else:
                    expired += 1
                    self._m_lease_expired.inc()
                    self._lease_outcome(executor.executor_id, owner, "expired")
                    self._reclaim(executor, "expired")
            else:
                # Physically allocated but unknown to the rebuilt ledger:
                # a zombie launched from a grant the flush lag lost.
                zombies += 1
                self._m_lease_zombie.inc()
                self._lease_outcome(executor.executor_id, owner, "zombie")
                self._reclaim(executor, "zombie")
        # Ledger leases with no matching physical executor are orphans
        # (the executor died or was released during the outage): expire
        # them on the books — there is nothing to reclaim.
        for executor_id in sorted(ledger):
            expired += 1
            self._m_lease_expired.inc()
            self._lease_outcome(executor_id, ledger[executor_id].app_id, "expired")
        self.leases_readopted += readopted
        self.leases_expired += expired
        self.zombies_reclaimed += zombies
        self.sim.schedule(
            self.reconciliation_window, self._complete_recovery, gen, crash_time
        )

    def _lease_outcome(self, executor_id: str, app_id: str, outcome: str) -> None:
        if self.timeline is not None:
            self.timeline.record(
                "lease.outcome", executor_id, app=app_id, outcome=outcome
            )
        if self.tracer.enabled:
            self.tracer.emit(
                LeaseOutcome(
                    self.sim.now, track="manager",
                    attrs={"executor": executor_id, "app": app_id,
                           "outcome": outcome},
                )
            )

    def _reclaim(self, executor, reason: str) -> None:
        """Take a dead lease's executor back: kill attempts, free the slot.

        A control-plane reclaim, not a node failure — the driver requeues
        the killed attempts without penalising the node or spending retry
        budget (see ``ApplicationDriver.reclaim_executor``).
        """
        manager = self.manager
        assert manager is not None
        driver = manager.drivers.get(executor.owner)
        if driver is not None:
            self.tasks_requeued += driver.reclaim_executor(executor)
        executor.release()
        manager._note_pool_change(executor)

    def _complete_recovery(self, gen: int, crash_time: float) -> None:
        """Reconciliation window over: resume allocation, drain buffers."""
        if gen != self._crash_gen:
            return  # another crash hit during reconciliation
        manager = self.manager
        assert manager is not None
        now = self.sim.now
        self._state = "up"
        self._crashed_at = None
        self._durable_at_crash = None
        self.recoveries += 1
        self._m_recoveries.inc()
        duration = now - crash_time
        self.recovery_durations.append(duration)
        self._m_recovery_seconds.observe(duration)
        # Post-reconciliation invariant: every allocated executor holds a
        # live lease.  Anything else survived reconciliation as a zombie.
        surviving = sum(
            1
            for executor in manager.cluster.executors
            if executor.owner is not None
            and executor.executor_id not in self.leases
        )
        self.zombies_surviving = surviving
        self._m_zombies_surviving.set(surviving)
        if self.timeline is not None:
            self.timeline.record(
                "manager.recovered", "manager",
                duration=duration,
                readopted=self.leases_readopted,
                expired=self.leases_expired,
                zombies=self.zombies_reclaimed,
            )
        if self.tracer.enabled:
            self.tracer.emit(
                ManagerRestart(
                    now, track="manager",
                    attrs={
                        "phase": "recovered",
                        "duration": duration,
                        "readopted": self.leases_readopted,
                        "expired": self.leases_expired,
                        "zombies": self.zombies_reclaimed,
                        "wal_replayed": self.wal_replay_entries,
                    },
                )
            )
        # Registrations that arrived mid-outage complete now.
        pending, self._pending_registrations = self._pending_registrations, []
        for driver in pending:
            manager.register_driver(driver)
        # Buffered submissions drain before the resume round so the first
        # post-recovery allocation pass sees full demand.
        for app_id in sorted(manager.drivers):
            manager.drivers[app_id].flush_pending_submissions()
        manager.on_executors_changed()

    # ------------------------------------------------------------- reporting
    def as_dict(self) -> Dict[str, object]:
        """Serializable tally projection (joined into FaultStats)."""
        mean = (
            sum(self.recovery_durations) / len(self.recovery_durations)
            if self.recovery_durations
            else 0.0
        )
        return {
            "manager_crashes": self.manager_crashes,
            "manager_recoveries": self.recoveries,
            "recovery_seconds_mean": mean,
            "leases_at_crash": self.leases_at_crash,
            "leases_readopted": self.leases_readopted,
            "leases_expired": self.leases_expired,
            "zombies_reclaimed": self.zombies_reclaimed,
            "zombies_surviving": self.zombies_surviving,
            "lease_renewals": self.lease_renewals,
            "wal_entries": self.log.entries_total,
            "wal_lost_entries": self.wal_lost_entries,
            "wal_replay_entries": self.wal_replay_entries,
            "checkpoints_taken": self.log.checkpoints_taken,
            "rounds_stalled": self.rounds_stalled,
            "grants_refused": self.grants_refused,
            "reregistrations": self.reregistrations,
            "recovery_tasks_requeued": self.tasks_requeued,
        }
