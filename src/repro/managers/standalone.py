"""Spark standalone cluster manager — the paper's baseline.

Allocation is **static and data-unaware**: the moment an application
registers — *before any job exists, so before any input information could be
known* (§III-A) — it receives its full equal share of executors, chosen
without regard to data, and keeps exactly that set for its lifetime.

Two selection modes mirror the two behaviours Spark standalone exhibits:

* ``spread=False`` (default, used as the paper's baseline): a uniformly
  random subset of free executors — "the standalone manager randomly selects
  among all the available resources and allocates whichever set of executors
  that have sufficient computation resources" (§VI-C);
* ``spread=True``: Spark's ``spreadOut`` round-robin over worker nodes,
  maximising node coverage (used in ablations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.executor import Executor
from repro.common.errors import AllocationError
from repro.managers.base import ClusterManager
from repro.simulation.engine import Simulation
from repro.simulation.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.driver import ApplicationDriver

__all__ = ["StandaloneManager"]


class StandaloneManager(ClusterManager):
    """Static equal-share allocation at registration time."""

    name = "standalone"

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        *,
        num_apps: int,
        rng: Optional[np.random.Generator] = None,
        spread: bool = False,
        weights=None,
        timeline: Optional[Timeline] = None,
        tracer=None,
        coalesce: bool = False,
        counters=None,
        metrics=None,
    ):
        super().__init__(
            sim,
            cluster,
            num_apps=num_apps,
            weights=weights,
            timeline=timeline,
            tracer=tracer,
            coalesce=coalesce,
            counters=counters,
            metrics=metrics,
        )
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.spread = spread

    def _on_register(self, driver: "ApplicationDriver") -> None:
        quota = self.quota_of(driver.app_id)
        chosen = self._select(quota)
        if len(chosen) < min(quota, 1):
            raise AllocationError(
                f"no free executors left for {driver.app_id} "
                f"(registered apps exceed capacity?)"
            )
        for executor in chosen:
            self.grant(driver, executor)
        self.allocation_rounds += 1
        self.trace_round(
            app=driver.app_id, granted=len(chosen), quota=quota, spread=self.spread
        )

    def on_executors_changed(self) -> None:
        """Node crash/restart: replace lost executors.

        Standalone keeps its allocation static in fault-free operation, but
        a real Spark master does re-register replacement executors for an
        application after worker loss.  Model that minimally: hand free
        executors to the most executor-starved applications still below
        their quota (no data awareness, matching the baseline's character).
        """
        self._schedule_round()

    def _allocation_round(self) -> None:
        changed = True
        while changed:
            changed = False
            starved = sorted(
                self.drivers.values(), key=lambda d: (d.executor_count, d.app_id)
            )
            for driver in starved:
                if driver.executor_count >= self.quota_of(driver.app_id):
                    continue
                if driver.outstanding_tasks == 0:
                    continue
                for executor in self.free_pool():
                    if self.grant(driver, executor):
                        changed = True
                        break
                if changed:
                    break

    def _select(self, count: int) -> List[Executor]:
        free = self.free_pool()
        count = min(count, len(free))
        if count == 0:
            return []
        if not self.spread:
            picks = self.rng.choice(len(free), size=count, replace=False)
            return [free[int(i)] for i in sorted(picks)]
        # spreadOut: round-robin over nodes, one executor per node per sweep.
        by_node: dict = {}
        for executor in free:
            by_node.setdefault(executor.node_id, []).append(executor)
        chosen: List[Executor] = []
        node_order = sorted(by_node)
        start = int(self.rng.integers(len(node_order)))
        node_order = node_order[start:] + node_order[:start]
        while len(chosen) < count:
            progressed = False
            for node_id in node_order:
                stack = by_node[node_id]
                if stack:
                    chosen.append(stack.pop(0))
                    progressed = True
                    if len(chosen) >= count:
                        break
            if not progressed:
                break
        return chosen
