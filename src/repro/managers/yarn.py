"""YARN-style dynamic capacity pools — data-unaware but demand-driven.

On every job boundary the manager resizes each application's executor pool
to match its outstanding work (up to the equal-share quota), granting
whichever free executors come first and reclaiming idle surplus.  This is
the "dynamically partitions the cluster resources ... which only captures
computation resources as metrics and still lacks data awareness" behaviour
of §VII — structurally identical to Custody's resizing, minus the data
awareness, which makes it the cleanest ablation baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.managers.base import ClusterManager
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.executor import Executor
    from repro.scheduling.driver import ApplicationDriver

__all__ = ["YarnManager"]


class YarnManager(ClusterManager):
    """Demand-tracking, data-unaware executor pools."""

    name = "yarn"

    def on_job_submitted(self, driver: "ApplicationDriver", job: Job) -> None:
        if not self.admit_job(driver, job):
            return  # overloaded: round deferred until capacity recovers
        self._schedule_round()

    def on_job_finished(self, driver: "ApplicationDriver", job: Job) -> None:
        self._schedule_round()

    def on_executor_idle(self, driver: "ApplicationDriver", executor: "Executor") -> None:
        # Reclaim promptly when the app has no work left for the slot.
        if driver.outstanding_tasks < self.needed_executors(driver):
            return
        if not driver.runnable_tasks and driver.running_count == 0:
            self.revoke_idle(driver, executor)

    def on_executors_changed(self) -> None:
        """Node crash/restart: re-fit every pool to the surviving capacity."""
        self._schedule_round()

    def _allocation_round(self) -> None:
        self._resize_all()

    # ----------------------------------------------------------------- resize
    def _resize_all(self) -> None:
        """Shrink over-provisioned apps, then grow under-provisioned ones."""
        self.allocation_rounds += 1
        shrunk = 0
        grown = 0
        # Shrink first so the freed executors can serve growth below.
        for driver in self._driver_order():
            target = min(self.needed_executors(driver), self.quota_of(driver.app_id))
            surplus = driver.executor_count - target
            if surplus <= 0:
                continue
            for executor in driver.executors:
                if surplus <= 0:
                    break
                if self.revoke_idle(driver, executor):
                    surplus -= 1
                    shrunk += 1
        # Grow: first-come free executors, no data awareness.
        for driver in self._driver_order():
            target = min(self.needed_executors(driver), self.quota_of(driver.app_id))
            deficit = target - driver.executor_count
            if deficit <= 0:
                continue
            for executor in self.free_pool():
                if deficit <= 0:
                    break
                if self.grant(driver, executor):
                    deficit -= 1
                    grown += 1
        self.trace_round(
            shrunk=shrunk,
            granted=grown,
            demand_tasks=sum(d.outstanding_tasks for d in self.drivers.values()),
        )

    def _driver_order(self):
        """Deterministic round order: most under-provisioned first."""
        return sorted(
            self.drivers.values(),
            key=lambda d: (d.executor_count - self.needed_executors(d), d.app_id),
        )
