"""Metrics: locality, timings and report rendering.

Everything the paper's figures plot is computed here from finished workload
objects (and optionally the timeline):

* Fig. 7 — per-job percentage of local input tasks (mean ± std);
* Fig. 8 — average job completion time;
* Fig. 9 — average input (map) stage completion time;
* Fig. 10 — average scheduler delay of tasks;
* plus local-*job* fraction (the max-min objective) and fairness indices.
"""

from repro.metrics.collector import ExperimentMetrics, MetricsCollector, PerfCounters
from repro.metrics.locality import (
    local_job_fraction,
    locality_gain,
    per_job_locality,
)
from repro.metrics.timings import (
    average_completion_time,
    average_input_stage_time,
    average_scheduler_delay,
    makespan,
)
from repro.metrics.report import comparison_table, format_table
from repro.metrics.utilization import UtilizationReport, analyze_utilization

__all__ = [
    "ExperimentMetrics",
    "MetricsCollector",
    "PerfCounters",
    "UtilizationReport",
    "analyze_utilization",
    "average_completion_time",
    "average_input_stage_time",
    "average_scheduler_delay",
    "comparison_table",
    "format_table",
    "local_job_fraction",
    "locality_gain",
    "makespan",
    "per_job_locality",
]
