"""ExperimentMetrics: one summary object per experiment run.

Also home to :class:`PerfCounters`, the opt-in simulator performance
counters (event/recompute/flows-touched tallies plus wall-clock timings)
that the network fabric and rate engine fill in when handed an instance —
the raw material for perf-regression tracking across PRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.core.fairness import jains_index
from repro.metrics.locality import (
    local_job_fraction,
    locality_level_breakdown,
    per_job_locality,
)
from repro.metrics.timings import (
    average_completion_time,
    average_input_stage_time,
    average_scheduler_delay,
    makespan,
)
from repro.workload.application import Application
from repro.workload.job import Job

__all__ = ["ExperimentMetrics", "FaultStats", "MetricsCollector", "PerfCounters"]


@dataclass
class PerfCounters:
    """Opt-in hot-path counters for the simulator's two engine hot paths:
    the network rate machinery and the allocation control plane.

    Pass an instance to :class:`~repro.network.fabric.NetworkFabric` and the
    managers (or set ``ExperimentConfig.perf_counters=True``) and read it
    after the run.  Everything defaults to zero so the object doubles as a
    cheap accumulator across several runs.
    """

    flow_events: int = 0  #: transfer starts + cancels + completions observed
    reallocations: int = 0  #: batched end-of-instant rate flushes
    recomputes: int = 0  #: water-filling passes actually executed
    flows_touched: int = 0  #: flows re-rated across all recomputes
    links_touched: int = 0  #: links visited across all recomputes
    rate_updates: int = 0  #: transfer.set_rate calls applied (rate changed)
    recompute_seconds: float = 0.0  #: wall time inside water-filling
    realloc_seconds: float = 0.0  #: wall time inside the full flush path
    alloc_rounds: int = 0  #: manager allocation rounds executed
    alloc_rounds_coalesced: int = 0  #: same-instant round triggers absorbed
    demand_cache_hits: int = 0  #: AppDemands reused from the incremental index
    demand_cache_misses: int = 0  #: AppDemands rebuilt from live state
    alloc_seconds: float = 0.0  #: wall time inside allocation rounds
    # Round-cost breakdown: where a Custody reallocate() round spends its
    # time, plus the cyclic-GC passes that fired inside rounds — the
    # diagnostic that pinned the 32-tenant p99 tail on full collections
    # rather than on any allocation phase.
    alloc_release_seconds: float = 0.0  #: surplus release + idle-pool scan
    alloc_demand_seconds: float = 0.0  #: demand build (incl. cache lookups)
    alloc_plan_seconds: float = 0.0  #: two-level plan computation
    alloc_apply_seconds: float = 0.0  #: grant application + hint forwarding
    alloc_gc_collections: int = 0  #: cyclic-GC passes observed inside rounds

    @property
    def flows_per_recompute(self) -> float:
        """Mean affected-component size — the incrementality health metric."""
        return self.flows_touched / self.recomputes if self.recomputes else 0.0

    @property
    def demand_cache_hit_rate(self) -> float:
        """Fraction of per-round demands served from the cache."""
        total = self.demand_cache_hits + self.demand_cache_misses
        return self.demand_cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready projection (derived means included)."""
        return {
            "format_version": 1,
            "flow_events": self.flow_events,
            "reallocations": self.reallocations,
            "recomputes": self.recomputes,
            "flows_touched": self.flows_touched,
            "links_touched": self.links_touched,
            "rate_updates": self.rate_updates,
            "recompute_seconds": self.recompute_seconds,
            "realloc_seconds": self.realloc_seconds,
            "flows_per_recompute": self.flows_per_recompute,
            "alloc_rounds": self.alloc_rounds,
            "alloc_rounds_coalesced": self.alloc_rounds_coalesced,
            "demand_cache_hits": self.demand_cache_hits,
            "demand_cache_misses": self.demand_cache_misses,
            "demand_cache_hit_rate": self.demand_cache_hit_rate,
            "alloc_seconds": self.alloc_seconds,
            "alloc_release_seconds": self.alloc_release_seconds,
            "alloc_demand_seconds": self.alloc_demand_seconds,
            "alloc_plan_seconds": self.alloc_plan_seconds,
            "alloc_apply_seconds": self.alloc_apply_seconds,
            "alloc_gc_collections": self.alloc_gc_collections,
        }

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        return (
            f"flow events: {self.flow_events}   reallocations: {self.reallocations}   "
            f"recomputes: {self.recomputes}   flows/recompute: "
            f"{self.flows_per_recompute:.1f}   links touched: {self.links_touched}   "
            f"rate updates: {self.rate_updates}   "
            f"recompute wall: {self.recompute_seconds:.3f}s   "
            f"realloc wall: {self.realloc_seconds:.3f}s   "
            f"alloc rounds: {self.alloc_rounds} "
            f"(+{self.alloc_rounds_coalesced} coalesced)   "
            f"demand cache: {self.demand_cache_hit_rate:.0%} hit   "
            f"alloc wall: {self.alloc_seconds:.3f}s "
            f"(release {self.alloc_release_seconds:.3f}s / demand "
            f"{self.alloc_demand_seconds:.3f}s / plan {self.alloc_plan_seconds:.3f}s "
            f"/ apply {self.alloc_apply_seconds:.3f}s)   "
            f"gc in rounds: {self.alloc_gc_collections}"
        )


@dataclass
class FaultStats:
    """Failure-and-recovery tallies for one run under fault injection.

    Assembled by the experiment runner from the injector, the drivers and
    the manager; ``None`` on :class:`ExperimentResult` when the run had no
    fault plan.
    """

    injected: int = 0  #: fault events that fired
    tasks_requeued: int = 0  #: synchronous requeues after executor loss
    failed_attempts: int = 0  #: attempts that died mid-flight (fetch failed)
    abandoned_tasks: int = 0  #: tasks given up permanently
    data_loss_tasks: int = 0  #: abandoned because every input replica died
    blacklist_events: int = 0  #: node blacklistings across all drivers
    failed_launches: int = 0  #: grants that landed on dead/unreachable nodes
    detector_reports: int = 0  #: failed-launch reports fed to the detector
    replicas_lost: int = 0  #: disk/cache replicas wiped by faults
    replicas_restored: int = 0  #: replicas copied back by re-replication
    blocks_lost: int = 0  #: blocks whose every replica vanished
    recovery_flows: int = 0  #: modeled re-replication transfers started
    recovery_bytes: float = 0.0  #: bytes moved by recovery transfers
    transfers_failed: int = 0  #: fabric transfers aborted by faults
    mttr: Dict[str, float] = field(default_factory=dict)  #: mean repair time per kind
    # -------------------------------------------------- robustness tallies
    # All zero unless the corresponding mechanism (adaptive detector,
    # budgets, breakers, hedging, admission control) was enabled.
    detector_suspicions: int = 0  #: alive -> suspected transitions observed
    detector_false_positives: int = 0  #: declared dead while actually up
    detector_false_negatives: int = 0  #: outage healed before detection
    detector_true_positives: int = 0  #: outages correctly declared dead
    retries_denied: int = 0  #: retries refused by exhausted budgets
    hedges_launched: int = 0  #: hedged backup attempts fired
    hedges_won: int = 0  #: hedges that beat the primary attempt
    hedges_lost: int = 0  #: hedges cancelled when the primary won
    breaker_opens: int = 0  #: breaker trips (closed/half-open -> open)
    breaker_probes: int = 0  #: half-open probe launches admitted
    breaker_closes: int = 0  #: verified recoveries (half-open -> closed)
    breakers_open_at_end: int = 0  #: breakers still excluding a node at quiescence
    admission_deferred: int = 0  #: job admissions deferred under overload
    load_shed: int = 0  #: re-checks that found the overload sustained
    # ----------------------------------------------- crash-recovery tallies
    # All zero unless manager_recovery was on and a ManagerCrash fired.
    manager_crashes: int = 0  #: control-plane crashes injected
    manager_recoveries: int = 0  #: restarts that completed reconciliation
    recovery_seconds_mean: float = 0.0  #: mean crash -> allocation-resumed
    leases_readopted: int = 0  #: live leases re-adopted work-preservingly
    leases_expired: int = 0  #: leases past expiry (reclaimed or orphaned)
    zombies_reclaimed: int = 0  #: allocated executors the WAL never recorded
    zombies_surviving: int = 0  #: zombies still allocated after reconciliation
    wal_replay_entries: int = 0  #: WAL entries replayed by the last restart
    wal_lost_entries: int = 0  #: WAL tail destroyed by the flush lag
    checkpoints_taken: int = 0  #: manager state snapshots taken
    rounds_stalled: int = 0  #: round triggers dropped while down
    recovery_tasks_requeued: int = 0  #: tasks requeued by lease reclaims
    submissions_buffered: int = 0  #: jobs buffered against a down manager
    submission_retries: int = 0  #: buffered-submission retry attempts

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready projection."""
        return {
            "format_version": 1,
            "injected": self.injected,
            "tasks_requeued": self.tasks_requeued,
            "failed_attempts": self.failed_attempts,
            "abandoned_tasks": self.abandoned_tasks,
            "data_loss_tasks": self.data_loss_tasks,
            "blacklist_events": self.blacklist_events,
            "failed_launches": self.failed_launches,
            "detector_reports": self.detector_reports,
            "replicas_lost": self.replicas_lost,
            "replicas_restored": self.replicas_restored,
            "blocks_lost": self.blocks_lost,
            "recovery_flows": self.recovery_flows,
            "recovery_bytes": self.recovery_bytes,
            "transfers_failed": self.transfers_failed,
            "mttr": dict(self.mttr),
            "detector_suspicions": self.detector_suspicions,
            "detector_false_positives": self.detector_false_positives,
            "detector_false_negatives": self.detector_false_negatives,
            "detector_true_positives": self.detector_true_positives,
            "retries_denied": self.retries_denied,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "hedges_lost": self.hedges_lost,
            "breaker_opens": self.breaker_opens,
            "breaker_probes": self.breaker_probes,
            "breaker_closes": self.breaker_closes,
            "breakers_open_at_end": self.breakers_open_at_end,
            "admission_deferred": self.admission_deferred,
            "load_shed": self.load_shed,
            "manager_crashes": self.manager_crashes,
            "manager_recoveries": self.manager_recoveries,
            "recovery_seconds_mean": self.recovery_seconds_mean,
            "leases_readopted": self.leases_readopted,
            "leases_expired": self.leases_expired,
            "zombies_reclaimed": self.zombies_reclaimed,
            "zombies_surviving": self.zombies_surviving,
            "wal_replay_entries": self.wal_replay_entries,
            "wal_lost_entries": self.wal_lost_entries,
            "checkpoints_taken": self.checkpoints_taken,
            "rounds_stalled": self.rounds_stalled,
            "recovery_tasks_requeued": self.recovery_tasks_requeued,
            "submissions_buffered": self.submissions_buffered,
            "submission_retries": self.submission_retries,
        }

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        return (
            f"faults: {self.injected}   requeued: {self.tasks_requeued}   "
            f"failed attempts: {self.failed_attempts}   abandoned: "
            f"{self.abandoned_tasks} (data loss: {self.data_loss_tasks})   "
            f"dead launches: {self.failed_launches}   recovery flows: "
            f"{self.recovery_flows}"
        )


@dataclass(frozen=True)
class ExperimentMetrics:
    """All figures' raw numbers for one run."""

    finished_jobs: int
    unfinished_jobs: int
    locality_mean: float
    locality_std: float
    locality_min: float
    local_job_fraction_per_app: tuple
    avg_jct: Optional[float]
    avg_input_stage_time: Optional[float]
    avg_scheduler_delay: Optional[float]
    makespan: Optional[float]
    fairness_index: float
    per_workload_jct: Dict[str, float] = field(default_factory=dict)
    per_workload_locality: Dict[str, float] = field(default_factory=dict)
    locality_levels: Dict[str, float] = field(default_factory=dict)

    @property
    def min_local_job_fraction(self) -> float:
        """The max-min objective: worst application's local-job fraction."""
        return min(self.local_job_fraction_per_app) if self.local_job_fraction_per_app else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready projection (derived min-fraction included)."""
        return {
            "format_version": 1,
            "finished_jobs": self.finished_jobs,
            "unfinished_jobs": self.unfinished_jobs,
            "locality_mean": self.locality_mean,
            "locality_std": self.locality_std,
            "locality_min": self.locality_min,
            "local_job_fraction_per_app": list(self.local_job_fraction_per_app),
            "min_local_job_fraction": self.min_local_job_fraction,
            "avg_jct": self.avg_jct,
            "avg_input_stage_time": self.avg_input_stage_time,
            "avg_scheduler_delay": self.avg_scheduler_delay,
            "makespan": self.makespan,
            "fairness_index": self.fairness_index,
            "per_workload_jct": dict(self.per_workload_jct),
            "per_workload_locality": dict(self.per_workload_locality),
            "locality_levels": dict(self.locality_levels),
        }


class MetricsCollector:
    """Builds :class:`ExperimentMetrics` from finished applications."""

    def collect(self, apps: Iterable[Application]) -> ExperimentMetrics:
        """Summarise a finished run (all jobs should have completed)."""
        apps = list(apps)
        jobs: List[Job] = [j for app in apps for j in app.jobs]
        finished = [j for j in jobs if j.finished]
        unfinished = [j for j in jobs if not j.finished]
        localities = per_job_locality(finished)
        loc = np.asarray(localities, dtype=np.float64) if localities else np.zeros(0)
        per_app = tuple(local_job_fraction(apps))
        tasks = [t for j in finished for t in j.input_tasks]

        per_workload_jct: Dict[str, float] = {}
        per_workload_loc: Dict[str, float] = {}
        by_workload: Dict[str, List[Job]] = {}
        for job in finished:
            by_workload.setdefault(job.workload or "unknown", []).append(job)
        for name, group in sorted(by_workload.items()):
            jct = average_completion_time(group)
            if jct is not None:
                per_workload_jct[name] = jct
            fracs = per_job_locality(group)
            if fracs:
                per_workload_loc[name] = float(np.mean(fracs))

        return ExperimentMetrics(
            finished_jobs=len(finished),
            unfinished_jobs=len(unfinished),
            locality_mean=float(loc.mean()) if loc.size else 0.0,
            locality_std=float(loc.std()) if loc.size else 0.0,
            locality_min=float(loc.min()) if loc.size else 0.0,
            local_job_fraction_per_app=per_app,
            avg_jct=average_completion_time(finished),
            avg_input_stage_time=average_input_stage_time(finished),
            avg_scheduler_delay=average_scheduler_delay(tasks),
            makespan=makespan(finished),
            fairness_index=jains_index(per_app) if per_app else 1.0,
            per_workload_jct=per_workload_jct,
            per_workload_locality=per_workload_loc,
            locality_levels=locality_level_breakdown(finished),
        )
