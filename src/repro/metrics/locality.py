"""Locality metrics over finished workloads."""

from __future__ import annotations

from typing import Iterable, List

from repro.workload.application import Application
from repro.workload.job import Job

__all__ = [
    "per_job_locality",
    "local_job_fraction",
    "locality_gain",
    "locality_level_breakdown",
]


def per_job_locality(jobs: Iterable[Job]) -> List[float]:
    """Fraction of local input tasks for each finished job — Fig. 7's samples.

    A job counts once its quorum of input tasks has run (all N for a normal
    job; K for a KMN job whose surplus tasks were cancelled); the fraction
    is over the tasks that actually ran.
    """
    fractions: List[float] = []
    for job in jobs:
        frac = job.local_input_fraction
        decided = sum(1 for t in job.input_tasks if t.was_local is not None)
        if frac is not None and decided >= job.input_quorum:
            fractions.append(frac)
    return fractions


def local_job_fraction(apps: Iterable[Application]) -> List[float]:
    """Per-application fraction of perfectly-local jobs — the Eq. 6 objective."""
    result = []
    for app in apps:
        decided = [j for j in app.jobs if j.is_local_job is not None]
        if decided:
            result.append(sum(1 for j in decided if j.is_local_job) / len(decided))
        else:
            result.append(0.0)
    return result


def locality_level_breakdown(jobs: Iterable[Job]) -> dict:
    """Fraction of executed input tasks at each locality level.

    Returns ``{"node": x, "rack": y, "any": z}`` summing to 1 over executed
    input tasks (empty dict when nothing ran).  Rack shares are only
    non-zero on multi-rack clusters.
    """
    counts = {"node": 0, "rack": 0, "any": 0}
    total = 0
    for job in jobs:
        for task in job.input_tasks:
            if task.locality_level is not None:
                counts[task.locality_level] += 1
                total += 1
    if total == 0:
        return {}
    return {level: count / total for level, count in counts.items()}


def locality_gain(custody: float, baseline: float) -> float:
    """Relative improvement the paper reports: (c − b) / b.

    Defined as 0 when the baseline is already 0 and custody is too;
    infinite baseline-zero improvements are reported as ``inf``.
    """
    if baseline == 0.0:
        return 0.0 if custody == 0.0 else float("inf")
    return (custody - baseline) / baseline
