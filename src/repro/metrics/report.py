"""Plain-text report rendering for benches and examples.

Benches print paper-style rows ("Custody vs Spark, workload X, cluster N:
locality a% vs b%, gain c%"); these helpers keep the formatting in one
place so every bench and example reads the same.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.metrics.collector import ExperimentMetrics

__all__ = ["format_table", "comparison_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned fixed-width table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def comparison_table(
    results: Dict[str, ExperimentMetrics],
    *,
    title: Optional[str] = None,
) -> str:
    """Side-by-side summary of several runs (key = policy name)."""
    headers = [
        "policy",
        "locality%",
        "±std",
        "local jobs%(min app)",
        "avg JCT (s)",
        "input stage (s)",
        "sched delay (s)",
        "makespan (s)",
        "fairness",
    ]
    rows = []
    for name, m in results.items():
        rows.append(
            [
                name,
                100.0 * m.locality_mean,
                100.0 * m.locality_std,
                100.0 * m.min_local_job_fraction,
                m.avg_jct,
                m.avg_input_stage_time,
                m.avg_scheduler_delay,
                m.makespan,
                m.fairness_index,
            ]
        )
    return format_table(headers, rows, title=title)
