"""Timing metrics: JCT, input-stage duration, scheduler delay, makespan."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.workload.job import Job
from repro.workload.task import Task

__all__ = [
    "average_completion_time",
    "average_input_stage_time",
    "average_scheduler_delay",
    "makespan",
]


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def average_completion_time(jobs: Iterable[Job]) -> Optional[float]:
    """Mean job completion time over finished jobs — Fig. 8's metric."""
    return _mean([j.completion_time for j in jobs if j.completion_time is not None])


def average_input_stage_time(jobs: Iterable[Job]) -> Optional[float]:
    """Mean input (map) stage duration over finished jobs — Fig. 9's metric."""
    return _mean([j.input_stage_time for j in jobs if j.input_stage_time is not None])


def average_scheduler_delay(tasks: Iterable[Task], *, input_only: bool = True) -> Optional[float]:
    """Mean submission-to-launch delay — Fig. 10's metric.

    The paper measures the delay delay-scheduling induces on tasks waiting
    for suitable executors; by default only input tasks are counted (shuffle
    tasks have no locality wait).
    """
    delays = [
        t.scheduler_delay
        for t in tasks
        if t.scheduler_delay is not None and (t.is_input or not input_only)
    ]
    return _mean(delays)


def makespan(jobs: Iterable[Job]) -> Optional[float]:
    """First submission to last completion across all finished jobs."""
    submitted = [j.submitted_at for j in jobs if j.submitted_at is not None]
    finished = [j.finished_at for j in jobs if j.finished_at is not None]
    if not submitted or not finished:
        return None
    return max(finished) - min(submitted)
