"""Utilization analysis from a recorded timeline.

Answers the operator questions the paper's §VI discussion touches on
(cluster efficiency under offer rejection, executor churn):

* **slot utilization** — busy slot-seconds divided by capacity over the
  trace span;
* **executor churn** — grants and releases per application;
* **concurrency profile** — running-task percentiles over time.

All derived purely from :class:`~repro.simulation.timeline.Timeline`
records (``task.start``/``task.finish``/``executor.grant``/
``executor.release``), so any run with ``timeline_enabled=True`` can be
analysed after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.simulation.timeline import Timeline

__all__ = ["UtilizationReport", "analyze_utilization"]


@dataclass(frozen=True)
class UtilizationReport:
    """Aggregate utilization figures for one run."""

    span: float
    total_slots: int
    busy_slot_seconds: float
    slot_utilization: float
    peak_concurrency: int
    mean_concurrency: float
    grants_per_app: Dict[str, int] = field(default_factory=dict)
    releases_per_app: Dict[str, int] = field(default_factory=dict)
    concurrency_series: Tuple[float, ...] = ()

    def sparkline(self, width: int = 40) -> str:
        """A unicode sparkline of running-task concurrency over time."""
        if not self.concurrency_series:
            return ""
        blocks = " ▁▂▃▄▅▆▇█"
        series = self.concurrency_series
        if len(series) > width:
            # Down-sample by averaging fixed-size chunks.
            chunk = len(series) / width
            series = tuple(
                sum(series[int(i * chunk) : max(int((i + 1) * chunk), int(i * chunk) + 1)])
                / max(len(series[int(i * chunk) : max(int((i + 1) * chunk), int(i * chunk) + 1)]), 1)
                for i in range(width)
            )
        top = max(max(series), 1e-12)
        return "".join(blocks[int(round(v / top * (len(blocks) - 1)))] for v in series)

    def describe(self) -> str:
        """Human-readable summary."""
        lines = [
            f"span:             {self.span:.1f} s",
            f"slot utilization: {100 * self.slot_utilization:.1f}% "
            f"({self.busy_slot_seconds:.0f} busy slot-seconds / {self.total_slots} slots)",
            f"concurrency:      peak {self.peak_concurrency}, "
            f"mean {self.mean_concurrency:.1f} running tasks",
        ]
        spark = self.sparkline()
        if spark:
            lines.append(f"profile:          |{spark}|")
        for app in sorted(self.grants_per_app):
            lines.append(
                f"  {app}: {self.grants_per_app[app]} grants, "
                f"{self.releases_per_app.get(app, 0)} releases"
            )
        return "\n".join(lines)


def analyze_utilization(timeline: Timeline, total_slots: int) -> UtilizationReport:
    """Build a :class:`UtilizationReport` from a timeline.

    ``total_slots`` is the cluster's concurrent task capacity
    (``ClusterConfig.total_slots``).  Raises when the timeline holds no task
    records (nothing ran, or recording was disabled).
    """
    if total_slots < 1:
        raise ConfigurationError(f"total_slots must be >= 1, got {total_slots}")
    starts: Dict[Tuple[str, Optional[str]], float] = {}
    intervals: List[Tuple[float, float]] = []
    grants: Dict[str, int] = {}
    releases: Dict[str, int] = {}
    for record in timeline:
        if record.kind in ("task.start", "task.speculate"):
            # Speculative attempts occupy slots too; keyed per attempt via
            # (task, executor) so clones do not collide.
            starts[(record.subject, record.get("executor"))] = record.time
        elif record.kind == "task.finish":
            # Match the winning attempt; losers' starts are dropped below.
            keys = [k for k in starts if k[0] == record.subject]
            for key in keys:
                intervals.append((starts.pop(key), record.time))
        elif record.kind == "executor.grant":
            app = record.get("app", "?")
            grants[app] = grants.get(app, 0) + 1
        elif record.kind == "executor.release":
            app = record.get("app", "?")
            releases[app] = releases.get(app, 0) + 1
    if not intervals:
        raise ConfigurationError("timeline holds no completed task records")

    begin = min(t0 for t0, _ in intervals)
    end = max(t1 for _, t1 in intervals)
    span = max(end - begin, 1e-12)
    busy = sum(t1 - t0 for t0, t1 in intervals)

    # Concurrency profile via a sweep over start/stop events, accumulating
    # both the time-weighted mean and a bucketised series for the sparkline.
    events = sorted(
        [(t0, 1) for t0, _ in intervals] + [(t1, -1) for _, t1 in intervals]
    )
    n_buckets = 100
    bucket_width = span / n_buckets
    buckets = [0.0] * n_buckets
    level = 0
    peak = 0
    weighted = 0.0
    last_t: Optional[float] = None
    for t, delta in events:
        if last_t is not None and t > last_t:
            weighted += level * (t - last_t)
            # Spread `level` over the buckets the interval [last_t, t) covers.
            lo = (last_t - begin) / bucket_width
            hi = (t - begin) / bucket_width
            b0, b1 = int(lo), min(int(hi), n_buckets - 1)
            for b in range(b0, b1 + 1):
                seg_lo = max(lo, b)
                seg_hi = min(hi, b + 1)
                if seg_hi > seg_lo:
                    buckets[b] += level * (seg_hi - seg_lo)
        level += delta
        peak = max(peak, level)
        last_t = t
    return UtilizationReport(
        span=span,
        total_slots=total_slots,
        busy_slot_seconds=busy,
        slot_utilization=min(busy / (span * total_slots), 1.0),
        peak_concurrency=peak,
        mean_concurrency=weighted / span,
        grants_per_app=grants,
        releases_per_app=releases,
        # Bucket coordinates are in index units (seconds / bucket_width), so
        # the accumulated level×(index-units) is already the bucket's mean
        # running-task level.
        concurrency_series=tuple(buckets),
    )
