"""Flow-level network model.

Remote block reads are the mechanism behind every number in the paper: a
non-local input task must fetch its 128 MB block over the network, which is
slower than the local SSD and *contended*.  We model the cluster network at
flow granularity:

* each node has an uplink and a downlink capacity (the paper's Linode nodes:
  40 Gbps down / 2 Gbps up, §VI-A);
* every active transfer receives its **max-min fair share** across the two
  links it traverses (progressive filling / water-filling);
* rates are recomputed whenever a flow starts or finishes, and completion
  events are rescheduled from the bytes still outstanding;
* all flow changes of one simulated instant batch into a single recompute,
  and the default :class:`~repro.network.rate_engine.RateEngine` re-rates
  only the affected connected component of the link-flow graph
  (``maxmin_rates`` remains the from-scratch reference implementation).

This is the standard fluid approximation used by flow-level datacenter
simulators; it captures contention and elasticity without per-packet cost.
"""

from repro.network.bandwidth import LinkCapacities, maxmin_rates
from repro.network.fabric import NetworkFabric
from repro.network.rate_engine import RateEngine
from repro.network.transfer import Transfer

__all__ = ["LinkCapacities", "NetworkFabric", "RateEngine", "Transfer", "maxmin_rates"]
