"""Max-min fair rate allocation via progressive filling.

Pure functions, no simulator state: given a set of flows (each identified by
its source and destination node) and per-node uplink/downlink capacities,
compute each flow's max-min fair rate.  A flow traverses exactly two
"links" — its source's uplink and its destination's downlink (the core
fabric is assumed non-blocking, which matches both the paper's Linode
virtual network and modern full-bisection datacenter fabrics).

Algorithm (progressive filling): repeatedly find the most-congested link
(the one whose remaining capacity divided by its unfrozen flow count is
smallest), freeze all its unfrozen flows at that fair share, subtract what
they consume everywhere, and repeat.  Runs in O(L^2) for L links, with the
inner accounting vectorised over flows — fast enough for the few thousand
concurrent flows these experiments produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError

__all__ = ["LinkCapacities", "maxmin_rates", "maxmin_rates_vectorized"]


@dataclass
class LinkCapacities:
    """Per-node uplink/downlink capacities in bytes/second."""

    uplink: Dict[str, float] = field(default_factory=dict)
    downlink: Dict[str, float] = field(default_factory=dict)

    def add_node(self, node_id: str, uplink: float, downlink: float) -> None:
        """Register a node's NIC capacities."""
        if uplink <= 0 or downlink <= 0:
            raise ConfigurationError(
                f"node {node_id!r}: NIC capacities must be positive "
                f"(got up={uplink}, down={downlink})"
            )
        self.uplink[node_id] = float(uplink)
        self.downlink[node_id] = float(downlink)

    def __contains__(self, node_id: str) -> bool:
        # Both directions must be registered: the maps can drift apart only
        # through direct mutation, but membership must still mean "safe to
        # route a flow through this node in either direction".
        return node_id in self.uplink and node_id in self.downlink


def maxmin_rates(
    flows: Sequence[Tuple[str, str]],
    capacities: LinkCapacities,
) -> List[float]:
    """Max-min fair rates (bytes/s) for ``flows`` = [(src_node, dst_node), ...].

    Flows whose source equals their destination are loopback (a remote read
    that happens to hit a local replica holder through the network path is
    never modelled this way — callers treat those as local reads) and get an
    effectively infinite rate; they are included for interface uniformity.

    Raises :class:`ConfigurationError` if a flow references an unregistered
    node.
    """
    n = len(flows)
    if n == 0:
        return []

    # Build the link incidence: link index -> capacity; flow -> (up_link, down_link).
    link_index: Dict[Tuple[str, str], int] = {}
    link_caps: List[float] = []

    def _link(kind: str, node: str) -> int:
        key = (kind, node)
        idx = link_index.get(key)
        if idx is None:
            caps = capacities.uplink if kind == "up" else capacities.downlink
            if node not in caps:
                raise ConfigurationError(f"flow references unregistered node {node!r}")
            idx = len(link_caps)
            link_index[key] = idx
            link_caps.append(caps[node])
        return idx

    flow_links = np.empty((n, 2), dtype=np.int64)
    loopback = np.zeros(n, dtype=bool)
    for i, (src, dst) in enumerate(flows):
        if src == dst:
            loopback[i] = True
            # Still validate the node exists; assign both to its uplink so the
            # arrays stay rectangular, but the flow is frozen immediately below.
            idx = _link("up", src)
            flow_links[i, 0] = idx
            flow_links[i, 1] = idx
        else:
            flow_links[i, 0] = _link("up", src)
            flow_links[i, 1] = _link("down", dst)

    caps = np.asarray(link_caps, dtype=np.float64)
    rates = np.zeros(n, dtype=np.float64)
    frozen = loopback.copy()
    rates[loopback] = np.inf

    remaining = caps.copy()
    while not frozen.all():
        active = ~frozen
        # Flows per link among the active set (each non-loopback flow touches
        # its up and down link once; a flow may touch the same link twice only
        # in the loopback case, already frozen).
        counts = np.bincount(flow_links[active].ravel(), minlength=len(caps)).astype(
            np.float64
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            shares = np.where(counts > 0, remaining / counts, np.inf)
        bottleneck = int(np.argmin(shares))
        share = shares[bottleneck]
        if not np.isfinite(share):
            break  # no active flow touches any link (cannot happen in practice)
        # Freeze every active flow crossing the bottleneck at `share`.
        crosses = active & (
            (flow_links[:, 0] == bottleneck) | (flow_links[:, 1] == bottleneck)
        )
        rates[crosses] = share
        frozen |= crosses
        # Subtract their consumption from both links they traverse.
        consumed = np.zeros_like(remaining)
        np.add.at(consumed, flow_links[crosses, 0], share)
        np.add.at(consumed, flow_links[crosses, 1], share)
        # Loopback-frozen rows never reach here; double-count is impossible.
        remaining = np.maximum(remaining - consumed, 0.0)

    return rates.tolist()


def maxmin_rates_vectorized(
    flows: Sequence[Tuple[str, str]],
    capacities: LinkCapacities,
) -> List[float]:
    """Bitwise-identical :func:`maxmin_rates` with incremental bookkeeping.

    Progressive filling freezes one bottleneck per iteration; the reference
    rescans the whole active set to rebuild per-link flow counts each time —
    O(flows) per iteration on top of the O(links) share scan.  This variant
    maintains the count vector incrementally: counts start as one bincount
    over all non-loopback flows and each iteration subtracts exactly the
    frozen flows' incidence.  Counts are integers (stored as float64 and
    well below 2**53), so the subtraction is exact, ``remaining / counts``
    sees bit-identical operands, and the freeze order — hence every rate —
    matches the reference exactly.  The equivalence suite pins this.
    """
    n = len(flows)
    if n == 0:
        return []

    link_index: Dict[Tuple[str, str], int] = {}
    link_caps: List[float] = []

    def _link(kind: str, node: str) -> int:
        key = (kind, node)
        idx = link_index.get(key)
        if idx is None:
            caps = capacities.uplink if kind == "up" else capacities.downlink
            if node not in caps:
                raise ConfigurationError(f"flow references unregistered node {node!r}")
            idx = len(link_caps)
            link_index[key] = idx
            link_caps.append(caps[node])
        return idx

    flow_links = np.empty((n, 2), dtype=np.int64)
    loopback = np.zeros(n, dtype=bool)
    for i, (src, dst) in enumerate(flows):
        if src == dst:
            loopback[i] = True
            idx = _link("up", src)
            flow_links[i, 0] = idx
            flow_links[i, 1] = idx
        else:
            flow_links[i, 0] = _link("up", src)
            flow_links[i, 1] = _link("down", dst)

    caps = np.asarray(link_caps, dtype=np.float64)
    rates = np.zeros(n, dtype=np.float64)
    frozen = loopback.copy()
    rates[loopback] = np.inf

    remaining = caps.copy()
    counts = np.bincount(flow_links[~frozen].ravel(), minlength=len(caps)).astype(
        np.float64
    )
    active_flows = n - int(frozen.sum())
    while active_flows:
        with np.errstate(divide="ignore", invalid="ignore"):
            shares = np.where(counts > 0, remaining / counts, np.inf)
        bottleneck = int(np.argmin(shares))
        share = shares[bottleneck]
        if not np.isfinite(share):
            break
        crosses = ~frozen & (
            (flow_links[:, 0] == bottleneck) | (flow_links[:, 1] == bottleneck)
        )
        rates[crosses] = share
        frozen |= crosses
        consumed = np.zeros_like(remaining)
        np.add.at(consumed, flow_links[crosses, 0], share)
        np.add.at(consumed, flow_links[crosses, 1], share)
        remaining = np.maximum(remaining - consumed, 0.0)
        # Retire the frozen flows from the counts: exact integer arithmetic
        # in float64, so the next iteration's shares match the reference's
        # from-scratch bincount bit for bit.
        counts -= np.bincount(
            flow_links[crosses].ravel(), minlength=len(caps)
        ).astype(np.float64)
        active_flows -= int(crosses.sum())

    return rates.tolist()
