"""The cluster network: starts transfers, reallocates rates, fires completions.

On every flow arrival or departure the fabric recomputes the global max-min
fair allocation (:func:`repro.network.bandwidth.maxmin_rates`), settles each
active transfer's progress, and reschedules the earliest completion event.
A single pending completion event is maintained (for the flow with the
smallest ETA); when it fires, any other flows that finish at the same instant
are also completed, then rates are recomputed once.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.ids import IdFactory
from repro.network.bandwidth import LinkCapacities, maxmin_rates
from repro.network.transfer import Transfer
from repro.simulation.engine import EventHandle, Simulation
from repro.simulation.timeline import Timeline

__all__ = ["NetworkFabric"]

#: Completions within this many seconds of the earliest ETA are batched into
#: one event, avoiding event storms from floating-point near-ties.
_ETA_EPSILON = 1e-9


class NetworkFabric:
    """Flow-level network shared by all worker nodes.

    Parameters
    ----------
    sim:
        The owning simulation.
    timeline:
        Optional trace sink; transfer start/finish records are written to it.
    """

    def __init__(self, sim: Simulation, timeline: Optional[Timeline] = None):
        self.sim = sim
        self.timeline = timeline
        self.capacities = LinkCapacities()
        self._active: Dict[str, Transfer] = {}
        self._ids = IdFactory(width=6)
        self._completion_event: Optional[EventHandle] = None
        self.completed_count = 0
        self.total_bytes_moved = 0.0

    # ------------------------------------------------------------------ setup
    def add_node(self, node_id: str, uplink: float, downlink: float) -> None:
        """Register a node's NIC before any transfer touches it."""
        self.capacities.add_node(node_id, uplink, downlink)

    # --------------------------------------------------------------- transfers
    @property
    def active_transfers(self) -> int:
        """Number of flows currently in flight."""
        return len(self._active)

    def start_transfer(self, src: str, dst: str, size: float) -> Transfer:
        """Begin moving ``size`` bytes from ``src`` to ``dst``.

        Returns the :class:`Transfer`; wait on ``transfer.done`` for
        completion.  ``src == dst`` is rejected — local reads never cross the
        fabric (model them with the node's disk, not the NIC).
        """
        if src == dst:
            raise ConfigurationError(
                f"transfer {src!r}->{dst!r} is local; use disk read time instead"
            )
        transfer = Transfer(self.sim, self._ids.next("xfer"), src, dst, size)
        self._active[transfer.transfer_id] = transfer
        if self.timeline is not None:
            self.timeline.record(
                "transfer.start", transfer.transfer_id, src=src, dst=dst, size=size
            )
        self._reallocate()
        return transfer

    def cancel_transfer(self, transfer: Transfer) -> None:
        """Abort an in-flight transfer (its ``done`` signal never triggers)."""
        if transfer.transfer_id in self._active:
            del self._active[transfer.transfer_id]
            if self.timeline is not None:
                self.timeline.record("transfer.cancel", transfer.transfer_id)
            self._reallocate()

    # ------------------------------------------------------------- reallocation
    def _reallocate(self) -> None:
        """Recompute fair rates for all active flows and re-arm completion."""
        now = self.sim.now
        transfers = list(self._active.values())
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not transfers:
            return
        flows = [(t.src, t.dst) for t in transfers]
        rates = maxmin_rates(flows, self.capacities)
        min_eta = float("inf")
        for transfer, rate in zip(transfers, rates):
            transfer.set_rate(now, rate)
            eta = transfer.eta(now)
            if eta < min_eta:
                min_eta = eta
        if min_eta == float("inf"):
            return
        self._completion_event = self.sim.schedule(min_eta, self._on_completion)

    def _on_completion(self) -> None:
        """Finish every flow whose residual hit zero, then reallocate once."""
        now = self.sim.now
        finished: List[Transfer] = [
            t for t in self._active.values() if t.eta(now) <= _ETA_EPSILON
        ]
        for transfer in finished:
            del self._active[transfer.transfer_id]
            transfer.settle(now)
            transfer.finished_at = now
            self.completed_count += 1
            self.total_bytes_moved += transfer.size
            if self.timeline is not None:
                self.timeline.record(
                    "transfer.finish",
                    transfer.transfer_id,
                    duration=now - transfer.started_at,
                )
            transfer.done.trigger(transfer)
        self._completion_event = None
        self._reallocate()
