"""The cluster network: starts transfers, reallocates rates, fires completions.

Flow changes (arrivals, departures, cancellations) do not recompute rates
immediately: the fabric registers one deferred *flush* per simulated instant
(:meth:`repro.simulation.engine.Simulation.defer`), so any number of
same-timestamp changes settle in a single rate recompute.  This is exact —
a rate held for zero simulated time moves zero bytes — and removes the
event-storm recompute cost of large shuffle fan-outs.

The flush itself runs one of two allocators:

* ``engine="incremental"`` (default): a persistent
  :class:`~repro.network.rate_engine.RateEngine` re-rates only the connected
  component(s) of the link-flow graph affected by the batch;
* ``engine="reference"``: the original recompute-from-scratch
  :func:`~repro.network.bandwidth.maxmin_rates` path, kept as the
  behaviourally identical oracle for golden-trace and equivalence tests.

Either way the fabric then applies only the rates that actually changed and
tracks completions in a lazy min-heap of absolute finish times, so an event
touching k flows costs O(k log n) rather than O(n).  A single pending
completion event is maintained (for the earliest finisher); when it fires,
flows finishing within :data:`_ETA_EPSILON` of it complete together, then
rates are recomputed once.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, TransferFailedError
from repro.common.ids import IdFactory
from repro.network.bandwidth import (
    LinkCapacities,
    maxmin_rates,
    maxmin_rates_vectorized,
)
from repro.network.rate_engine import RateEngine
from repro.network.transfer import Transfer
from repro.obs.events import TransferSpan
from repro.obs.metrics import (
    NULL_METRICS,
    RATE_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.engine import EventHandle, Simulation
from repro.simulation.timeline import Timeline

__all__ = ["NetworkFabric"]

#: Completions within this many seconds of the earliest ETA are batched into
#: one event, avoiding event storms from floating-point near-ties.
_ETA_EPSILON = 1e-9

#: Heap entry: (absolute finish time, push sequence, validity token, transfer).
_HeapEntry = Tuple[float, int, int, Transfer]


class NetworkFabric:
    """Flow-level network shared by all worker nodes.

    Parameters
    ----------
    sim:
        The owning simulation.
    timeline:
        Optional trace sink; transfer start/finish records are written to it.
    engine:
        ``"incremental"`` (default), ``"reference"`` or ``"vectorized"``
        (incremental dirty-component machinery with the numpy-bookkeeping
        water-filling kernel) — see module docstring.
    counters:
        Optional :class:`~repro.metrics.collector.PerfCounters` accumulator.
    """

    def __init__(
        self,
        sim: Simulation,
        timeline: Optional[Timeline] = None,
        engine: str = "incremental",
        counters: Optional[object] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if engine not in ("incremental", "reference", "vectorized"):
            raise ConfigurationError(
                f"engine must be 'incremental', 'reference' or 'vectorized', "
                f"got {engine!r}"
            )
        self.sim = sim
        self.timeline = timeline
        self.counters = counters
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        _events = self.metrics.counter(
            "net_transfers_total",
            "Transfer lifecycle events by kind.",
            ("event",),
        )
        self._m_xfer_start = _events.labels(event="start")
        self._m_xfer_complete = _events.labels(event="complete")
        self._m_xfer_cancel = _events.labels(event="cancel")
        self._m_xfer_fail = _events.labels(event="fail")
        self._m_xfer_stall = _events.labels(event="stall")
        self._m_xfer_unstall = _events.labels(event="unstall")
        self._m_bytes = self.metrics.counter(
            "net_bytes_moved_total", "Bytes delivered by completed transfers."
        )
        self._m_rate_hist = self.metrics.histogram(
            "net_transfer_rate_bytes_per_sec",
            "Achieved mean transfer rate (size / flow lifetime).",
            buckets=RATE_BUCKETS,
        )
        # The reference allocator recomputes from scratch inside _flush, so
        # the fabric owns its engine-labelled instruments; the incremental
        # RateEngine binds (and fills) the engine="incremental" series.
        self._m_recomputes = self.metrics.counter(
            "net_rate_recomputes_total",
            "Water-filling passes executed, by allocator engine.",
            ("engine",),
        ).labels(engine=engine)
        self._m_component = self.metrics.histogram(
            "net_dirty_component_flows",
            "Flows re-rated per recompute (dirty-component size).",
            ("engine",),
            buckets=SIZE_BUCKETS,
        ).labels(engine=engine)
        self.capacities = LinkCapacities()
        self.engine_mode = engine
        # "vectorized" is the incremental engine with the numpy-bookkeeping
        # water-filling kernel — same dirty-component machinery, bitwise
        # identical rates (pinned by the equivalence suites).
        self._engine: Optional[RateEngine] = (
            RateEngine(
                self.capacities,
                counters=counters,
                tracer=self.tracer,
                metrics=self.metrics,
                kernel=maxmin_rates_vectorized if engine == "vectorized" else None,
                engine_label=engine,
            )
            if engine in ("incremental", "vectorized")
            else None
        )
        self._active: Dict[str, Transfer] = {}
        self._ids = IdFactory(width=6)
        self._completion_event: Optional[EventHandle] = None
        self._eta_heap: List[_HeapEntry] = []
        self._heap_seq = 0
        self._token: Dict[str, int] = {}
        self.completed_count = 0
        self.total_bytes_moved = 0.0
        #: base (undegraded) NIC capacities, per node
        self._base_uplink: Dict[str, float] = {}
        self._base_downlink: Dict[str, float] = {}
        #: optional (src, dst) -> bool callback installed by a fault injector
        self._reachable: Optional[Callable[[str, str], bool]] = None
        self._connect_timeout = 30.0
        #: transfers waiting out a partition: id -> (transfer, timeout handle)
        self._stalled: Dict[str, Tuple[Transfer, EventHandle]] = {}
        self.failed_count = 0

    # ------------------------------------------------------------------ setup
    def add_node(self, node_id: str, uplink: float, downlink: float) -> None:
        """Register a node's NIC before any transfer touches it."""
        self.capacities.add_node(node_id, uplink, downlink)
        self._base_uplink[node_id] = float(uplink)
        self._base_downlink[node_id] = float(downlink)

    def set_reachability(
        self,
        reachable: Optional[Callable[[str, str], bool]],
        *,
        connect_timeout: float = 30.0,
    ) -> None:
        """Install a fault injector's reachability oracle.

        When set, a transfer between mutually unreachable endpoints does not
        enter the rate allocation: it *stalls* at rate 0 and fails with
        :class:`TransferFailedError` after ``connect_timeout`` seconds unless
        the partition heals first (:meth:`refresh_stalled`).  ``None``
        restores the default fully-connected fabric.
        """
        if connect_timeout <= 0:
            raise ConfigurationError(
                f"connect_timeout must be positive, got {connect_timeout}"
            )
        self._reachable = reachable
        self._connect_timeout = connect_timeout

    def set_link_scale(self, node_id: str, scale: float) -> None:
        """Scale a node's NIC to ``scale`` × its base capacity (degradation).

        Mutates the shared :class:`LinkCapacities` in place so both the
        incremental and the reference allocator see the new capacity, dirties
        the node's links, and re-rates at the end of the instant.
        """
        if node_id not in self._base_uplink:
            raise ConfigurationError(f"unknown node {node_id!r}")
        if scale <= 0:
            raise ConfigurationError(f"link scale must be positive, got {scale}")
        self.capacities.uplink[node_id] = self._base_uplink[node_id] * scale
        self.capacities.downlink[node_id] = self._base_downlink[node_id] * scale
        if self._engine is not None:
            self._engine.touch_node(node_id)
        self.sim.defer(self, self._flush)

    # --------------------------------------------------------------- transfers
    @property
    def active_transfers(self) -> int:
        """Number of flows currently in flight."""
        return len(self._active)

    def aggregate_rate(self) -> float:
        """Sum of currently allocated flow rates (bytes/s) — sampler probe."""
        return sum(t.rate for t in self._active.values())

    def _trace_transfer(self, transfer: Transfer, outcome: str) -> None:
        """Emit a finished/failed flow's lifetime as a TransferSpan."""
        if not self.tracer.enabled:
            return
        now = self.sim.now
        self.tracer.emit(
            TransferSpan(
                transfer.started_at,
                dur=now - transfer.started_at,
                track=transfer.src,
                lane=f"nic:{transfer.src}",
                attrs={
                    "src": transfer.src,
                    "dst": transfer.dst,
                    "size": transfer.size,
                    "outcome": outcome,
                },
            )
        )

    def start_transfer(self, src: str, dst: str, size: float) -> Transfer:
        """Begin moving ``size`` bytes from ``src`` to ``dst``.

        Returns the :class:`Transfer`; wait on ``transfer.done`` for
        completion.  ``src == dst`` is rejected — local reads never cross the
        fabric (model them with the node's disk, not the NIC).  The rate is
        assigned when the current instant's change batch flushes, so it reads
        as 0 until the simulation processes this timestamp.
        """
        if src == dst:
            raise ConfigurationError(
                f"transfer {src!r}->{dst!r} is local; use disk read time instead"
            )
        transfer = Transfer(self.sim, self._ids.next("xfer"), src, dst, size)
        if self._reachable is not None and not self._reachable(src, dst):
            # Partitioned endpoints: the connection never establishes.  The
            # transfer stalls outside the rate allocation and fails at the
            # connect timeout unless the partition heals first.
            for node in (src, dst):
                if node not in self.capacities:
                    raise ConfigurationError(
                        f"flow references unregistered node {node!r}"
                    )
            handle = self.sim.schedule(
                self._connect_timeout, self._on_connect_timeout, transfer
            )
            self._stalled[transfer.transfer_id] = (transfer, handle)
            if self.timeline is not None:
                self.timeline.record(
                    "transfer.stall", transfer.transfer_id, src=src, dst=dst
                )
            self.tracer.instant(
                "net.stall", "network", track=src, lane=f"nic:{src}", dst=dst
            )
            self._m_xfer_stall.inc()
            if self.counters is not None:
                self.counters.flow_events += 1
            return transfer
        if self._engine is not None:
            self._engine.add_flow(transfer.transfer_id, src, dst)
        else:
            # The reference path validates lazily inside maxmin_rates; keep
            # the fail-fast contract identical across modes.
            for node in (src, dst):
                if node not in self.capacities:
                    raise ConfigurationError(
                        f"flow references unregistered node {node!r}"
                    )
        self._active[transfer.transfer_id] = transfer
        self._m_xfer_start.inc()
        if self.timeline is not None:
            self.timeline.record(
                "transfer.start", transfer.transfer_id, src=src, dst=dst, size=size
            )
        if self.counters is not None:
            self.counters.flow_events += 1
        self.sim.defer(self, self._flush)
        return transfer

    def cancel_transfer(self, transfer: Transfer) -> None:
        """Abort an in-flight transfer (its ``done`` signal never triggers)."""
        if transfer.transfer_id in self._active:
            del self._active[transfer.transfer_id]
            self._token.pop(transfer.transfer_id, None)
            if self._engine is not None:
                self._engine.remove_flow(transfer.transfer_id)
            self._m_xfer_cancel.inc()
            if self.timeline is not None:
                self.timeline.record("transfer.cancel", transfer.transfer_id)
            if self.counters is not None:
                self.counters.flow_events += 1
            self.sim.defer(self, self._flush)
        elif transfer.transfer_id in self._stalled:
            _, handle = self._stalled.pop(transfer.transfer_id)
            handle.cancel()
            self._m_xfer_cancel.inc()
            if self.timeline is not None:
                self.timeline.record("transfer.cancel", transfer.transfer_id)
            if self.counters is not None:
                self.counters.flow_events += 1

    # ----------------------------------------------------------------- faults
    def _on_connect_timeout(self, transfer: Transfer) -> None:
        """A stalled transfer's connect timeout elapsed without a heal."""
        if transfer.transfer_id in self._stalled:
            del self._stalled[transfer.transfer_id]
            self._record_failure(transfer, "connect-timeout")

    def _record_failure(self, transfer: Transfer, cause: str) -> None:
        self.failed_count += 1
        self._m_xfer_fail.inc()
        if self.timeline is not None:
            self.timeline.record("transfer.fail", transfer.transfer_id, cause=cause)
        if self.counters is not None:
            self.counters.flow_events += 1
        self._trace_transfer(transfer, cause)
        transfer.done.fail(TransferFailedError(transfer.transfer_id, cause))

    def fail_transfer(self, transfer: Transfer, cause: str = "aborted") -> None:
        """Abort a transfer *with* failure delivery: waiters on
        ``transfer.done`` receive :class:`TransferFailedError`."""
        if transfer.transfer_id in self._active:
            del self._active[transfer.transfer_id]
            self._token.pop(transfer.transfer_id, None)
            if self._engine is not None:
                self._engine.remove_flow(transfer.transfer_id)
            self.sim.defer(self, self._flush)
            self._record_failure(transfer, cause)
        elif transfer.transfer_id in self._stalled:
            _, handle = self._stalled.pop(transfer.transfer_id)
            handle.cancel()
            self._record_failure(transfer, cause)

    def fail_where(self, predicate: Callable[[Transfer], bool], cause: str) -> int:
        """Fail every in-flight or stalled transfer matching ``predicate``.

        Returns the number of transfers failed.  Iteration is over a
        snapshot in insertion (= start) order, so the failure cascade is
        deterministic.
        """
        victims = [t for t in self._active.values() if predicate(t)]
        victims += [t for t, _ in self._stalled.values() if predicate(t)]
        for transfer in victims:
            self.fail_transfer(transfer, cause)
        return len(victims)

    def fail_transfers_touching(self, node_id: str, cause: str = "node-down") -> int:
        """Fail every transfer with ``node_id`` as an endpoint (node crash)."""
        return self.fail_where(
            lambda t: t.src == node_id or t.dst == node_id, cause
        )

    def refresh_stalled(self) -> None:
        """Re-check stalled transfers after a partition heals.

        Transfers whose endpoints became mutually reachable enter the rate
        allocation as if freshly started; the rest keep their original
        connect-timeout clocks ticking.
        """
        if not self._stalled:
            return
        reachable = self._reachable
        released = [
            tid
            for tid, (t, _) in self._stalled.items()
            if reachable is None or reachable(t.src, t.dst)
        ]
        for tid in released:
            transfer, handle = self._stalled.pop(tid)
            handle.cancel()
            if self._engine is not None:
                self._engine.add_flow(tid, transfer.src, transfer.dst)
            self._active[tid] = transfer
            if self.timeline is not None:
                self.timeline.record(
                    "transfer.unstall", tid, src=transfer.src, dst=transfer.dst
                )
            self.tracer.instant(
                "net.unstall",
                "network",
                track=transfer.src,
                lane=f"nic:{transfer.src}",
                dst=transfer.dst,
            )
            self._m_xfer_unstall.inc()
            if self.counters is not None:
                self.counters.flow_events += 1
        if released:
            self.sim.defer(self, self._flush)

    def flush(self) -> None:
        """Force the pending change batch to settle now (test/debug hook)."""
        self._flush()

    # ------------------------------------------------------------- reallocation
    def _flush(self) -> None:
        """Recompute fair rates for the changed flows and re-arm completion."""
        now = self.sim.now
        counters = self.counters
        started = time.perf_counter() if counters is not None else 0.0
        if self._engine is not None:
            changed = self._engine.recompute().items()
        else:
            transfers = list(self._active.values())
            rates = (
                maxmin_rates([(t.src, t.dst) for t in transfers], self.capacities)
                if transfers
                else []
            )
            changed = [(t.transfer_id, r) for t, r in zip(transfers, rates)]
            if transfers:
                # Full recompute: the "dirty component" is every active flow.
                self._m_recomputes.inc()
                self._m_component.observe(len(transfers))
        applied = 0
        for transfer_id, rate in changed:
            transfer = self._active.get(transfer_id)
            if transfer is None or rate == transfer.rate:
                # Unchanged rate: the existing finish-time entry stays exact,
                # and skipping settle() keeps progress accounting identical
                # across both engine modes.
                continue
            transfer.set_rate(now, rate)
            applied += 1
            token = self._token.get(transfer_id, 0) + 1
            self._token[transfer_id] = token
            eta = transfer.eta(now)
            if math.isfinite(eta):
                self._heap_seq += 1
                heapq.heappush(
                    self._eta_heap, (now + eta, self._heap_seq, token, transfer)
                )
            if counters is not None:
                counters.rate_updates += 1
        if len(self._eta_heap) > 64 and len(self._eta_heap) > 4 * len(self._active):
            self._compact_heap()
        self._arm_completion(now)
        if counters is not None:
            counters.reallocations += 1
            counters.realloc_seconds += time.perf_counter() - started
        # Virtual-time facts only (never the wall clock) keep traces
        # deterministic across machines.
        if applied and self.tracer.enabled:
            self.tracer.instant(
                "net.flush",
                "network",
                track="fabric",
                changed=applied,
                active=len(self._active),
            )

    def _entry_live(self, entry: _HeapEntry) -> bool:
        _, _, token, transfer = entry
        return (
            self._active.get(transfer.transfer_id) is transfer
            and self._token.get(transfer.transfer_id) == token
        )

    def _compact_heap(self) -> None:
        """Drop stale entries so the heap tracks O(active) state."""
        self._eta_heap = [e for e in self._eta_heap if self._entry_live(e)]
        heapq.heapify(self._eta_heap)

    def _arm_completion(self, now: float) -> None:
        """(Re)schedule the single completion event at the earliest finish."""
        heap = self._eta_heap
        while heap and not self._entry_live(heap[0]):
            heapq.heappop(heap)
        event = self._completion_event
        if not heap:
            if event is not None:
                event.cancel()
                self._completion_event = None
            return
        target = max(heap[0][0], now)
        if event is not None:
            if event.pending and event.time == target:
                return
            event.cancel()
        self._completion_event = self.sim.schedule_at(target, self._on_completion)

    def _on_completion(self) -> None:
        """Finish every flow whose residual hit zero, then reallocate once."""
        now = self.sim.now
        self._completion_event = None
        cutoff = now + _ETA_EPSILON
        heap = self._eta_heap
        finished: List[Transfer] = []
        while heap:
            if not self._entry_live(heap[0]):
                heapq.heappop(heap)
                continue
            if heap[0][0] > cutoff:
                break
            finished.append(heapq.heappop(heap)[3])
        for transfer in finished:
            del self._active[transfer.transfer_id]
            self._token.pop(transfer.transfer_id, None)
            if self._engine is not None:
                self._engine.remove_flow(transfer.transfer_id)
            transfer.settle(now)
            transfer.finished_at = now
            self.completed_count += 1
            self.total_bytes_moved += transfer.size
            self._m_xfer_complete.inc()
            self._m_bytes.inc(transfer.size)
            lifetime = now - transfer.started_at
            if lifetime > 0:
                self._m_rate_hist.observe(transfer.size / lifetime)
            if self.counters is not None:
                self.counters.flow_events += 1
            if self.timeline is not None:
                self.timeline.record(
                    "transfer.finish",
                    transfer.transfer_id,
                    duration=now - transfer.started_at,
                )
            self._trace_transfer(transfer, "ok")
            transfer.done.trigger(transfer)
        self.sim.defer(self, self._flush)
