"""Incremental max-min fair rate allocation.

:func:`repro.network.bandwidth.maxmin_rates` recomputes every flow's rate
from scratch on each call — O(links²) work per flow arrival/departure, the
dominant cost of large simulations.  :class:`RateEngine` maintains the
link/flow incidence *across* events and exploits two structural facts of
progressive filling:

1. **Component locality.**  The link-flow graph decomposes into connected
   components that share no links, and the max-min allocation of one
   component is independent of all others.  A flow arrival or departure can
   only change rates inside the component(s) touching its two links, so the
   engine re-runs water-filling on that affected subgraph only ("dirty-link
   tracking") and keeps every other flow's rate untouched.
2. **Batch closure.**  Any number of add/remove operations can be folded
   into the dirty set before a single :meth:`recompute` settles them all —
   the fabric batches all flow changes of one simulated instant this way.

Equivalence to the reference is by construction: the affected subgraph is
re-solved by calling ``maxmin_rates`` itself on the component's flows in
their global arrival order, and an untouched component's previously stored
rates are exactly what a full recompute would re-derive for it (the kernel's
arithmetic never crosses component boundaries).  The hypothesis property
suite (``tests/property/test_rate_engine_equivalence.py``) checks this after
random operation sequences.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.network.bandwidth import (
    LinkCapacities,
    maxmin_rates,
    maxmin_rates_vectorized,
)
from repro.obs.metrics import NULL_METRICS, SIZE_BUCKETS

__all__ = ["RateEngine"]

#: A directed NIC link: ("up" | "down", node_id).
Link = Tuple[str, str]


class RateEngine:
    """Incremental max-min rates over a mutable flow set.

    Parameters
    ----------
    capacities:
        The shared per-node NIC capacities (nodes may be registered after
        construction; each flow validates its endpoints on ``add_flow``).
    counters:
        Optional perf-counter sink (duck-typed, see
        :class:`repro.metrics.collector.PerfCounters`); when given, every
        recompute accounts its component size and wall time there.
    tracer:
        Optional :class:`repro.obs.tracer.Tracer`; when tracing is enabled
        each non-trivial recompute emits a ``net.recompute`` instant with
        the affected subgraph's size (virtual-time facts only — the wall
        time measured for ``counters`` never enters the trace).

    Flows are identified by caller-chosen hashable ids.  Loopback flows
    (``src == dst``) follow the reference contract: validated, rated
    ``inf``, and never consuming capacity.
    """

    def __init__(
        self,
        capacities: LinkCapacities,
        counters: Optional[object] = None,
        tracer: Optional[object] = None,
        metrics: Optional[object] = None,
        kernel: Optional[object] = None,
        engine_label: str = "incremental",
    ):
        self.capacities = capacities
        self.counters = counters
        self.tracer = tracer
        # The water-filling kernel used to re-solve affected components:
        # the reference `maxmin_rates` (default) or the bitwise-identical
        # `maxmin_rates_vectorized` when the fabric runs --network-engine
        # vectorized.
        self._kernel = maxmin_rates if kernel is None else kernel
        if metrics is None:
            metrics = NULL_METRICS
        self._m_recomputes = metrics.counter(
            "net_rate_recomputes_total",
            "Water-filling passes executed, by allocator engine.",
            ("engine",),
        ).labels(engine=engine_label)
        self._m_component = metrics.histogram(
            "net_dirty_component_flows",
            "Flows re-rated per recompute (dirty-component size).",
            ("engine",),
            buckets=SIZE_BUCKETS,
        ).labels(engine=engine_label)
        self._flows: Dict[Hashable, Tuple[str, str]] = {}
        self._seq: Dict[Hashable, int] = {}
        self._next_seq = 0
        self._flow_links: Dict[Hashable, Optional[Tuple[Link, Link]]] = {}
        self._link_flows: Dict[Link, Set[Hashable]] = {}
        self._rates: Dict[Hashable, float] = {}
        self._dirty: Set[Link] = set()
        self._fresh_loopbacks: Set[Hashable] = set()

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._flows

    @property
    def dirty(self) -> bool:
        """True when flow changes are pending a :meth:`recompute`."""
        return bool(self._dirty or self._fresh_loopbacks)

    def rate_of(self, flow_id: Hashable) -> float:
        """Current allocated rate of one flow (recomputes if dirty)."""
        if self.dirty:
            self.recompute()
        return self._rates[flow_id]

    def rates(self) -> Dict[Hashable, float]:
        """All current rates, keyed by flow id (recomputes if dirty)."""
        if self.dirty:
            self.recompute()
        return dict(self._rates)

    def reference_rates(self) -> Dict[Hashable, float]:
        """Fresh full ``maxmin_rates`` recompute over the live flow set.

        Test/verification helper: the engine's :meth:`rates` must always
        equal this.
        """
        ordered = sorted(self._flows, key=self._seq.__getitem__)
        flows = [self._flows[fid] for fid in ordered]
        return dict(zip(ordered, maxmin_rates(flows, self.capacities)))

    # -------------------------------------------------------------- mutation
    def add_flow(self, flow_id: Hashable, src: str, dst: str) -> None:
        """Register a flow; its rate appears in the next :meth:`recompute`."""
        if flow_id in self._flows:
            raise ConfigurationError(f"flow {flow_id!r} is already registered")
        if src not in self.capacities.uplink:
            raise ConfigurationError(f"flow references unregistered node {src!r}")
        if src == dst:
            # Loopback: infinite rate, no capacity consumed, no incidence.
            self._flows[flow_id] = (src, dst)
            self._seq[flow_id] = self._next_seq
            self._next_seq += 1
            self._flow_links[flow_id] = None
            self._rates[flow_id] = float("inf")
            self._fresh_loopbacks.add(flow_id)
            return
        if dst not in self.capacities.downlink:
            raise ConfigurationError(f"flow references unregistered node {dst!r}")
        up: Link = ("up", src)
        down: Link = ("down", dst)
        self._flows[flow_id] = (src, dst)
        self._seq[flow_id] = self._next_seq
        self._next_seq += 1
        self._flow_links[flow_id] = (up, down)
        self._link_flows.setdefault(up, set()).add(flow_id)
        self._link_flows.setdefault(down, set()).add(flow_id)
        self._dirty.add(up)
        self._dirty.add(down)

    def touch_node(self, node_id: str) -> None:
        """Mark both of a node's links dirty (its capacity changed).

        Used by link-degradation faults: the next :meth:`recompute` re-rates
        every flow in the components touching the node, picking up the new
        capacity from the shared :class:`LinkCapacities`.
        """
        self._dirty.add(("up", node_id))
        self._dirty.add(("down", node_id))

    def remove_flow(self, flow_id: Hashable) -> None:
        """Drop a flow; its former neighbours are re-rated on recompute."""
        if flow_id not in self._flows:
            raise ConfigurationError(f"flow {flow_id!r} is not registered")
        links = self._flow_links.pop(flow_id)
        del self._flows[flow_id]
        del self._seq[flow_id]
        self._rates.pop(flow_id, None)
        self._fresh_loopbacks.discard(flow_id)
        if links is None:
            return
        for link in links:
            flows = self._link_flows.get(link)
            if flows is not None:
                flows.discard(flow_id)
                if not flows:
                    del self._link_flows[link]
            # Dirty even when now empty: capacity freed for nobody is a
            # no-op, but a still-populated sibling link must be re-rated.
            self._dirty.add(link)

    # ------------------------------------------------------------- recompute
    def recompute(self) -> Dict[Hashable, float]:
        """Re-rate the affected components; return their new rates.

        The returned mapping covers exactly the flows whose rate *may* have
        changed since the last recompute (plus freshly added loopbacks);
        values for some of them can equal the previous rate.  Flows in
        untouched components are guaranteed unchanged and are omitted.
        """
        changed: Dict[Hashable, float] = {
            fid: float("inf") for fid in self._fresh_loopbacks
        }
        self._fresh_loopbacks.clear()
        if not self._dirty:
            return changed
        started = time.perf_counter() if self.counters is not None else 0.0

        affected = self._affected_flows()
        self._dirty.clear()
        if affected:
            ordered = sorted(affected, key=self._seq.__getitem__)
            flows = [self._flows[fid] for fid in ordered]
            rates = self._kernel(flows, self.capacities)
            for fid, rate in zip(ordered, rates):
                self._rates[fid] = rate
                changed[fid] = rate

        if affected:
            self._m_recomputes.inc()
            self._m_component.observe(len(affected))
        if self.counters is not None:
            self.counters.recomputes += 1
            self.counters.flows_touched += len(affected)
            self.counters.recompute_seconds += time.perf_counter() - started
        if affected and self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(
                "net.recompute",
                "network",
                track="fabric",
                flows=len(affected),
                total=len(self._flows),
            )
        return changed

    def _affected_flows(self) -> Set[Hashable]:
        """Flows in every connected component touching a dirty link.

        BFS over the bipartite link-flow incidence, seeded at the dirty
        links; cost is proportional to the affected subgraph, not the
        global flow count.
        """
        link_flows = self._link_flows
        flow_links = self._flow_links
        seen_links: Set[Link] = set()
        seen_flows: Set[Hashable] = set()
        stack: List[Link] = [link for link in self._dirty if link in link_flows]
        seen_links.update(stack)
        while stack:
            link = stack.pop()
            for fid in link_flows[link]:
                if fid in seen_flows:
                    continue
                seen_flows.add(fid)
                pair = flow_links[fid]
                assert pair is not None  # loopbacks carry no incidence
                for other in pair:
                    if other not in seen_links and other in link_flows:
                        seen_links.add(other)
                        stack.append(other)
        if self.counters is not None:
            self.counters.links_touched += len(seen_links)
        return seen_flows
