"""A single in-flight network transfer."""

from __future__ import annotations

from typing import Optional

from repro.simulation.engine import EventHandle, Simulation
from repro.simulation.process import Signal

__all__ = ["Transfer"]


class Transfer:
    """Bytes moving from ``src`` to ``dst`` under a time-varying fair rate.

    The fabric owns the rate; the transfer tracks its own residual bytes with
    lazy progress accounting: ``remaining`` is only re-evaluated when the rate
    changes or completion is checked, using ``remaining -= rate * dt``.

    ``done`` is a :class:`Signal` processes can yield on; it triggers with the
    transfer itself at completion time.
    """

    __slots__ = (
        "transfer_id",
        "src",
        "dst",
        "size",
        "started_at",
        "finished_at",
        "done",
        "_remaining",
        "_rate",
        "_last_update",
        "_completion",
    )

    def __init__(self, sim: Simulation, transfer_id: str, src: str, dst: str, size: float):
        if size <= 0:
            raise ValueError(f"transfer size must be positive, got {size}")
        self.transfer_id = transfer_id
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.started_at = sim.now
        self.finished_at: Optional[float] = None
        self.done = Signal(sim, name=f"{transfer_id}.done")
        self._remaining = float(size)
        self._rate = 0.0
        self._last_update = sim.now
        self._completion: Optional[EventHandle] = None

    # ------------------------------------------------------------- accounting
    @property
    def rate(self) -> float:
        """Current allocated rate in bytes/second."""
        return self._rate

    def remaining(self, now: float) -> float:
        """Bytes still outstanding at virtual time ``now``."""
        dt = now - self._last_update
        if dt <= 0.0:
            # Also keeps an infinite (loopback) rate from producing inf*0=nan.
            return self._remaining
        return max(self._remaining - self._rate * dt, 0.0)

    def settle(self, now: float) -> None:
        """Fold elapsed progress into the residual byte count."""
        self._remaining = self.remaining(now)
        self._last_update = now

    def set_rate(self, now: float, rate: float) -> None:
        """Change the allocated rate (fabric-internal)."""
        self.settle(now)
        self._rate = rate

    def eta(self, now: float) -> float:
        """Seconds until completion at the current rate (inf when rate is 0)."""
        rem = self.remaining(now)
        if rem <= 0:
            return 0.0
        if self._rate <= 0:
            return float("inf")
        return rem / self._rate

    @property
    def duration(self) -> Optional[float]:
        """Total transfer time once finished, else None."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Transfer {self.transfer_id} {self.src}->{self.dst} "
            f"{self.size:.0f}B rate={self._rate:.3g}B/s>"
        )
