"""repro.obs — sim-time tracing and timeline observability.

A structured trace layer threaded through the whole simulator:

* :mod:`repro.obs.events` — typed, sim-time-stamped trace events (spans,
  instants, counters) for every layer (engine, manager, driver, network,
  faults).
* :mod:`repro.obs.tracer` — the :class:`Tracer` fan-out object components
  emit into, and the module-level :data:`NULL_TRACER` no-op default that
  makes tracing-off cost ~nothing and change no behaviour.
* :mod:`repro.obs.sinks` — bounded in-memory ring sink and JSONL file sink.
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON exporter
  (open the output directly in ``ui.perfetto.dev``) plus the structural
  schema validator the CI gate runs.
* :mod:`repro.obs.timeseries` — sim-time-interval samplers for executor
  utilisation, queue depth, local-job fraction and network throughput.
* :mod:`repro.obs.report` — human-readable timeline summary (per-phase
  task-time breakdown, top-N slowest jobs with the allocation decisions
  that produced them).
* :mod:`repro.obs.metrics` — label-aware Counter/Gauge/Histogram registry
  (fixed-bucket streaming quantiles, :data:`NULL_METRICS` no-op default).
* :mod:`repro.obs.exposition` — Prometheus text exposition + parser and
  versioned JSON snapshot persistence.
* :mod:`repro.obs.slo` — declarative SLO specs with error-budget burn
  accounting, evaluated against snapshots.
* :mod:`repro.obs.diff` — snapshot flattening, tolerance-based regression
  diffs and the ``repro report`` scoreboard renderer.

Every timestamp is virtual (``Simulation.now``); traces are deterministic —
two runs from the same seed produce identical event streams.
"""

from repro.obs.events import (
    AdmissionDecision,
    AllocationRound,
    BreakerTransition,
    CounterEvent,
    ExecutorGrant,
    FaultHealed,
    FaultInjected,
    HeartbeatMiss,
    HedgeLaunch,
    JobSpan,
    RecoveryFlow,
    SpanEvent,
    SuspicionChange,
    TaskAttempt,
    TraceEvent,
    TransferSpan,
)
from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.diff import DiffReport, diff_snapshots, flatten_snapshot, render_scoreboard
from repro.obs.exposition import load_snapshot, parse_prometheus, to_prometheus, write_snapshot
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.sinks import JsonlSink, RingSink, TraceSink
from repro.obs.slo import SloReport, SloSpec, SloVerdict, default_slos, evaluate_slos
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "AdmissionDecision",
    "AllocationRound",
    "BreakerTransition",
    "Counter",
    "CounterEvent",
    "DiffReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "SloReport",
    "SloSpec",
    "SloVerdict",
    "ExecutorGrant",
    "FaultHealed",
    "FaultInjected",
    "HeartbeatMiss",
    "HedgeLaunch",
    "JobSpan",
    "JsonlSink",
    "NULL_TRACER",
    "NullTracer",
    "RecoveryFlow",
    "RingSink",
    "SpanEvent",
    "SuspicionChange",
    "TaskAttempt",
    "TimeSeriesSampler",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "TransferSpan",
    "chrome_trace",
    "default_slos",
    "diff_snapshots",
    "evaluate_slos",
    "flatten_snapshot",
    "load_snapshot",
    "parse_prometheus",
    "render_scoreboard",
    "to_prometheus",
    "trace_summary",
    "validate_chrome_trace",
    "write_chrome_trace",
]


def __getattr__(name):
    # trace_summary is imported lazily (PEP 562): obs.report renders tables
    # via repro.metrics, which sits *above* the core modules that import
    # repro.obs.events — an eager import here would be circular.
    if name == "trace_summary":
        from repro.obs.report import trace_summary

        return trace_summary
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
