"""Snapshot diffing and the run scoreboard behind ``repro report``.

:func:`flatten_snapshot` projects a snapshot onto scalar keys
(``name{label=value}`` for counters/gauges; histograms expand to
``:count``, ``:sum``, ``:mean``, ``:p50``, ``:p90``, ``:p99`` facets).
:func:`diff_snapshots` compares two flattened snapshots with a
*symmetric* relative delta — ``|a-b| / max(|a|,|b|)`` — which is defined
for zero baselines and order-independent, so ``diff A B`` and
``diff B A`` agree on which metrics are out of tolerance.  Per-metric
tolerance overrides let noisy families (wall-clock-ish rates) run looser
than structural counters.  Meta fields (wall time, sim time) never enter
the diff: only the ``metrics`` section is compared, making reports
reproducible across machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError

__all__ = [
    "flatten_snapshot",
    "diff_snapshots",
    "DiffEntry",
    "DiffReport",
    "render_scoreboard",
]

_HIST_FACETS = ("count", "sum", "mean", "p50", "p90", "p99")


def _series_key(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    body = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{body}}}"


def flatten_snapshot(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Project the metrics section onto a flat ``{key: scalar}`` map.

    ``None`` facets (empty-histogram quantiles) are dropped rather than
    zero-filled so "no observations" diffs against "no observations"
    cleanly and against real data loudly (missing-key mismatch).
    """
    flat: Dict[str, float] = {}
    for family in snapshot.get("metrics", ()):
        kind = family["type"]
        for series in family["series"]:
            key = _series_key(family["name"], series["labels"])
            if kind in ("counter", "gauge"):
                flat[key] = float(series["value"])
                continue
            for facet in _HIST_FACETS:
                value = series.get(facet)
                if value is not None:
                    flat[f"{key}:{facet}"] = float(value)
    return flat


@dataclass(frozen=True)
class DiffEntry:
    """One compared key: values, symmetric relative delta, verdict."""

    key: str
    a: Optional[float]
    b: Optional[float]
    rel_delta: float  #: inf when present on only one side
    tolerance: float
    within: bool

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready entry (inf rel_delta serialised as null)."""
        return {
            "key": self.key,
            "a": self.a,
            "b": self.b,
            "rel_delta": None if math.isinf(self.rel_delta) else self.rel_delta,
            "tolerance": self.tolerance,
            "within": self.within,
        }

    def describe(self) -> str:
        """One ok/DRIFT line for this key."""
        fmt = lambda v: "-" if v is None else f"{v:g}"  # noqa: E731
        rel = "one-sided" if math.isinf(self.rel_delta) else f"{self.rel_delta:.1%}"
        mark = "ok " if self.within else "DRIFT"
        return f"  [{mark}] {self.key}: {fmt(self.a)} -> {fmt(self.b)}  ({rel}, tol {self.tolerance:.0%})"


@dataclass(frozen=True)
class DiffReport:
    """All compared keys plus the out-of-tolerance subset."""

    entries: Tuple[DiffEntry, ...]

    @property
    def drifted(self) -> Tuple[DiffEntry, ...]:
        """The out-of-tolerance subset of entries."""
        return tuple(e for e in self.entries if not e.within)

    @property
    def passed(self) -> bool:
        """True iff no key drifted."""
        return not self.drifted

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready report (drifted entries only, plus counts)."""
        return {
            "passed": self.passed,
            "compared": len(self.entries),
            "drifted": [e.as_dict() for e in self.drifted],
        }

    def describe(self, *, max_ok: int = 0) -> str:
        """Drifted entries always; up to ``max_ok`` in-tolerance ones."""
        lines = [e.describe() for e in self.drifted]
        if max_ok:
            lines.extend(e.describe() for e in self.entries[:max_ok] if e.within)
        verdict = "within tolerance" if self.passed else "OUT OF TOLERANCE"
        lines.append(
            f"diff: {len(self.entries)} keys compared, "
            f"{len(self.drifted)} drifted — {verdict}"
        )
        return "\n".join(lines)


def _symmetric_rel(a: float, b: float) -> float:
    if a == b:
        return 0.0
    denom = max(abs(a), abs(b))
    return abs(a - b) / denom


def _tolerance_for(key: str, default: float, overrides: Dict[str, float]) -> float:
    """Longest-prefix override match on the metric name (sans labels/facet)."""
    best: Optional[Tuple[int, float]] = None
    for prefix, tol in overrides.items():
        if key.startswith(prefix) and (best is None or len(prefix) > best[0]):
            best = (len(prefix), tol)
    return best[1] if best is not None else default


def diff_snapshots(
    snap_a: Dict[str, Any],
    snap_b: Dict[str, Any],
    *,
    tolerance: float = 0.05,
    overrides: Optional[Dict[str, float]] = None,
) -> DiffReport:
    """Compare two snapshots key-by-key.

    ``overrides`` maps a metric-name prefix to a tolerance, e.g.
    ``{"net_transfer_rate_bytes": 0.25}`` — longest matching prefix wins.
    A key present in only one snapshot is an automatic drift (relative
    delta infinity) unless its tolerance is >= 1.0 (opt-out).
    """
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    overrides = overrides or {}
    flat_a, flat_b = flatten_snapshot(snap_a), flatten_snapshot(snap_b)
    entries: List[DiffEntry] = []
    for key in sorted(set(flat_a) | set(flat_b)):
        a, b = flat_a.get(key), flat_b.get(key)
        tol = _tolerance_for(key, tolerance, overrides)
        if a is None or b is None:
            rel = float("inf")
            within = tol >= 1.0
        else:
            rel = _symmetric_rel(a, b)
            within = rel <= tol
        entries.append(DiffEntry(key=key, a=a, b=b, rel_delta=rel,
                                 tolerance=tol, within=within))
    return DiffReport(tuple(entries))


def render_scoreboard(snapshot: Dict[str, Any]) -> str:
    """Human-readable single-run scoreboard for ``repro report SNAP.json``."""
    lines: List[str] = []
    sim_time = snapshot.get("sim_time")
    meta = snapshot.get("meta") or {}
    header = "run scoreboard"
    if sim_time is not None:
        header += f"   sim_time={sim_time:g}s"
    if meta:
        header += "   " + "  ".join(f"{k}={v}" for k, v in sorted(meta.items()))
    lines.append(header)
    lines.append("-" * max(len(header), 40))
    for family in snapshot.get("metrics", ()):
        kind = family["type"]
        lines.append(f"{family['name']} ({kind})")
        for series in family["series"]:
            label_part = _series_key("", series["labels"]) or "{}"
            if kind in ("counter", "gauge"):
                lines.append(f"  {label_part:<44} {series['value']:g}")
            else:
                mean = series.get("mean")
                p50, p90, p99 = (series.get(k) for k in ("p50", "p90", "p99"))
                fmt = lambda v: "-" if v is None else f"{v:.3g}"  # noqa: E731
                lines.append(
                    f"  {label_part:<44} n={series['count']}  "
                    f"mean={fmt(mean)}  p50={fmt(p50)}  p90={fmt(p90)}  p99={fmt(p99)}"
                )
    ts = snapshot.get("timeseries")
    if ts:
        lines.append(f"timeseries: {len(ts.get('series', ts))} series sampled")
    return "\n".join(lines)
