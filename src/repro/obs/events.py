"""Typed trace events.

Every event carries the virtual timestamp it happened at (``ts``, seconds of
``Simulation.now`` — never the wall clock, so traces are deterministic), a
``name``, the instrumented ``cat``egory/layer it came from, two placement
ids for the Perfetto export (``track`` maps to a "process" row — usually a
node or a logical component — and ``lane`` to a "thread" row — an executor,
NIC or application), and a small ``attrs`` dict of event-specific fields.

Three shapes exist:

* :class:`TraceEvent` — an instant ("something happened now");
* :class:`SpanEvent` — a duration (``ts`` is the start, ``dur`` the length);
* :class:`CounterEvent` — one sample of a numeric time series.

The typed subclasses below pin ``name``/``cat`` for the simulator's core
vocabulary so call sites stay terse and analysers can match on type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = [
    "ENGINE",
    "MANAGER",
    "DRIVER",
    "NETWORK",
    "FAULTS",
    "LAYERS",
    "TraceEvent",
    "SpanEvent",
    "CounterEvent",
    "AllocationRound",
    "ExecutorGrant",
    "TaskAttempt",
    "JobSpan",
    "TransferSpan",
    "FaultInjected",
    "FaultHealed",
    "RecoveryFlow",
    "HeartbeatMiss",
    "SuspicionChange",
    "BreakerTransition",
    "HedgeLaunch",
    "AdmissionDecision",
    "ManagerDown",
    "ManagerRestart",
    "LeaseOutcome",
]

#: The five instrumented layers; ``TraceEvent.cat`` is always one of these.
ENGINE = "engine"
MANAGER = "manager"
DRIVER = "driver"
NETWORK = "network"
FAULTS = "faults"
LAYERS = (ENGINE, MANAGER, DRIVER, NETWORK, FAULTS)


@dataclass(frozen=True)
class TraceEvent:
    """An instantaneous event at virtual time ``ts``."""

    ts: float
    name: str = ""
    cat: str = ENGINE
    track: str = ""
    lane: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    #: Chrome trace_event phase; subclasses override.
    phase = "i"

    def get(self, key: str, default: Any = None) -> Any:
        """Look up an attr by name."""
        return self.attrs.get(key, default)

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready projection (JSONL sink format)."""
        d: Dict[str, Any] = {
            "ts": self.ts,
            "name": self.name,
            "cat": self.cat,
            "ph": self.phase,
        }
        if self.track:
            d["track"] = self.track
        if self.lane:
            d["lane"] = self.lane
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        where = "/".join(x for x in (self.track, self.lane) if x)
        return (
            f"[{self.ts:12.4f}] {self.cat:<7} {self.name:<24} {where} {fields}"
        ).rstrip()


@dataclass(frozen=True)
class SpanEvent(TraceEvent):
    """A duration: starts at ``ts``, lasts ``dur`` seconds."""

    dur: float = 0.0

    phase = "X"

    @property
    def end(self) -> float:
        """Absolute virtual end time of the span."""
        return self.ts + self.dur

    def as_dict(self) -> Dict[str, Any]:
        d = super().as_dict()
        d["dur"] = self.dur
        return d


@dataclass(frozen=True)
class CounterEvent(TraceEvent):
    """One sample of a numeric series (Perfetto renders these as graphs)."""

    value: float = 0.0

    phase = "C"

    def as_dict(self) -> Dict[str, Any]:
        d = super().as_dict()
        d["value"] = self.value
        return d


# ------------------------------------------------------------ manager layer
@dataclass(frozen=True)
class AllocationRound(TraceEvent):
    """One allocation pass of a cluster manager.

    attrs: ``round`` (ordinal), ``manager``, plus policy-specific decision
    detail — Custody adds ``demand_apps``/``demand_tasks``/``idle``/
    ``granted``/``promised`` and the per-app ``grants`` pick order.
    """

    name: str = "allocation.round"
    cat: str = MANAGER


@dataclass(frozen=True)
class ExecutorGrant(TraceEvent):
    """An executor handed to (or failed to reach) an application.

    attrs: ``app``, ``executor``, ``ok`` (False = the master's stale view
    granted onto a dead/unreachable node and the launch failed).
    """

    name: str = "executor.grant"
    cat: str = MANAGER


# ------------------------------------------------------------- driver layer
@dataclass(frozen=True)
class TaskAttempt(SpanEvent):
    """One execution attempt of a task, queue→launch→input→run.

    ``ts`` is the attempt launch; ``dur`` its wall time.  attrs: ``task``,
    ``app``, ``outcome`` ("success" | "killed" | failure reason), ``queue``
    (submit→launch wait), ``input`` (read/fetch phase), ``run`` (CPU phase),
    ``locality`` ("node" | "rack" | "any" | None for non-input tasks) and
    ``speculative``.
    """

    name: str = "task.attempt"
    cat: str = DRIVER


@dataclass(frozen=True)
class JobSpan(SpanEvent):
    """A job's submit→finish lifetime.  attrs: ``job``, ``app``,
    ``local_job``, ``inputs``."""

    name: str = "job.span"
    cat: str = DRIVER


# ------------------------------------------------------------ network layer
@dataclass(frozen=True)
class TransferSpan(SpanEvent):
    """One network flow from start to completion/failure.

    attrs: ``src``, ``dst``, ``size``, ``outcome`` ("ok" | failure cause).
    """

    name: str = "net.transfer"
    cat: str = NETWORK


# ------------------------------------------------------------- faults layer
@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """A fault-plan event fired.  attrs: ``kind``, ``target``, and the
    fault's own parameters (duration/factor/…)."""

    name: str = "fault.injected"
    cat: str = FAULTS


@dataclass(frozen=True)
class FaultHealed(TraceEvent):
    """A fault cleared (restart/heal/expiry).  attrs: ``kind``, ``target``,
    ``after`` (seconds from injection when known)."""

    name: str = "fault.healed"
    cat: str = FAULTS


@dataclass(frozen=True)
class RecoveryFlow(SpanEvent):
    """One re-replication copy restoring a lost block.

    attrs: ``block``, ``src``, ``dst``, ``bytes``, ``outcome``.
    """

    name: str = "fault.recovery"
    cat: str = FAULTS


@dataclass(frozen=True)
class HeartbeatMiss(TraceEvent):
    """The master's detector marked a node suspect after a failed launch
    report.  attrs: ``node``."""

    name: str = "heartbeat.miss"
    cat: str = FAULTS


@dataclass(frozen=True)
class SuspicionChange(TraceEvent):
    """The adaptive detector's belief about a node changed.

    attrs: ``node``, ``state`` ("alive" | "suspected" | "dead"),
    ``prev``, ``phi`` (the suspicion score at the transition).
    """

    name: str = "detector.suspicion"
    cat: str = FAULTS


# -------------------------------------------------------- robustness (driver)
@dataclass(frozen=True)
class BreakerTransition(TraceEvent):
    """A per-node circuit breaker changed state.

    attrs: ``node``, ``state`` ("closed" | "open" | "half_open"), ``prev``.
    """

    name: str = "breaker.transition"
    cat: str = DRIVER


@dataclass(frozen=True)
class HedgeLaunch(TraceEvent):
    """A hedged backup attempt fired against a suspected-slow node.

    attrs: ``task``, ``app``, ``primary_node``, ``hedge_node``,
    ``elapsed`` (primary runtime when the hedge launched).
    """

    name: str = "hedge.launch"
    cat: str = DRIVER


# ----------------------------------------------------- robustness (manager)
@dataclass(frozen=True)
class AdmissionDecision(TraceEvent):
    """The manager's admission gate deferred or re-admitted a job.

    attrs: ``app``, ``job``, ``decision`` ("deferred" | "admitted" |
    "shed"), ``pending`` (task demand), ``capacity`` (deliverable slots).
    """

    name: str = "admission.decision"
    cat: str = MANAGER


# ------------------------------------------------------- recovery (manager)
@dataclass(frozen=True)
class ManagerDown(TraceEvent):
    """The control plane crashed; allocation stalls until restart.

    attrs: ``outage`` (scheduled downtime), ``leases`` (outstanding at the
    crash), ``wal_durable`` (entries that survived), ``wal_lost`` (trailing
    entries dropped by the flush lag).
    """

    name: str = "manager.down"
    cat: str = MANAGER


@dataclass(frozen=True)
class ManagerRestart(TraceEvent):
    """The manager restarted and finished a recovery phase.

    attrs: ``phase`` ("replay" | "recovered"), ``wal_replayed``,
    ``readopted``, ``expired``, ``zombies``, and on the final phase
    ``duration`` (crash → allocation resumed).
    """

    name: str = "manager.restart"
    cat: str = MANAGER


@dataclass(frozen=True)
class LeaseOutcome(TraceEvent):
    """Reconciliation decided one executor lease's fate.

    attrs: ``executor``, ``app``, ``outcome`` ("readopted" | "expired" |
    "zombie").
    """

    name: str = "lease.outcome"
    cat: str = MANAGER
