"""Chrome/Perfetto ``trace_event`` JSON export.

:func:`chrome_trace` converts a stream of :class:`~repro.obs.events`
objects into the `trace_event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
that ``ui.perfetto.dev`` and ``chrome://tracing`` open directly:

* each event ``track`` (a node, a manager, "cluster") becomes a *process*;
* each ``lane`` (an executor, a NIC, an application) becomes a *thread*;
* spans map to ``"X"`` complete events, instants to ``"i"``, counters to
  ``"C"``, with ``process_name``/``thread_name`` metadata records so the UI
  shows real names instead of numeric ids;
* virtual seconds become microseconds (the format's native unit).

:func:`validate_chrome_trace` is the structural schema check the CI trace
gate runs — a hand-rolled validator for :data:`TRACE_EVENT_SCHEMA` so the
repo needs no ``jsonschema`` dependency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.obs.events import LAYERS, TraceEvent

__all__ = [
    "TRACE_EVENT_SCHEMA",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: JSON-schema document for the exported trace (documentation + the contract
#: :func:`validate_chrome_trace` enforces).
TRACE_EVENT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.obs chrome trace export",
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "properties": {
        "displayTimeUnit": {"enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string", "minLength": 1},
                    "ph": {"enum": ["X", "i", "C", "M"]},
                    "cat": {"enum": list(LAYERS)},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "s": {"enum": ["t", "p", "g"]},
                    "args": {"type": "object"},
                },
            },
        },
    },
}

_SECONDS_TO_US = 1e6


def chrome_trace(
    events: Iterable[TraceEvent], *, other_data: Dict[str, Any] = None
) -> Dict[str, Any]:
    """Build the trace_event JSON object for ``events``.

    Track/lane → pid/tid assignment is first-seen order, so identical event
    streams export to identical JSON.
    """
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    out: List[Dict[str, Any]] = []

    def pid_of(track: str) -> int:
        track = track or "sim"
        pid = pids.get(track)
        if pid is None:
            pid = pids[track] = len(pids) + 1
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track},
                }
            )
        return pid

    def tid_of(track: str, lane: str) -> int:
        track = track or "sim"
        lane = lane or "main"
        key = (track, lane)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid_of(track),
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        return tid

    for event in events:
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.phase,
            "ts": event.ts * _SECONDS_TO_US,
            "pid": pid_of(event.track),
            "tid": tid_of(event.track, event.lane),
        }
        if event.phase == "X":
            record["dur"] = max(0.0, event.dur) * _SECONDS_TO_US
            if event.attrs:
                record["args"] = dict(event.attrs)
        elif event.phase == "C":
            # Counter series: one numeric arg named after the event.
            record["args"] = {"value": event.value}
        else:
            record["s"] = "t"
            if event.attrs:
                record["args"] = dict(event.attrs)
        out.append(record)
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": dict(other_data or {}),
    }


def write_chrome_trace(
    events: Iterable[TraceEvent],
    path: Union[str, Path],
    *,
    other_data: Dict[str, Any] = None,
) -> Path:
    """Export ``events`` to ``path`` as trace_event JSON."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(events, other_data=other_data)))
    return path


def validate_chrome_trace(data: Any) -> List[str]:
    """Check ``data`` against :data:`TRACE_EVENT_SCHEMA`.

    Returns a list of human-readable problems — empty means valid.  The CI
    trace gate fails when this is non-empty.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    if data.get("displayTimeUnit") not in ("ms", "ns"):
        problems.append("displayTimeUnit must be 'ms' or 'ns'")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return problems + ["traceEvents must be an array"]
    layers = set(LAYERS)
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing/empty name")
        ph = ev.get("ph")
        if ph not in ("X", "i", "C", "M"):
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int) or ev[key] < 0:
                problems.append(f"{where}: {key} must be a non-negative int")
        if ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                problems.append(f"{where}: metadata needs args.name")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        cat = ev.get("cat")
        if cat not in layers:
            problems.append(f"{where}: cat {cat!r} not one of {sorted(layers)}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: span needs non-negative dur")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter needs numeric args")
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                problems.append(f"{where}: counter args must be numeric")
        elif ph == "i" and ev.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant needs scope s in t/p/g")
    return problems
