"""Snapshot exporters: Prometheus/OpenMetrics text + versioned JSON files.

Two consumers, two formats:

* :func:`to_prometheus` renders a registry snapshot in the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` lines, cumulative
  ``_bucket{le=...}`` series, ``_sum`` / ``_count``) so a scrape target
  or ``promtool`` can ingest a run directly.  :func:`parse_prometheus`
  is the matching reader — the CI smoke gate round-trips every snapshot
  through it, which pins the escaping and float-formatting rules.
* :func:`write_snapshot` / :func:`load_snapshot` persist the JSON
  snapshot with a ``format_version`` check, same contract as BENCH_*
  files and :mod:`repro.experiments.persistence`.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.obs.metrics import SNAPSHOT_FORMAT_VERSION, MetricsRegistry

__all__ = [
    "to_prometheus",
    "parse_prometheus",
    "write_snapshot",
    "load_snapshot",
]


def _fmt(value: float) -> str:
    """Float formatting: shortest round-trippable repr, inf spelled +Inf."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labelset(labels: Dict[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [(k, str(v)) for k, v in labels.items()] + [(k, v) for k, v in extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def to_prometheus(source: Union[MetricsRegistry, Dict[str, Any]]) -> str:
    """Render a registry or snapshot dict as Prometheus exposition text."""
    snap = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: List[str] = []
    for family in snap["metrics"]:
        name, kind = family["name"], family["type"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            labels = series["labels"]
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_labelset(labels)} {_fmt(series['value'])}")
                continue
            # histogram: cumulative buckets, then sum and count
            cumulative = 0
            for bound, count in zip(series["buckets"], series["counts"]):
                cumulative += count
                lines.append(
                    f"{name}_bucket{_labelset(labels, (('le', _fmt(bound)),))} "
                    f"{_fmt(cumulative)}"
                )
            lines.append(
                f"{name}_bucket{_labelset(labels, (('le', '+Inf'),))} "
                f"{_fmt(series['count'])}"
            )
            lines.append(f"{name}_sum{_labelset(labels)} {_fmt(series['sum'])}")
            lines.append(f"{name}_count{_labelset(labels)} {_fmt(series['count'])}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text back into ``{family: {type, help, samples}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)`` triples
    with the family's suffixes (``_bucket``/``_sum``/``_count``) intact.
    Raises :class:`ConfigurationError` on malformed lines so the CI gate
    fails loudly rather than silently dropping series.
    """
    families: Dict[str, Dict[str, Any]] = {}
    current: str = ""
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": "", "samples": []})
            families[name]["help"] = _unescape(help_text)
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": "", "samples": []})
            families[name]["type"] = kind.strip()
            current = name
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ConfigurationError(f"unparseable exposition line {lineno}: {line!r}")
        sample_name = match.group("name")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for lm in _LABEL_RE.finditer(raw_labels):
                labels[lm.group(1)] = _unescape(lm.group(2))
                consumed = lm.end()
            leftover = raw_labels[consumed:].strip().strip(",")
            if leftover:
                raise ConfigurationError(
                    f"unparseable label fragment {leftover!r} on line {lineno}"
                )
        family = current
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
                family = sample_name[: -len(suffix)]
                break
        else:
            if sample_name in families:
                family = sample_name
        if family not in families:
            raise ConfigurationError(
                f"sample {sample_name!r} on line {lineno} precedes its # TYPE header"
            )
        families[family]["samples"].append(
            (sample_name, labels, _parse_value(match.group("value")))
        )
    return families


def write_snapshot(snapshot: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Persist a snapshot dict as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a snapshot JSON file, enforcing the schema version."""
    path = Path(path)
    try:
        snapshot = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read snapshot {path}: {exc}") from exc
    if not isinstance(snapshot, dict) or snapshot.get("kind") != "metrics_snapshot":
        raise ConfigurationError(f"{path} is not a metrics snapshot")
    version = snapshot.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise ConfigurationError(
            f"{path}: snapshot format_version {version} != "
            f"supported {SNAPSHOT_FORMAT_VERSION}"
        )
    return snapshot
