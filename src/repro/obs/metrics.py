"""Label-aware metrics registry: Counter / Gauge / Histogram families.

The aggregation layer on top of the raw trace stream (PR 3).  Components
are handed a :class:`MetricsRegistry` (or the shared :data:`NULL_METRICS`
no-op) and pre-bind their instruments once in ``__init__``::

    self._m_rounds = metrics.counter(
        "alloc_rounds_total", "Allocation rounds executed.", ("manager",)
    ).labels(manager=self.name)
    ...
    self._m_rounds.inc()          # hot path: one attribute add, or a no-op

Design points, mirroring :mod:`repro.obs.tracer`:

* **Cheap when off.**  :data:`NULL_METRICS` returns a shared no-op
  instrument from every factory; ``inc``/``set``/``observe``/``labels``
  are empty methods, so metrics-off call sites cost one method call.
* **Inert when on.**  Instruments only ever *read* simulator state and
  add to private floats — no scheduling, no RNG draws, no container
  mutation visible to the engine.  The lockstep test in
  ``tests/obs/test_metrics_equivalence.py`` pins metrics-on == metrics-off
  trajectories record for record.
* **Streaming quantiles from fixed buckets.**  Histograms keep
  fixed-boundary bucket counts and interpolate p50/p90/p99 from them.
  Unlike P²-style estimators this makes ``merge`` order-independent and
  count-conserving (Hypothesis-tested), at the cost of bucket-resolution
  error — fine for scoreboards and SLO gates.
* **Dual clocks.**  Sim time comes from the registry's bound ``clock``
  (``lambda: sim.now``); wall-clock time is read *only* at snapshot time
  so hot paths stay deterministic.

Snapshots are versioned JSON-ready dicts (:data:`SNAPSHOT_FORMAT_VERSION`)
consumed by :mod:`repro.obs.exposition` (Prometheus text),
:mod:`repro.obs.slo` (objective verdicts) and :mod:`repro.obs.diff`
(regression deltas).
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "SNAPSHOT_FORMAT_VERSION",
    "DEFAULT_BUCKETS",
    "SIZE_BUCKETS",
    "RATE_BUCKETS",
]

#: Schema version stamped into every snapshot (and checked on load).
SNAPSHOT_FORMAT_VERSION = 1

#: Default sim-seconds buckets — tuned for task/job durations (O(1)–O(1e3) s).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)

#: Power-of-two-ish count buckets — dirty-component sizes, queue depths.
SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0,
)

#: Bytes-per-sim-second buckets for achieved transfer rates.
RATE_BUCKETS: Tuple[float, ...] = (
    1e6, 5e6, 1e7, 5e7, 1e8, 2.5e8, 5e8, 1e9, 5e9, 1e10, 5e10,
)


def _check_label_values(labelnames: Tuple[str, ...], kv: Dict[str, Any]) -> Tuple[str, ...]:
    if set(kv) != set(labelnames):
        raise ConfigurationError(
            f"labels {sorted(kv)} do not match declared labelnames {sorted(labelnames)}"
        )
    return tuple(str(kv[name]) for name in labelnames)


class Counter:
    """Monotonically increasing tally (one labelled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the tally."""
        if amount < 0:
            raise ConfigurationError(f"counters only go up; inc({amount})")
        self.value += amount


class Gauge:
    """Point-in-time value that can move both ways (one labelled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the current value by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the current value by ``amount``."""
        self.value -= amount


class Histogram:
    """Fixed-boundary bucket histogram with interpolated quantiles.

    ``bounds`` are upper edges of the finite buckets; one implicit
    overflow bucket catches everything above ``bounds[-1]`` (out-of-range
    observations clamp there rather than erroring).  Exact ``sum``,
    ``count``, ``min`` and ``max`` ride along so means are precise even
    though quantiles are bucket-interpolated.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(f"bucket boundaries must strictly increase: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation (clamped into the overflow bucket if huge)."""
        value = float(value)
        if value != value:  # NaN would silently poison sum/quantiles
            raise ConfigurationError("cannot observe NaN")
        # bisect_left: bucket i holds values in (bounds[i-1], bounds[i]]
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        """Exact arithmetic mean; ``None`` when empty."""
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Interpolated q-quantile from bucket counts; ``None`` when empty.

        Linear interpolation inside the bucket containing the target rank;
        the open-ended edge buckets borrow the observed min/max so single
        observations and clamped outliers come back exact-ish.  Monotone in
        ``q`` and always within ``[self.min, self.max]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        if target <= 0:
            return self.min
        cum = 0
        for i, bucket_count in enumerate(self.counts):
            prev = cum
            cum += bucket_count
            if cum >= target and bucket_count > 0:
                lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else max(self.max, self.bounds[-1])
                value = lo + (hi - lo) * ((target - prev) / bucket_count)
                return min(max(value, self.min), self.max)
        return self.max  # pragma: no cover - cum == count always reaches target

    def quantiles(self, qs: Sequence[float]) -> List[Optional[float]]:
        """Vectorised :meth:`quantile` over ``qs``."""
        return [self.quantile(q) for q in qs]

    def fraction_leq(self, threshold: float) -> float:
        """Estimated fraction of observations ``<= threshold`` (SLO burn).

        Whole buckets below the threshold count fully; the straddling
        bucket contributes a linearly interpolated share.  Returns 0.0 for
        an empty histogram.
        """
        if self.count == 0:
            return 0.0
        if threshold >= self.max:
            return 1.0
        if threshold < self.min:
            return 0.0
        covered = 0.0
        for i, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
            hi = self.bounds[i] if i < len(self.bounds) else max(self.max, self.bounds[-1])
            if threshold >= hi:
                covered += bucket_count
            elif threshold > lo:
                covered += bucket_count * (threshold - lo) / (hi - lo)
        return min(covered / self.count, 1.0)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into self.  Order-independent, count-conserving."""
        if other.bounds != self.bounds:
            raise ConfigurationError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, bucket_count in enumerate(other.counts):
            self.counts[i] += bucket_count
        self.sum += other.sum
        self.count += other.count
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready projection, quantiles precomputed for diff/SLO use."""
        p50, p90, p99 = self.quantiles((0.5, 0.9, 0.99))
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": p50,
            "p90": p90,
            "p99": p99,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        """Rebuild from :meth:`as_dict` output (SLO evaluation on snapshots)."""
        hist = cls(data["buckets"])
        counts = list(data["counts"])
        if len(counts) != len(hist.counts):
            raise ConfigurationError(
                f"bucket/count length mismatch: {len(counts)} counts for "
                f"{len(hist.bounds)} boundaries"
            )
        hist.counts = counts
        hist.sum = float(data["sum"])
        hist.count = int(data["count"])
        hist.min = float("inf") if data.get("min") is None else float(data["min"])
        hist.max = float("-inf") if data.get("max") is None else float(data["max"])
        return hist


_KINDS = ("counter", "gauge", "histogram")
_CHILD_TYPES = {"counter": Counter, "gauge": Gauge}


class MetricFamily:
    """All same-name series: one child instrument per label-value tuple."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ConfigurationError(f"unknown metric kind {kind!r}; expected one of {_KINDS}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **kv: Any):
        """The child instrument for these label values (created on demand)."""
        key = _check_label_values(self.labelnames, kv)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self.buckets or DEFAULT_BUCKETS)
            else:
                child = _CHILD_TYPES[self.kind]()
            self._children[key] = child
        return child

    # ------------------------------------------------ label-free delegation
    # Families declared without labelnames act as their own single child,
    # so `registry.counter("x").inc()` works without a labels() hop.

    def _default_child(self):
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} declares labels {self.labelnames}; "
                f"use .labels(...) to pick a series"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-free series (labelled families must use labels())."""
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the label-free series (labelled families must use labels())."""
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        """Set the label-free series (labelled families must use labels())."""
        self._default_child().set(value)

    def observe(self, value: float) -> None:
        """Observe into the label-free series (labelled families must use labels())."""
        self._default_child().observe(value)

    # ------------------------------------------------------------ export
    def series(self) -> List[Dict[str, Any]]:
        """JSON-ready list of (labels, state) per child, label-sorted."""
        out = []
        for key in sorted(self._children):
            child = self._children[key]
            labels = dict(zip(self.labelnames, key))
            if self.kind == "histogram":
                entry: Dict[str, Any] = {"labels": labels}
                entry.update(child.as_dict())
            else:
                entry = {"labels": labels, "value": child.value}
            out.append(entry)
        return out


class NullInstrument:
    """Shared do-nothing stand-in for every instrument and family."""

    __slots__ = ()

    def labels(self, **kv: Any) -> "NullInstrument":
        """Return self — a null family is its own null child."""
        return self

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""

    def dec(self, amount: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""


_NULL_INSTRUMENT = NullInstrument()


class MetricsRegistry:
    """Instrument factory + snapshot source for one run.

    ``clock`` is bound by the experiment runner to ``lambda: sim.now`` so
    snapshots carry the sim timestamp; it is only read at snapshot time.
    Re-registering an existing name returns the same family when the
    declaration matches and raises :class:`ConfigurationError` when it
    conflicts (kind, labelnames or buckets differ).
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock = clock
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------- factories
    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._family(name, "counter", help, labelnames, None)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._family(name, "gauge", help, labelnames, None)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family with the given buckets."""
        return self._family(name, "histogram", help, labelnames, buckets)

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]],
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if (
                existing.kind != kind
                or existing.labelnames != tuple(labelnames)
                or (buckets is not None and existing.buckets != tuple(buckets))
            ):
                raise ConfigurationError(
                    f"metric {name!r} re-registered with conflicting declaration "
                    f"({existing.kind}{existing.labelnames} vs {kind}{tuple(labelnames)})"
                )
            return existing
        family = MetricFamily(name, kind, help, labelnames, buckets)
        self._families[name] = family
        return family

    # --------------------------------------------------------- queries
    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        """All families, name-sorted for deterministic export."""
        return [self._families[name] for name in sorted(self._families)]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    # -------------------------------------------------------- snapshot
    def snapshot(
        self,
        *,
        meta: Optional[Dict[str, Any]] = None,
        timeseries: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Versioned JSON-ready snapshot of every family.

        Wall-clock time is read here — never in instrument hot paths — so
        enabling metrics cannot perturb simulated trajectories.
        """
        snap: Dict[str, Any] = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "kind": "metrics_snapshot",
            "sim_time": float(self.clock()) if self.clock is not None else None,
            "wall_time": time.time(),
            "meta": dict(meta) if meta else {},
            "metrics": [
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "series": family.series(),
                }
                for family in self.families()
            ],
        }
        if timeseries is not None:
            snap["timeseries"] = timeseries
        return snap


class NullMetricsRegistry(MetricsRegistry):
    """Metrics-off default: every factory returns the shared no-op.

    Mirrors :class:`repro.obs.tracer.NullTracer` — components store the
    instrument unconditionally and call it unconditionally; when metrics
    are off each call is one empty method.  Snapshotting a null registry
    is a bug (there is nothing to export), so it raises.
    """

    enabled = False

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> NullInstrument:  # type: ignore[override]
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> NullInstrument:  # type: ignore[override]
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(  # type: ignore[override]
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def snapshot(self, **kwargs: Any) -> Dict[str, Any]:
        """Always raises — a disabled registry has nothing to export."""
        raise ConfigurationError(
            "NULL_METRICS has no data to snapshot; enable metrics "
            "(ExperimentConfig.metrics=True) to export"
        )


#: Shared no-op registry — the default for every component's ``metrics``
#: parameter, so call sites never branch on "is metrics on?".
NULL_METRICS = NullMetricsRegistry()
