"""Human-readable timeline summary of one traced run.

:func:`trace_summary` turns a trace-event stream into the terminal report
the ``repro trace --summary`` flag (and the ``trace`` subcommand by
default) prints: a per-phase breakdown of where task time went
(queue → input → run), the locality mix, per-layer event counts, network
and fault tallies, and the top-N slowest jobs annotated with the
allocation activity that produced them — the paper's story ("did the
allocator hand the right executors out before the stage needed them?") in
one screen.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.metrics.report import format_table
from repro.obs.events import (
    AllocationRound,
    ExecutorGrant,
    JobSpan,
    TaskAttempt,
    TraceEvent,
    TransferSpan,
)

__all__ = ["trace_summary"]


def _phase_breakdown(attempts: List[TaskAttempt]) -> str:
    done = [a for a in attempts if a.get("outcome") == "success"]
    if not done:
        return "task phases: no successful attempts traced"
    totals = {"queue": 0.0, "input": 0.0, "run": 0.0}
    for a in done:
        for phase in totals:
            totals[phase] += float(a.get(phase) or 0.0)
    grand = sum(totals.values()) or 1.0
    rows = [
        [phase, totals[phase], totals[phase] / len(done), 100.0 * totals[phase] / grand]
        for phase in ("queue", "input", "run")
    ]
    return format_table(
        ["phase", "total s", "mean s", "share %"],
        rows,
        title=f"task-time breakdown ({len(done)} successful attempts)",
    )


def _locality_line(attempts: List[TaskAttempt]) -> str:
    levels = Counter(
        a.get("locality")
        for a in attempts
        if a.get("outcome") == "success" and a.get("locality") is not None
    )
    total = sum(levels.values())
    if not total:
        return "locality: no input attempts traced"
    parts = " ".join(
        f"{lvl}: {100.0 * n / total:.1f}%" for lvl, n in sorted(levels.items())
    )
    return f"locality ({total} input attempts): {parts}"


def _slowest_jobs(
    jobs: List[JobSpan],
    rounds: List[AllocationRound],
    grants: List[ExecutorGrant],
    top_n: int,
) -> str:
    if not jobs:
        return "jobs: none finished in the traced window"
    ranked = sorted(jobs, key=lambda j: (-j.dur, j.get("job") or ""))[:top_n]
    rows = []
    for span in ranked:
        app = span.get("app", "")
        window = (span.ts, span.end)
        in_window = [r for r in rounds if window[0] <= r.ts <= window[1]]
        app_grants = [
            g
            for g in grants
            if g.get("app") == app and window[0] <= g.ts <= window[1]
        ]
        dead = sum(1 for g in app_grants if not g.get("ok", True))
        nodes = sorted({g.get("node") for g in app_grants if g.get("node")})
        rows.append(
            [
                span.get("job", ""),
                app,
                span.dur,
                span.get("local_job"),
                len(in_window),
                f"{len(app_grants)}" + (f" ({dead} dead)" if dead else ""),
                ",".join(nodes[:4]) + ("…" if len(nodes) > 4 else ""),
            ]
        )
    return format_table(
        ["job", "app", "jct s", "local", "alloc rounds", "grants to app", "nodes"],
        rows,
        title=f"top {len(rows)} slowest jobs (with allocation activity in their window)",
    )


def trace_summary(
    events: Iterable[TraceEvent], *, top_n: int = 5, dropped: int = 0
) -> str:
    """Render the full text report for one run's trace."""
    events = list(events)
    by_layer: Counter = Counter(e.cat for e in events)
    attempts = [e for e in events if isinstance(e, TaskAttempt)]
    jobs = [e for e in events if isinstance(e, JobSpan)]
    rounds = [e for e in events if isinstance(e, AllocationRound)]
    grants = [e for e in events if isinstance(e, ExecutorGrant)]
    transfers = [e for e in events if isinstance(e, TransferSpan)]
    faults = [e for e in events if e.cat == "faults"]

    lines: List[str] = []
    layer_mix = " ".join(f"{k}: {v}" for k, v in sorted(by_layer.items()))
    head = f"trace: {len(events)} events ({layer_mix})"
    if dropped:
        head += f"  [ring dropped {dropped} oldest events — summary is partial]"
    lines.append(head)

    span = [e.ts for e in events]
    if span:
        lines.append(f"window: t={min(span):.3f}s → t={max(span):.3f}s (virtual)")

    failed_attempts = sum(1 for a in attempts if a.get("outcome") != "success")
    lines.append(
        f"attempts: {len(attempts)} traced, {failed_attempts} not successful; "
        f"allocation rounds: {len(rounds)}; executor grants: {len(grants)} "
        f"({sum(1 for g in grants if not g.get('ok', True))} on dead nodes)"
    )
    if transfers:
        ok = [t for t in transfers if t.get("outcome") == "ok"]
        moved = sum(float(t.get("size") or 0.0) for t in ok)
        mean = sum(t.dur for t in ok) / len(ok) if ok else 0.0
        lines.append(
            f"network: {len(transfers)} transfers ({len(transfers) - len(ok)} "
            f"failed), {moved / 1e9:.2f} GB moved, mean duration {mean:.3f}s"
        )
    if faults:
        kinds = Counter(f"{e.name}" for e in faults)
        lines.append(
            "faults: " + " ".join(f"{k}: {v}" for k, v in sorted(kinds.items()))
        )
    lines.append("")
    lines.append(_phase_breakdown(attempts))
    lines.append(_locality_line(attempts))
    lines.append("")
    lines.append(_slowest_jobs(jobs, rounds, grants, top_n))
    return "\n".join(lines)
