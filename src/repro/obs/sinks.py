"""Trace sinks: where emitted events go.

* :class:`RingSink` — bounded in-memory ring buffer; the default sink the
  experiment runner attaches so a run's trace is inspectable from the
  result object without unbounded memory growth.
* :class:`JsonlSink` — streams each event as one JSON line to a file;
  suitable for very long runs and for feeding external tooling.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, Iterator, List, Optional, Union

from repro.common.errors import ConfigurationError
from repro.obs.events import TraceEvent

__all__ = ["TraceSink", "RingSink", "JsonlSink"]


class TraceSink:
    """Interface: ``write`` one event, ``close`` when the run ends."""

    def write(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        """Record one emitted event."""
        raise NotImplementedError

    def close(self) -> None:
        """Default: nothing to flush."""


class RingSink(TraceSink):
    """Bounded in-memory buffer keeping the most recent events.

    ``capacity=None`` means unbounded (unit tests, short runs).  When the
    ring wraps, the oldest events are dropped and counted in ``dropped`` so
    reports can say "trace truncated" instead of silently lying.
    """

    def __init__(self, capacity: Optional[int] = 1_000_000):
        if capacity is not None and capacity < 1:
            raise ConfigurationError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total = 0

    @property
    def dropped(self) -> int:
        """Events evicted because the ring wrapped."""
        return self.total - len(self._events)

    def write(self, event: TraceEvent) -> None:
        """Append the event, evicting the oldest when full."""
        self._events.append(event)
        self.total += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)


class JsonlSink(TraceSink):
    """Streams events to ``path`` as JSON lines (one event per line).

    Keys within each record are sorted so identical runs produce
    byte-identical files.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = self.path.open("w")
        self.written = 0

    def write(self, event: TraceEvent) -> None:
        """Serialise the event as one JSON line."""
        if self._fh is None:
            raise ConfigurationError(f"JsonlSink {self.path} is closed")
        self._fh.write(json.dumps(event.as_dict(), sort_keys=True))
        self._fh.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
