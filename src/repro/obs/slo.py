"""Declarative SLO engine: objectives evaluated against metric snapshots.

An :class:`SloSpec` names a metric (optionally filtered by labels), a
statistic to extract (``value`` for counters/gauges; ``count``, ``sum``,
``mean``, ``min``, ``max`` or ``pNN`` quantiles for histograms), a
comparison and a threshold::

    SloSpec("p99-jct", metric="job_completion_seconds", stat="p99",
            op="<=", threshold=600.0)

With a ``budget``, histogram objectives additionally get *error-budget
burn* accounting: the fraction of observations violating the per-event
threshold is estimated from the bucket counts
(:meth:`~repro.obs.metrics.Histogram.fraction_leq`) and divided by the
allowed bad fraction — ``burn <= 1`` passes, ``burn > 1`` means the
budget is exhausted.  This mirrors SRE burn-rate practice: an SLO like
"99% of jobs finish within 600 s" is ``threshold=600, budget=0.01``.

Multiple label-matching series aggregate before evaluation (counters and
gauges sum; histograms merge — exact, because bucket merge is
count-conserving).  A missing metric evaluates as 0 for counters unless
the spec is ``required``, in which case it fails with a verdict detail —
absence of a load-shed counter means no sheds, but absence of a JCT
histogram means the run was not metered.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.obs.metrics import Histogram

__all__ = [
    "SloSpec",
    "SloVerdict",
    "SloReport",
    "evaluate_slos",
    "load_slo_specs",
    "default_slos",
]

_OPS = {
    "<=": lambda a, b: a <= b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: a == b,
}

_QUANTILE_RE = re.compile(r"^p(\d{1,2}(?:\.\d+)?)$")
_SCALAR_STATS = ("value", "count", "sum", "mean", "min", "max")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective. Frozen so specs can live in sets/dicts."""

    name: str
    metric: str
    op: str
    threshold: float
    stat: str = "value"
    labels: Dict[str, str] = field(default_factory=dict)
    budget: Optional[float] = None  #: allowed bad fraction (histograms only)
    required: bool = False  #: fail (not zero-fill) when the metric is absent
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConfigurationError(
                f"SLO {self.name!r}: unknown op {self.op!r}; expected one of {sorted(_OPS)}"
            )
        if self.stat not in _SCALAR_STATS and not _QUANTILE_RE.match(self.stat):
            raise ConfigurationError(
                f"SLO {self.name!r}: unknown stat {self.stat!r}; expected "
                f"{_SCALAR_STATS} or pNN"
            )
        if self.budget is not None and not 0.0 < self.budget < 1.0:
            raise ConfigurationError(
                f"SLO {self.name!r}: budget must be in (0, 1), got {self.budget}"
            )
        if self.budget is not None and self.op not in ("<=", "<", ">=", ">"):
            raise ConfigurationError(
                f"SLO {self.name!r}: budget accounting needs an ordering op, got {self.op!r}"
            )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready spec (inverse of the loader's per-entry dict)."""
        return {
            "name": self.name,
            "metric": self.metric,
            "stat": self.stat,
            "labels": dict(self.labels),
            "op": self.op,
            "threshold": self.threshold,
            "budget": self.budget,
            "required": self.required,
            "description": self.description,
        }


@dataclass(frozen=True)
class SloVerdict:
    """Evaluation outcome for one spec."""

    spec: SloSpec
    passed: bool
    measured: Optional[float]
    burn: Optional[float] = None  #: bad_fraction / budget, when budgeted
    bad_fraction: Optional[float] = None
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready verdict row."""
        return {
            "name": self.spec.name,
            "passed": self.passed,
            "measured": self.measured,
            "threshold": self.spec.threshold,
            "op": self.spec.op,
            "stat": self.spec.stat,
            "burn": self.burn,
            "bad_fraction": self.bad_fraction,
            "budget": self.spec.budget,
            "detail": self.detail,
        }

    def describe(self) -> str:
        """One human-readable PASS/FAIL line."""
        status = "PASS" if self.passed else "FAIL"
        measured = "absent" if self.measured is None else f"{self.measured:g}"
        line = (
            f"[{status}] {self.spec.name}: {self.spec.metric}.{self.spec.stat} "
            f"= {measured} (want {self.spec.op} {self.spec.threshold:g})"
        )
        if self.burn is not None:
            line += f"   budget burn {self.burn:.2f}x"
        if self.detail:
            line += f"   [{self.detail}]"
        return line


@dataclass(frozen=True)
class SloReport:
    """All verdicts for one snapshot; ``passed`` is the AND."""

    verdicts: Tuple[SloVerdict, ...]

    @property
    def passed(self) -> bool:
        """True iff every verdict passed."""
        return all(v.passed for v in self.verdicts)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready report."""
        return {
            "passed": self.passed,
            "verdicts": [v.as_dict() for v in self.verdicts],
        }

    def describe(self) -> str:
        """All verdict lines plus an N/M summary footer."""
        lines = [v.describe() for v in self.verdicts]
        failed = sum(not v.passed for v in self.verdicts)
        lines.append(
            f"SLOs: {len(self.verdicts) - failed}/{len(self.verdicts)} passed"
            + (f" ({failed} FAILED)" if failed else "")
        )
        return "\n".join(lines)


def _find_family(snapshot: Dict[str, Any], metric: str) -> Optional[Dict[str, Any]]:
    for family in snapshot.get("metrics", ()):
        if family["name"] == metric:
            return family
    return None


def _matching_series(family: Dict[str, Any], labels: Dict[str, str]) -> List[Dict[str, Any]]:
    out = []
    for series in family["series"]:
        have = series["labels"]
        if all(have.get(k) == str(v) for k, v in labels.items()):
            out.append(series)
    return out


def _aggregate(family: Dict[str, Any], series: List[Dict[str, Any]]):
    """Sum scalar series; merge histogram series into one Histogram."""
    if family["type"] in ("counter", "gauge"):
        return sum(s["value"] for s in series)
    merged = Histogram.from_dict(series[0])
    for extra in series[1:]:
        merged.merge(Histogram.from_dict(extra))
    return merged


def _extract_stat(spec: SloSpec, aggregated: Any) -> Optional[float]:
    if isinstance(aggregated, Histogram):
        if spec.stat == "value":
            raise ConfigurationError(
                f"SLO {spec.name!r}: stat 'value' is for counters/gauges; "
                f"{spec.metric!r} is a histogram"
            )
        if spec.stat == "count":
            return float(aggregated.count)
        if spec.stat == "sum":
            return aggregated.sum
        if spec.stat == "mean":
            return aggregated.mean
        if spec.stat == "min":
            return aggregated.min if aggregated.count else None
        if spec.stat == "max":
            return aggregated.max if aggregated.count else None
        match = _QUANTILE_RE.match(spec.stat)
        assert match is not None  # __post_init__ validated
        return aggregated.quantile(float(match.group(1)) / 100.0)
    if spec.stat != "value":
        raise ConfigurationError(
            f"SLO {spec.name!r}: stat {spec.stat!r} needs a histogram; "
            f"{spec.metric!r} is a scalar metric"
        )
    return float(aggregated)


def _evaluate_one(spec: SloSpec, snapshot: Dict[str, Any]) -> SloVerdict:
    family = _find_family(snapshot, spec.metric)
    series = _matching_series(family, spec.labels) if family else []
    if not series:
        if spec.required:
            return SloVerdict(spec, passed=False, measured=None,
                             detail="required metric absent from snapshot")
        # Absent counter == zero events: evaluate 0 against the threshold.
        measured = 0.0
        return SloVerdict(spec, passed=_OPS[spec.op](measured, spec.threshold),
                          measured=measured, detail="metric absent; treated as 0")

    aggregated = _aggregate(family, series)
    measured = _extract_stat(spec, aggregated)
    if measured is None:
        # Histogram exists but saw no observations (e.g. no jobs finished).
        if spec.required:
            return SloVerdict(spec, passed=False, measured=None,
                              detail="histogram empty")
        return SloVerdict(spec, passed=True, measured=None,
                          detail="histogram empty; vacuously satisfied")

    if spec.budget is not None and isinstance(aggregated, Histogram):
        frac_leq = aggregated.fraction_leq(spec.threshold)
        good = frac_leq if spec.op in ("<=", "<") else 1.0 - frac_leq
        bad_fraction = 1.0 - good
        burn = bad_fraction / spec.budget
        return SloVerdict(
            spec,
            passed=burn <= 1.0,
            measured=measured,
            burn=burn,
            bad_fraction=bad_fraction,
            detail=f"{bad_fraction:.1%} of events violate the per-event target",
        )

    return SloVerdict(spec, passed=_OPS[spec.op](measured, spec.threshold),
                      measured=measured)


def evaluate_slos(specs: List[SloSpec], snapshot: Dict[str, Any]) -> SloReport:
    """Evaluate every spec against one snapshot dict."""
    return SloReport(tuple(_evaluate_one(spec, snapshot) for spec in specs))


def load_slo_specs(path: Union[str, Path]) -> List[SloSpec]:
    """Load specs from a JSON file: ``{"slos": [{...spec fields...}]}``."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read SLO spec {path}: {exc}") from exc
    entries = raw.get("slos") if isinstance(raw, dict) else None
    if not isinstance(entries, list):
        raise ConfigurationError(f"{path}: expected an object with an 'slos' list")
    specs = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ConfigurationError(f"{path}: slos[{i}] is not an object")
        try:
            specs.append(SloSpec(**entry))
        except TypeError as exc:
            raise ConfigurationError(f"{path}: slos[{i}]: {exc}") from exc
    return specs


def default_slos(include_recovery: bool = False) -> List[SloSpec]:
    """The smoke-run scoreboard objectives (used by ``repro report --smoke``).

    Thresholds are deliberately loose — these gate "the run is sane", not
    performance; perf regressions are caught by ``repro report --diff``.

    With ``include_recovery`` the crash-recovery objectives join the
    scoreboard: restarts must finish reconciliation quickly and no zombie
    executor may survive it (both metrics exist on every recovery-enabled
    run, so ``required=True`` also catches runs that forgot the stack).
    """
    specs = [
        SloSpec(
            "all-jobs-finish",
            metric="run_jobs_unfinished",
            op="<=",
            threshold=0.0,
            description="every submitted job reached completion",
        ),
        SloSpec(
            "locality-floor",
            metric="run_locality_mean",
            op=">=",
            threshold=0.1,
            description="mean data-locality stays above a sanity floor",
        ),
        SloSpec(
            "p99-jct",
            metric="job_completion_seconds",
            stat="p99",
            op="<=",
            threshold=2000.0,
            budget=0.05,
            required=True,
            description="95% of jobs complete within the per-job target",
        ),
        SloSpec(
            "no-load-shed",
            metric="admission_decisions_total",
            labels={"decision": "shed"},
            op="<=",
            threshold=0.0,
            description="admission control never had to shed a job",
        ),
    ]
    if include_recovery:
        specs.extend([
            SloSpec(
                "recovery-p99",
                metric="manager_recovery_seconds",
                stat="p99",
                op="<=",
                threshold=600.0,
                description="p99 crash-to-recovered stays inside the MTTR bound",
            ),
            SloSpec(
                "no-zombie-survivors",
                metric="manager_zombies_surviving",
                op="<=",
                threshold=0.0,
                required=True,
                description="reconciliation reclaimed every zombie executor",
            ),
        ])
    return specs
