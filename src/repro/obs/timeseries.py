"""Sim-time-interval samplers feeding counter series into a tracer.

A :class:`TimeSeriesSampler` probes a set of named callables every
``interval`` virtual seconds and emits one
:class:`~repro.obs.events.CounterEvent` per series per tick (plus an
in-memory copy in :attr:`samples` for reports and tests).

The sampler is careful never to keep the simulation alive on its own: the
experiment runner runs to *quiescence* (empty event queue), so a naively
self-rescheduling probe would tick forever.  Each tick therefore re-arms
only while the simulation still has other pending work; when the last real
event has fired the sampler falls silent and the run ends exactly as it
would have untraced (the sampled values themselves are read-only probes, so
enabling tracing never changes simulation behaviour).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.events import ENGINE
from repro.obs.tracer import Tracer
from repro.simulation.engine import EventHandle, Simulation

__all__ = ["TimeSeriesSampler"]


class TimeSeriesSampler:
    """Samples registered probes on a fixed virtual-time grid."""

    def __init__(self, sim: Simulation, tracer: Tracer, interval: float = 5.0):
        if interval <= 0:
            raise ConfigurationError(
                f"sample interval must be positive, got {interval}"
            )
        self.sim = sim
        self.tracer = tracer
        self.interval = interval
        self._series: List[Tuple[str, str, str, Callable[[], float]]] = []
        #: series name → [(t, value), ...] in tick order
        self.samples: Dict[str, List[Tuple[float, float]]] = {}
        self._event: Optional[EventHandle] = None
        self.ticks = 0
        self._last_sample_time: Optional[float] = None

    def add_series(
        self,
        name: str,
        probe: Callable[[], float],
        *,
        cat: str = ENGINE,
        track: str = "cluster",
    ) -> None:
        """Register a probe; ``probe()`` must be read-only and cheap."""
        if any(n == name for n, _, _, _ in self._series):
            raise ConfigurationError(f"duplicate series {name!r}")
        self._series.append((name, cat, track, probe))
        self.samples[name] = []

    def start(self) -> None:
        """Take the t=0 sample and arm the periodic grid."""
        self._sample()
        self._arm()

    def latest(self, name: str) -> Optional[float]:
        """Most recent value of one series (None before the first tick)."""
        points = self.samples.get(name)
        return points[-1][1] if points else None

    def flush(self) -> None:
        """Take one final sample at the current instant (idempotent).

        The runner calls this after draining the event queue so runs
        shorter than one interval still get an end-of-run point and every
        series closes on the final simulation state.  A pending grid tick
        is cancelled first — the simulation is over, the grid is moot.
        """
        if self._event is not None:
            self._event.cancel()
            self._event = None
        if self._last_sample_time is None or self.sim.now > self._last_sample_time:
            self._sample()

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready projection for snapshot inclusion."""
        return {
            "interval": self.interval,
            "ticks": self.ticks,
            "series": {
                name: [[t, v] for t, v in points]
                for name, points in self.samples.items()
            },
        }

    # ----------------------------------------------------------------- ticks
    def _arm(self) -> None:
        # Next grid point strictly after now (floating-robust).
        now = self.sim.now
        k = math.floor(now / self.interval) + 1
        when = k * self.interval
        if when <= now:
            when = now + self.interval
        self._event = self.sim.schedule_at(when, self._tick)

    def _tick(self) -> None:
        self._event = None
        self._sample()
        # Re-arm only while other work exists, else the probe itself would
        # keep the event queue non-empty forever and break run-to-quiescence.
        if self.sim.pending_events > 0 or self.sim.deferred_count > 0:
            self._arm()

    def _sample(self) -> None:
        now = self.sim.now
        self.ticks += 1
        self._last_sample_time = now
        for name, cat, track, probe in self._series:
            value = float(probe())
            self.samples[name].append((now, value))
            self.tracer.counter(name, cat, value, track=track)
