"""Tracer: the fan-out point components emit trace events into.

Design constraints, in priority order:

1. **Tracing off must cost ~nothing and change no behaviour.**  Every
   component holds a tracer unconditionally; the module-level
   :data:`NULL_TRACER` default has ``enabled = False``, instrumentation
   sites guard with ``if tracer.enabled:`` (one attribute read and a
   branch) and never construct event objects on the cold path, and the
   tracer itself schedules nothing on the simulation.
2. **Determinism.**  The tracer carries the simulation clock so helpers can
   stamp events, and nothing here ever reads the wall clock — two runs from
   one seed produce byte-identical event streams.
3. **Fan-out.**  One emit feeds every attached sink (ring buffer, JSONL
   file, …); sinks are ordered and flushed/closed together.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.obs.events import CounterEvent, SpanEvent, TraceEvent
from repro.obs.sinks import RingSink, TraceSink

__all__ = ["Tracer", "NullTracer", "NULL_TRACER"]


class Tracer:
    """Emits :class:`~repro.obs.events.TraceEvent` objects to its sinks."""

    __slots__ = ("enabled", "clock", "_sinks")

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sinks: Iterable[TraceSink] = (),
        enabled: bool = True,
    ):
        self.enabled = enabled
        self.clock = clock
        self._sinks: List[TraceSink] = list(sinks)

    # ---------------------------------------------------------------- sinks
    @property
    def sinks(self) -> List[TraceSink]:
        """The attached sinks (emission order)."""
        return list(self._sinks)

    def add_sink(self, sink: TraceSink) -> None:
        """Attach another sink; it sees only events emitted from now on."""
        self._sinks.append(sink)

    def events(self) -> List[TraceEvent]:
        """Events held by the first in-memory ring sink (empty if none).

        The conventional way results expose their trace: the runner always
        puts a :class:`~repro.obs.sinks.RingSink` first.
        """
        for sink in self._sinks:
            if isinstance(sink, RingSink):
                return list(sink)
        return []

    def close(self) -> None:
        """Close every sink (flushes file sinks)."""
        for sink in self._sinks:
            sink.close()

    # ------------------------------------------------------------- emission
    def emit(self, event: TraceEvent) -> None:
        """Write one event to every sink."""
        if not self.enabled:
            return
        for sink in self._sinks:
            sink.write(event)

    def _now(self) -> float:
        if self.clock is None:
            raise RuntimeError(
                "tracer has no clock; construct events with explicit ts "
                "or build the Tracer with clock=lambda: sim.now"
            )
        return self.clock()

    def instant(
        self, name: str, cat: str, track: str = "", lane: str = "", **attrs: Any
    ) -> None:
        """Emit an instant event stamped with the tracer's clock."""
        if not self.enabled:
            return
        self.emit(TraceEvent(self._now(), name, cat, track, lane, attrs))

    def span(
        self,
        name: str,
        cat: str,
        start: float,
        end: Optional[float] = None,
        track: str = "",
        lane: str = "",
        **attrs: Any,
    ) -> None:
        """Emit a span from ``start`` to ``end`` (default: the clock's now)."""
        if not self.enabled:
            return
        if end is None:
            end = self._now()
        self.emit(SpanEvent(start, name, cat, track, lane, attrs, dur=end - start))

    def counter(
        self, name: str, cat: str, value: float, track: str = "", **attrs: Any
    ) -> None:
        """Emit one sample of a numeric series."""
        if not self.enabled:
            return
        self.emit(CounterEvent(self._now(), name, cat, track, "", attrs, value=value))


class NullTracer(Tracer):
    """The always-off tracer — emission is a no-op, sinks are rejected.

    A single shared instance (:data:`NULL_TRACER`) is the default tracer of
    every instrumented component, so uninstrumented construction paths need
    no special-casing and ``tracer.enabled`` is the only check hot paths pay.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(clock=None, sinks=(), enabled=False)

    def add_sink(self, sink: TraceSink) -> None:
        raise RuntimeError("NULL_TRACER is shared; build a real Tracer instead")

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - trivial
        pass


#: Shared no-op default; components do ``self.tracer = tracer or NULL_TRACER``.
NULL_TRACER = NullTracer()
