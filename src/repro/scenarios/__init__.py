"""Simulator-validation scenarios: physics checks as regression tests.

Every hot-path rewrite so far shipped with *self*-equivalence evidence
(golden traces, twin-engine lockstep).  This package checks the simulator
against **external** ground truth instead: closed-form queueing theory
(:mod:`repro.analysis.queueing`), the hypergeometric locality expectations
(:mod:`repro.analysis.expectations`) and structural invariants of the new
workload generators (trace replay, diurnal load, elastic churn).

Each scenario is a self-contained object that drives the engine, measures,
and returns a :class:`~repro.scenarios.base.ScenarioResult` whose checks
carry explicit tolerance bands.  ``python -m repro validate`` runs the
registered suite and writes a pass/fail report artifact; the ``--smoke``
subset is a CI gate.
"""

from repro.scenarios.base import (
    Check,
    ScenarioProfile,
    ScenarioResult,
    SuiteReport,
    ValidationScenario,
    all_scenarios,
    get_scenario,
    plan_suite,
    register,
    run_suite,
    suite_cell_label,
)

# Importing the scenario modules registers their scenarios.
from repro.scenarios import (  # noqa: F401
    degraded,
    littles_law,
    locality,
    queueing,
    recovery,
    workloads,
)

__all__ = [
    "Check",
    "ScenarioProfile",
    "ScenarioResult",
    "SuiteReport",
    "ValidationScenario",
    "all_scenarios",
    "get_scenario",
    "plan_suite",
    "register",
    "run_suite",
    "suite_cell_label",
]
