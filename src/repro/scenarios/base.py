"""Scenario framework: checks, tolerance bands, registry and suite runner.

A *validation scenario* measures something the simulator computes the hard
way (event by event) and compares it against an independent expectation —
a closed-form queueing result, a combinatorial bound, or a structural
invariant of a generator.  Measurements are stochastic, so every
comparison carries an explicit tolerance band chosen for its sample size;
all randomness flows through :class:`~repro.common.rng.RngStreams`, so a
scenario's verdict is a pure function of ``(seed, profile)`` and can gate
CI without flakes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError

__all__ = [
    "Check",
    "ScenarioProfile",
    "ScenarioResult",
    "SuiteReport",
    "ValidationScenario",
    "register",
    "get_scenario",
    "all_scenarios",
    "plan_suite",
    "suite_cell_label",
    "run_suite",
]


@dataclass(frozen=True)
class Check:
    """One measured-vs-expected comparison with its band and verdict."""

    name: str
    measured: float
    expected: float
    #: Half-width of the acceptance band around ``expected`` (same units as
    #: the comparison: relative for ``within``, absolute for bounds).
    tolerance: float
    passed: bool
    kind: str  # "relative" | "upper" | "lower" | "exact"
    detail: str = ""

    # ------------------------------------------------------------ factories
    @staticmethod
    def within(
        name: str, measured: float, expected: float, rel_tol: float, detail: str = ""
    ) -> "Check":
        """Pass iff ``|measured − expected| <= rel_tol · |expected|``."""
        if rel_tol <= 0:
            raise ConfigurationError(f"{name}: rel_tol must be positive")
        err = abs(measured - expected)
        rel_err = err / abs(expected) if expected else float("inf")
        return Check(
            name=name,
            measured=measured,
            expected=expected,
            tolerance=rel_tol,
            passed=err <= rel_tol * abs(expected),
            kind="relative",
            detail=detail or f"relative error {rel_err:.1%}",
        )

    @staticmethod
    def at_most(
        name: str, measured: float, bound: float, slack: float = 0.0, detail: str = ""
    ) -> "Check":
        """Pass iff ``measured <= bound + slack`` (absolute slack)."""
        return Check(
            name=name,
            measured=measured,
            expected=bound,
            tolerance=slack,
            passed=measured <= bound + slack,
            kind="upper",
            detail=detail,
        )

    @staticmethod
    def at_least(
        name: str, measured: float, bound: float, slack: float = 0.0, detail: str = ""
    ) -> "Check":
        """Pass iff ``measured >= bound − slack`` (absolute slack)."""
        return Check(
            name=name,
            measured=measured,
            expected=bound,
            tolerance=slack,
            passed=measured >= bound - slack,
            kind="lower",
            detail=detail,
        )

    @staticmethod
    def that(name: str, condition: bool, detail: str = "") -> "Check":
        """A structural invariant: pass iff ``condition``."""
        return Check(
            name=name,
            measured=float(bool(condition)),
            expected=1.0,
            tolerance=0.0,
            passed=bool(condition),
            kind="exact",
            detail=detail,
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready projection."""
        return {
            "name": self.name,
            "measured": self.measured,
            "expected": self.expected,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "kind": self.kind,
            "detail": self.detail,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Check":
        """Inverse of :meth:`as_dict` (used by the parallel suite merge)."""
        return Check(
            name=data["name"],
            measured=data["measured"],
            expected=data["expected"],
            tolerance=data["tolerance"],
            passed=data["passed"],
            kind=data["kind"],
            detail=data.get("detail", ""),
        )


@dataclass(frozen=True)
class ScenarioProfile:
    """How hard to drive a scenario, and against which engine variants.

    ``smoke`` trades sample size for wall time (CI gate); the full profile
    is the nightly/manual setting.  The engine fields select the network
    and allocation implementations for the scenarios that run through the
    full experiment stack; pure-engine queueing scenarios ignore them.
    """

    smoke: bool = False
    seed: int = 0
    network_engine: str = "incremental"
    alloc_engine: str = "incremental"

    def scaled(self, full: int, smoke: int) -> int:
        """Pick a sample count for this profile."""
        return smoke if self.smoke else full


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    name: str
    title: str
    profile: ScenarioProfile
    checks: List[Check] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def passed(self) -> bool:
        """True iff every check passed (a scenario with no checks fails)."""
        return bool(self.checks) and all(c.passed for c in self.checks)

    @property
    def failures(self) -> List[Check]:
        """The checks that missed their bands."""
        return [c for c in self.checks if not c.passed]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready projection for the report artifact."""
        return {
            "name": self.name,
            "title": self.title,
            "passed": self.passed,
            "profile": {
                "smoke": self.profile.smoke,
                "seed": self.profile.seed,
                "network_engine": self.profile.network_engine,
                "alloc_engine": self.profile.alloc_engine,
            },
            "params": dict(self.params),
            "checks": [c.as_dict() for c in self.checks],
            "wall_seconds": self.wall_seconds,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ScenarioResult":
        """Inverse of :meth:`as_dict` — ``passed`` is re-derived from the
        checks, so a round-tripped result reports the identical verdict."""
        return ScenarioResult(
            name=data["name"],
            title=data["title"],
            profile=ScenarioProfile(**data["profile"]),
            checks=[Check.from_dict(c) for c in data["checks"]],
            params=dict(data.get("params", {})),
            wall_seconds=data.get("wall_seconds", 0.0),
        )


class ValidationScenario:
    """Base class: subclasses set the metadata and implement :meth:`build`.

    ``engine_sensitive`` marks scenarios whose measurements flow through
    the network/allocation engines — the validate CLI repeats those under
    each engine variant, so both the optimized and the seed implementation
    obey the same physics.
    """

    name: str = ""
    title: str = ""
    #: runs through run_experiment → repeat under each engine variant
    engine_sensitive: bool = False
    #: included in ``repro validate --smoke`` (the CI gate)
    in_smoke: bool = True

    def build(self, profile: ScenarioProfile, result: ScenarioResult) -> None:
        """Measure and append checks to ``result`` (subclass hook)."""
        raise NotImplementedError

    def run(self, profile: ScenarioProfile) -> ScenarioResult:
        """Execute the scenario under ``profile``."""
        import time

        result = ScenarioResult(name=self.name, title=self.title, profile=profile)
        t0 = time.perf_counter()
        self.build(profile, result)
        result.wall_seconds = time.perf_counter() - t0
        return result


_REGISTRY: Dict[str, ValidationScenario] = {}


def register(scenario_cls: type) -> type:
    """Class decorator: instantiate and add to the suite registry."""
    scenario = scenario_cls()
    if not scenario.name:
        raise ConfigurationError(f"{scenario_cls.__name__} has no name")
    if scenario.name in _REGISTRY:
        raise ConfigurationError(f"duplicate scenario {scenario.name!r}")
    _REGISTRY[scenario.name] = scenario
    return scenario_cls


def get_scenario(name: str) -> ValidationScenario:
    """Look up one registered scenario."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def all_scenarios() -> Dict[str, ValidationScenario]:
    """Registered scenarios, keyed by name (insertion-ordered)."""
    return dict(_REGISTRY)


@dataclass
class SuiteReport:
    """All results of one validate invocation."""

    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True iff every scenario passed."""
        return bool(self.results) and all(r.passed for r in self.results)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready projection (the ``VALIDATION.json`` artifact)."""
        return {
            "passed": self.passed,
            "scenarios": [r.as_dict() for r in self.results],
        }

    def summary_rows(self) -> List[List[Any]]:
        """Rows for the CLI table: scenario, engines, checks, verdict."""
        rows = []
        for r in self.results:
            engines = (
                f"{r.profile.network_engine}/{r.profile.alloc_engine}"
                if get_scenario(r.name).engine_sensitive
                else "-"
            )
            rows.append([
                r.name,
                engines,
                f"{sum(c.passed for c in r.checks)}/{len(r.checks)}",
                "pass" if r.passed else "FAIL",
            ])
        return rows


def plan_suite(
    names: Optional[Sequence[str]] = None,
    profile: ScenarioProfile = ScenarioProfile(),
    *,
    engine_variants: Optional[Sequence[tuple]] = None,
) -> List[tuple]:
    """The ordered ``(scenario name, profile)`` cells a suite run executes.

    This is the single source of truth for suite composition: the serial
    :func:`run_suite` walks it in order, and the parallel fan-out runner
    shards it by cell index — so a merged parallel report lists exactly the
    results, in exactly the order, a serial run would have produced.
    """
    from dataclasses import replace

    registry = all_scenarios()
    if names:
        picked = [(n, get_scenario(n)) for n in names]
    else:
        picked = [
            (n, s)
            for n, s in registry.items()
            if s.in_smoke or not profile.smoke
        ]
    cells: List[tuple] = []
    for name, scenario in picked:
        if scenario.engine_sensitive and engine_variants:
            profiles = [
                replace(profile, network_engine=net, alloc_engine=alloc)
                for net, alloc in engine_variants
            ]
        else:
            profiles = [profile]
        for p in profiles:
            cells.append((name, p))
    return cells


def suite_cell_label(name: str, profile: ScenarioProfile) -> str:
    """The progress label for one suite cell."""
    tag = (
        f" [{profile.network_engine}/{profile.alloc_engine}]"
        if get_scenario(name).engine_sensitive
        else ""
    )
    return f"{name}{tag}"


def run_suite(
    names: Optional[Sequence[str]] = None,
    profile: ScenarioProfile = ScenarioProfile(),
    *,
    engine_variants: Optional[Sequence[tuple]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SuiteReport:
    """Run scenarios (all registered ones by default) under ``profile``.

    ``engine_variants`` is a sequence of ``(network_engine, alloc_engine)``
    pairs; engine-sensitive scenarios run once per pair (pure-engine
    scenarios run once, under the profile's own engines).  In smoke mode,
    scenarios with ``in_smoke = False`` are skipped unless explicitly named.
    """
    report = SuiteReport()
    for name, p in plan_suite(names, profile, engine_variants=engine_variants):
        if progress is not None:
            progress(suite_cell_label(name, p))
        report.results.append(get_scenario(name).run(p))
    return report
