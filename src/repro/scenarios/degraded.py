"""Brownout validation: degraded-mode behavior against closed forms.

Gray failure — nodes that are slow, not dead — is the regime the
robustness layer exists for, and it admits a clean first-order theory:
slow ``k`` of ``n`` nodes down to ``1/s`` of their speed and, under
uniform placement, mean task service inflates by at most
``1 + (k/n)(s − 1)`` (:func:`repro.analysis.expectations
.expected_brownout_inflation`) while any single job inflates by at most
``s``.  The adaptive detector should *suspect* the slowed nodes (they are
deprioritised, never declared dead), so the measured mean-JCT inflation
must land inside the derived band — above 1, below the uniform-placement
bound.

A second arm adds a real node crash on top of the brownout and pins the
recovery machinery: circuit breakers must trip and then reconverge (none
still excluding a node at quiescence), and the measured MTTR must stay
within the detection-plus-restart budget — degraded mode ends, it does
not linger.
"""

from __future__ import annotations

from repro.analysis.expectations import (
    degraded_capacity_ratio,
    expected_brownout_inflation,
)
from repro.experiments.config import ExperimentConfig
from repro.faults.plan import FaultPlan, NodeFailure, NodeSlowdown
from repro.scenarios.base import (
    Check,
    ScenarioProfile,
    ScenarioResult,
    ValidationScenario,
    register,
)

__all__ = ["BrownoutScenario"]


@register
class BrownoutScenario(ValidationScenario):
    """k-of-n slowdown: JCT inflation in band, breakers reconverge, MTTR bounded."""

    name = "brownout"
    title = "Brownout: slowdown inflation band, breaker reconvergence, MTTR"
    engine_sensitive = True

    NODES = 10
    SLOWED = 3
    FACTOR = 4.0
    #: staggered onsets, late enough that the emission-clock detector has a
    #: healthy heartbeat history to contrast the stretch against
    SLOW_ATS = (30.0, 33.0, 36.0)
    SLOW_DURATION = 300.0  # covers the rest of the run once it starts
    CRASH_AT = 10.0
    RESTART_DELAY = 12.0
    DETECTOR_TIMEOUT = 10.0

    def _config(self, profile: ScenarioProfile) -> ExperimentConfig:
        return ExperimentConfig(
            manager="custody",
            workload="wordcount",
            num_nodes=self.NODES,
            num_apps=2,
            jobs_per_app=profile.scaled(4, 3),
            seed=profile.seed,
            network_engine=profile.network_engine,
            alloc_engine=profile.alloc_engine,
            detector_timeout=self.DETECTOR_TIMEOUT,
            detector_mode="adaptive",
            detector_suspect_after=2.5,
            circuit_breaker=True,
            blacklist_timeout=10.0,
            hedging=True,
            retry_jitter=True,
        )

    def _slow_plan(self) -> FaultPlan:
        plan = FaultPlan()
        for i in range(self.SLOWED):
            plan.add(
                NodeSlowdown(
                    at=self.SLOW_ATS[i],
                    node_id=f"worker-{i:03d}",
                    duration=self.SLOW_DURATION,
                    factor=self.FACTOR,
                )
            )
        return plan

    def build(self, profile: ScenarioProfile, result: ScenarioResult) -> None:
        from repro.experiments.runner import run_experiment

        config = self._config(profile)
        inflation_bound = expected_brownout_inflation(
            self.NODES, self.SLOWED, self.FACTOR
        )
        result.params = {
            "nodes": self.NODES,
            "slowed": self.SLOWED,
            "factor": self.FACTOR,
            "jobs_per_app": config.jobs_per_app,
            "capacity_ratio": degraded_capacity_ratio(
                self.NODES, self.SLOWED, self.FACTOR
            ),
            "inflation_bound": inflation_bound,
        }

        baseline = run_experiment(config)
        brownout = run_experiment(config, fault_plan=self._slow_plan())

        crash_plan = self._slow_plan()
        crash_plan.add(
            NodeFailure(
                at=self.CRASH_AT,
                node_id=f"worker-{self.NODES - 1:03d}",
                restart_delay=self.RESTART_DELAY,
            )
        )
        recovery = run_experiment(config, fault_plan=crash_plan)

        result.checks.append(
            Check.that(
                "brownout.finished",
                baseline.metrics.unfinished_jobs == 0
                and brownout.metrics.unfinished_jobs == 0
                and recovery.metrics.unfinished_jobs == 0,
                detail="all three arms drain every job",
            )
        )
        assert baseline.metrics.avg_jct and brownout.metrics.avg_jct
        ratio = brownout.metrics.avg_jct / baseline.metrics.avg_jct
        result.params["jct_ratio"] = ratio
        # The derived band: slowing nodes cannot speed the cluster up; no
        # job inflates beyond the slowdown factor itself (hard ceiling);
        # and the measured mean sits near the uniform-placement estimate
        # 1 + (k/n)(s-1), with headroom for queueing above it and
        # suspected-node deprioritisation below it.
        result.checks.append(
            Check.at_least(
                "brownout.jct_inflation.floor",
                ratio,
                1.0,
                slack=0.05,
                detail="brownout never speeds the cluster up",
            )
        )
        result.checks.append(
            Check.at_most(
                "brownout.jct_inflation.ceiling",
                ratio,
                self.FACTOR,
                detail=f"mean JCT inflation under the slowdown factor s = {self.FACTOR}",
            )
        )
        result.checks.append(
            Check.within(
                "brownout.jct_inflation.estimate",
                ratio,
                inflation_bound,
                0.35,
                detail=(
                    f"mean JCT inflation near 1 + (k/n)(s-1) = {inflation_bound} "
                    "(queueing above, deprioritisation below)"
                ),
            )
        )

        faults = brownout.faults
        assert faults is not None
        result.checks.append(
            Check.at_least(
                "brownout.suspicions",
                float(faults.detector_suspicions),
                1.0,
                detail="the adaptive detector noticed the slowed nodes",
            )
        )
        result.checks.append(
            Check.that(
                "brownout.no_false_deaths",
                faults.detector_true_positives == 0 and faults.abandoned_tasks == 0,
                detail="slow nodes are suspected, not declared dead; no work lost",
            )
        )

        rec_faults = recovery.faults
        assert rec_faults is not None
        result.checks.append(
            Check.that(
                "recovery.breakers_reconverged",
                rec_faults.breakers_open_at_end == 0,
                detail="no breaker still excludes a node at quiescence",
            )
        )
        result.checks.append(
            Check.that(
                "recovery.breaker_probe_invariant",
                rec_faults.breaker_closes <= rec_faults.breaker_probes,
                detail="a breaker can only close through a half-open probe",
            )
        )
        node_mttr = rec_faults.mttr.get("node", 0.0)
        result.params["node_mttr"] = node_mttr
        result.checks.append(
            Check.at_most(
                "recovery.mttr_bounded",
                node_mttr,
                self.RESTART_DELAY + self.DETECTOR_TIMEOUT,
                detail="crash repair within restart delay + detection budget",
            )
        )
        result.checks.append(
            Check.at_least(
                "recovery.mttr_measured",
                node_mttr,
                self.RESTART_DELAY,
                slack=0.5,
                detail="the crash actually took its restart delay to heal",
            )
        )
