"""Little's law on the full experiment stack, across two bookkeeping layers.

The queueing scenarios validate the bare engine; this one validates the
whole cluster pipeline — managers, drivers, executors, HDFS reads,
shuffle transfers — by checking operational laws that any correctly
clocked queueing system must satisfy, using measurements from *different
layers* of the stack:

* the **cluster layer**: the time-series sampler polls live executor
  occupancy (``executors.busy_fraction``) and driver queues
  (``tasks.pending``) on a fine grid during the run;
* the **workload layer**: the driver stamps ``submitted_at`` /
  ``started_at`` / ``finished_at`` on every task.

Utilization law: mean busy slots  =  (Σ task service time) / horizon.
Little's law:    mean tasks in system  =  λ · mean task sojourn.

The left sides integrate sampled cluster state; the right sides are pure
timestamp arithmetic.  They agree only if executor occupancy intervals
and driver timestamps describe the *same* physical schedule — a drifted
clock, a leaked slot, or a task launched while still counted pending all
show up as a band violation.  Runs under every engine variant
(``engine_sensitive``), so the incremental network and allocation paths
obey the same physics as the seed implementations they replaced.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.config import ExperimentConfig
from repro.scenarios.base import (
    Check,
    ScenarioProfile,
    ScenarioResult,
    ValidationScenario,
    register,
)

__all__ = ["LittlesLawScenario", "time_average"]


def time_average(samples: List[Tuple[float, float]]) -> float:
    """Left-Riemann time average of a sampled piecewise-constant series."""
    if len(samples) < 2:
        return samples[0][1] if samples else 0.0
    area = 0.0
    for (t0, v0), (t1, _) in zip(samples, samples[1:]):
        area += v0 * (t1 - t0)
    span = samples[-1][0] - samples[0][0]
    return area / span if span > 0 else samples[0][1]


@register
class LittlesLawScenario(ValidationScenario):
    """L = λW and the utilization law on executor slots, within 5%."""

    name = "littles_law"
    title = "Little's law across cluster and workload layers"
    engine_sensitive = True

    #: fine sampling grid — the integration error of the cluster-layer
    #: estimate must stay well inside the 5% acceptance band
    SAMPLE_INTERVAL = 0.5
    TOLERANCE = 0.05

    def build(self, profile: ScenarioProfile, result: ScenarioResult) -> None:
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            manager="custody",
            workload="wordcount",
            num_nodes=10,
            num_apps=2,
            jobs_per_app=profile.scaled(6, 4),
            seed=profile.seed,
            network_engine=profile.network_engine,
            alloc_engine=profile.alloc_engine,
            trace=True,
            trace_sample_interval=self.SAMPLE_INTERVAL,
        )
        result.params = {
            "nodes": config.num_nodes,
            "jobs_per_app": config.jobs_per_app,
            "sample_interval": self.SAMPLE_INTERVAL,
        }
        run = run_experiment(config)
        assert run.sampler is not None
        total_slots = (
            config.num_nodes * config.executors_per_node * config.executor_slots
        )

        tasks = [
            task
            for app in run.apps
            for job in app.jobs
            for stage in job.stages
            for task in stage.tasks
            if task.finished_at is not None and not task.cancelled
        ]
        horizon = run.sim_time
        n = len(tasks)
        result.params["tasks"] = n
        result.params["horizon"] = horizon
        if not tasks or horizon <= 0:
            result.checks.append(
                Check.that("littles_law.ran", False, detail="no finished tasks")
            )
            return

        # Cluster-layer estimates (sampled live state).
        busy_mean = (
            time_average(run.sampler.samples["executors.busy_fraction"])
            * total_slots
        )
        pending_mean = time_average(run.sampler.samples["tasks.pending"])

        # Workload-layer estimates (driver timestamps).
        service_sum = sum(t.finished_at - t.started_at for t in tasks)
        sojourn_sum = sum(t.finished_at - t.submitted_at for t in tasks)
        lam = n / horizon
        mean_sojourn = sojourn_sum / n

        result.checks.append(
            Check.within(
                "utilization_law",
                busy_mean,
                service_sum / horizon,
                self.TOLERANCE,
                detail=(
                    f"sampled busy slots vs Σ service / T "
                    f"({n} tasks over {horizon:.0f}s)"
                ),
            )
        )
        result.checks.append(
            Check.within(
                "littles_law",
                busy_mean + pending_mean,
                lam * mean_sojourn,
                self.TOLERANCE,
                detail="sampled (busy + pending) vs λ·W from task timestamps",
            )
        )
        # Sanity: the system actually queued — the law must be tested on a
        # loaded system, not a trivially idle one.
        result.checks.append(
            Check.at_least(
                "littles_law.load",
                busy_mean / total_slots,
                0.02,
                detail="mean utilization above the triviality floor",
            )
        )
