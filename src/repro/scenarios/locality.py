"""Baseline locality vs the hypergeometric closed form (Fig. 7's physics).

:mod:`repro.analysis.expectations` derives the data-unaware baseline's
input-task locality exactly: replicas cover nodes hypergeometrically, a
random executor grant covers an expected node set, and a task can run
locally iff the two intersect.  That closed form is an *upper bound* on
the measured baseline (slot contention and delay-wait expiry only lose
locality), and under light load the measurement must converge to it from
below.

This scenario runs the standalone (random-allocation) manager at light
load across several seeds and pins both properties: the seed-averaged
measured locality sits below the bound (validity) and within a band of
it (convergence).  If either fails, the simulated storage/allocation
geometry no longer matches the paper's model — exactly the kind of drift
a locality-uplift headline would silently inherit.
"""

from __future__ import annotations

from repro.analysis.expectations import expected_random_allocation_locality
from repro.experiments.config import ExperimentConfig
from repro.scenarios.base import (
    Check,
    ScenarioProfile,
    ScenarioResult,
    ValidationScenario,
    register,
)

__all__ = ["LocalityConvergenceScenario"]


@register
class LocalityConvergenceScenario(ValidationScenario):
    """Measured baseline locality converges to the hypergeometric bound."""

    name = "locality"
    title = "Random-allocation locality vs hypergeometric closed form"

    NUM_NODES = 16
    REPLICATION = 3
    #: absolute slack above the bound (finite-sample noise on a mean of
    #: per-job fractions) and band below it (residual contention at the
    #: light-load operating point)
    UPPER_SLACK = 0.06
    LOWER_BAND = 0.20

    def build(self, profile: ScenarioProfile, result: ScenarioResult) -> None:
        from repro.experiments.runner import run_experiment

        seeds = range(profile.seed, profile.seed + profile.scaled(5, 3))
        measured = []
        quota = None
        for seed in seeds:
            config = ExperimentConfig(
                manager="standalone",
                workload="wordcount",
                num_nodes=self.NUM_NODES,
                num_apps=2,
                jobs_per_app=profile.scaled(4, 3),
                seed=seed,
                replication=self.REPLICATION,
                # Light load, generous locality wait: the regime where the
                # bound is tight (§ analysis/expectations docstring).
                mean_interarrival=60.0,
                delay_wait=10.0,
                network_engine=profile.network_engine,
                alloc_engine=profile.alloc_engine,
            )
            run = run_experiment(config)
            measured.append(run.metrics.locality_mean)
            if quota is None:
                total = config.num_nodes * config.executors_per_node
                quota = total // config.num_apps
        mean_measured = sum(measured) / len(measured)
        assert quota is not None
        expected = expected_random_allocation_locality(
            self.NUM_NODES,
            2,  # executors_per_node (config default)
            quota,
            self.REPLICATION,
        )
        result.params = {
            "nodes": self.NUM_NODES,
            "replication": self.REPLICATION,
            "quota": quota,
            "seeds": len(measured),
            "per_seed": measured,
        }
        result.checks.append(
            Check.at_most(
                "locality.upper_bound",
                mean_measured,
                expected,
                self.UPPER_SLACK,
                detail="closed form upper-bounds the measured baseline",
            )
        )
        result.checks.append(
            Check.at_least(
                "locality.convergence",
                mean_measured,
                expected,
                self.LOWER_BAND,
                detail="light-load measurement converges toward the bound",
            )
        )
