"""Queueing-theory scenarios: Markovian queues on the raw event engine.

These scenarios bypass the cluster stack entirely and build M/M/1, M/M/c
and nonpreemptive-priority queues directly on
:class:`~repro.simulation.engine.Simulation` — the same loop that orders
every transfer completion and allocation round.  If the engine fires
events late, drops wake-ups, or breaks same-instant FIFO order, the
measured waits drift off the closed forms in
:mod:`repro.analysis.queueing` and these checks fail.

Two estimator families deliberately use *different* bookkeeping paths:

* per-customer records (arrival/start/departure timestamps) give Ŵ;
* a state integral, maintained incrementally at every queue transition,
  gives L̂.

Little's law ties them together (L = λW).  The two paths share no code,
so agreement is evidence about the engine, not about one counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.queueing import (
    mm1_mean_wait,
    mmc_mean_wait,
    priority_mm1_waits,
)
from repro.common.errors import ConfigurationError
from repro.common.rng import RngStreams
from repro.scenarios.base import (
    Check,
    ScenarioProfile,
    ScenarioResult,
    ValidationScenario,
    register,
)
from repro.simulation.engine import Simulation

__all__ = [
    "QueueMeasurement",
    "simulate_mmc_queue",
    "simulate_priority_queue",
    "MM1Scenario",
    "MMCScenario",
    "PriorityScenario",
]


@dataclass
class QueueMeasurement:
    """Post-warmup measurements of one simulated queue."""

    lam: float
    mu: float
    servers: int
    customers: int  #: measured customers (after warmup)
    mean_wait: float  #: Ŵq — mean time in queue
    mean_sojourn: float  #: Ŵ — queue + service
    mean_number_in_system: float  #: L̂ — from the state-integral path
    arrival_rate: float  #: λ̂ — measured arrivals / measurement window
    window: float  #: measurement window length (sim seconds)

    @property
    def littles_error(self) -> float:
        """Relative gap |L̂ − λ̂·Ŵ| / (λ̂·Ŵ) — Little's-law consistency."""
        rhs = self.arrival_rate * self.mean_sojourn
        return abs(self.mean_number_in_system - rhs) / rhs if rhs else 0.0


class _QueueSim:
    """Event-driven c-server FIFO queue with optional priority classes."""

    def __init__(
        self,
        sim: Simulation,
        servers: int,
        num_classes: int,
        warmup: int,
    ):
        self.sim = sim
        self.servers = servers
        self.busy = 0
        #: per-class FIFO of (arrival_time, service_time, cls)
        self.queues: List[List] = [[] for _ in range(num_classes)]
        self.warmup = warmup
        self.arrived = 0
        self.departed = 0
        # Measurement state (activated once the warmup customer arrives).
        self.measuring = False
        self.t0 = 0.0
        self.t_last = 0.0
        self.in_system = 0
        self.area = 0.0  #: ∫ (number in system) dt over the window
        self.measured_arrivals = 0
        self.waits: List[List[float]] = [[] for _ in range(num_classes)]
        self.sojourns: List[float] = []

    # ------------------------------------------------------------ accounting
    def _advance_area(self) -> None:
        now = self.sim.now
        if self.measuring:
            self.area += self.in_system * (now - self.t_last)
        self.t_last = now

    def arrive(self, service_time: float, cls: int) -> None:
        self._advance_area()
        if self.arrived == self.warmup:
            # Reset the integral path at the warmup boundary; customers
            # already in the system keep contributing to L (steady state).
            self.measuring = True
            self.t0 = self.sim.now
            self.area = 0.0
        self.arrived += 1
        if self.measuring:
            self.measured_arrivals += 1
        self.in_system += 1
        now = self.sim.now
        if self.busy < self.servers:
            self.busy += 1
            self._start_service(now, service_time, cls)
        else:
            self.queues[cls].append((now, service_time, cls))

    def _start_service(self, arrived_at: float, service_time: float, cls: int) -> None:
        now = self.sim.now
        if self.measuring and arrived_at >= self.t0:
            self.waits[cls].append(now - arrived_at)
        self.sim.schedule(service_time, self.depart, arrived_at)

    def depart(self, arrived_at: float) -> None:
        self._advance_area()
        self.in_system -= 1
        self.departed += 1
        now = self.sim.now
        if self.measuring and arrived_at >= self.t0:
            self.sojourns.append(now - arrived_at)
        for queue in self.queues:  # highest-priority class first
            if queue:
                self._start_service(*queue.pop(0))
                return
        self.busy -= 1


def _run_queue(
    lam_per_class: Sequence[float],
    mu: float,
    servers: int,
    customers: int,
    rng: np.random.Generator,
    warmup_fraction: float = 0.15,
) -> _QueueSim:
    """Drive a queue to completion; returns the measurement bookkeeping.

    The merged arrival process draws each class's stream independently
    (exponential gaps), pre-materialised so the whole run is a pure
    function of ``rng``.
    """
    if customers < 10:
        raise ConfigurationError(f"need >= 10 customers, got {customers}")
    total = customers
    warmup = int(total * warmup_fraction)
    sim = Simulation()
    queue = _QueueSim(sim, servers, len(lam_per_class), warmup)
    arrivals = []
    for cls, lam in enumerate(lam_per_class):
        share = lam / sum(lam_per_class)
        n = max(1, int(round(total * share)))
        times = np.cumsum(rng.exponential(1.0 / lam, size=n))
        services = rng.exponential(1.0 / mu, size=n)
        arrivals.extend((float(t), float(s), cls) for t, s in zip(times, services))
    arrivals.sort()
    for t, s, cls in arrivals:
        sim.schedule_at(t, queue.arrive, s, cls)
    sim.run()
    if queue.departed != queue.arrived:
        raise ConfigurationError(
            f"queue did not drain: {queue.departed}/{queue.arrived} departed"
        )
    return queue


def simulate_mmc_queue(
    lam: float,
    mu: float,
    servers: int,
    customers: int,
    rng: np.random.Generator,
) -> QueueMeasurement:
    """Simulate a single-class M/M/c queue and measure its steady state."""
    q = _run_queue([lam], mu, servers, customers, rng)
    window = q.t_last - q.t0
    return QueueMeasurement(
        lam=lam,
        mu=mu,
        servers=servers,
        customers=len(q.sojourns),
        mean_wait=float(np.mean(q.waits[0])) if q.waits[0] else 0.0,
        mean_sojourn=float(np.mean(q.sojourns)) if q.sojourns else 0.0,
        mean_number_in_system=q.area / window if window > 0 else 0.0,
        arrival_rate=q.measured_arrivals / window if window > 0 else 0.0,
        window=window,
    )


def simulate_priority_queue(
    lams: Sequence[float],
    mu: float,
    customers: int,
    rng: np.random.Generator,
) -> List[float]:
    """Nonpreemptive priority M/M/1: per-class mean waits (class 0 first)."""
    q = _run_queue(list(lams), mu, 1, customers, rng)
    return [float(np.mean(w)) if w else 0.0 for w in q.waits]


# ---------------------------------------------------------------- scenarios
@register
class MM1Scenario(ValidationScenario):
    """M/M/1 wait-time nonlinearity against ρ/(μ(1−ρ)), plus Little's law.

    Probes the hockey-stick at three utilization points; the band widens
    with ρ because the wait's variance (and its autocorrelation) grows as
    the queue approaches saturation.
    """

    name = "mm1"
    title = "M/M/1 wait-time curve vs closed form"

    #: (rho, relative tolerance) — bands sized for the sample counts below.
    POINTS = ((0.3, 0.10), (0.6, 0.10), (0.85, 0.15))

    def build(self, profile: ScenarioProfile, result: ScenarioResult) -> None:
        streams = RngStreams(seed=profile.seed)
        mu = 1.0
        customers = profile.scaled(60_000, 20_000)
        result.params = {"mu": mu, "customers": customers,
                         "points": [p[0] for p in self.POINTS]}
        measured_waits = []
        for rho, tol in self.POINTS:
            lam = rho * mu
            m = simulate_mmc_queue(
                lam, mu, 1, customers, streams.get(f"scenarios.mm1.rho{rho}")
            )
            expected = mm1_mean_wait(lam, mu)
            measured_waits.append(m.mean_wait)
            result.checks.append(
                Check.within(
                    f"mm1.wait.rho={rho}", m.mean_wait, expected, tol,
                    detail=f"{m.customers} customers",
                )
            )
            result.checks.append(
                Check.at_most(
                    f"mm1.littles_law.rho={rho}", m.littles_error, 0.05,
                    detail="|L − λW| / λW from independent estimator paths",
                )
            )
        # The curve must be convex-increasing: the jump from mid to high
        # load dwarfs the jump from low to mid (closed form: 0.43→1.5→5.67).
        lo, mid, hi = measured_waits
        result.checks.append(
            Check.at_least(
                "mm1.nonlinearity", hi / lo if lo else 0.0,
                mm1_mean_wait(0.85, mu) / mm1_mean_wait(0.3, mu) * 0.6,
                detail="W(0.85)/W(0.3) within 40% of the closed-form ratio",
            )
        )
        result.checks.append(
            Check.that(
                "mm1.monotone", lo < mid < hi,
                detail="mean wait strictly increasing in offered load",
            )
        )


@register
class MMCScenario(ValidationScenario):
    """M/M/c wait against Erlang-C — multi-server FIFO hand-off."""

    name = "mmc"
    title = "M/M/c wait vs Erlang-C"

    POINTS = ((0.5, 0.15), (0.8, 0.15))
    SERVERS = 4

    def build(self, profile: ScenarioProfile, result: ScenarioResult) -> None:
        streams = RngStreams(seed=profile.seed)
        mu = 1.0
        customers = profile.scaled(60_000, 20_000)
        result.params = {"mu": mu, "servers": self.SERVERS,
                         "customers": customers}
        for rho, tol in self.POINTS:
            lam = rho * self.SERVERS * mu
            m = simulate_mmc_queue(
                lam, mu, self.SERVERS, customers,
                streams.get(f"scenarios.mmc.rho{rho}"),
            )
            expected = mmc_mean_wait(lam, mu, self.SERVERS)
            result.checks.append(
                Check.within(
                    f"mmc.wait.rho={rho}", m.mean_wait, expected, tol,
                    detail=f"c={self.SERVERS}, {m.customers} customers",
                )
            )
            result.checks.append(
                Check.at_most(
                    f"mmc.littles_law.rho={rho}", m.littles_error, 0.05,
                )
            )


@register
class PriorityScenario(ValidationScenario):
    """Nonpreemptive two-class priority: Cobham waits and starvation.

    The high class's wait must stay near the empty-system residual while
    the low class's wait balloons — the starvation mechanism that delay
    scheduling's bounded wait (and Custody's max-min fill) exists to avoid.
    """

    name = "priority"
    title = "Nonpreemptive priority M/M/1 vs Cobham closed form"

    def build(self, profile: ScenarioProfile, result: ScenarioResult) -> None:
        streams = RngStreams(seed=profile.seed)
        mu = 1.0
        lams = (0.4, 0.4)  # total ρ = 0.8
        customers = profile.scaled(80_000, 24_000)
        result.params = {"mu": mu, "lams": list(lams), "customers": customers}
        measured = simulate_priority_queue(
            lams, mu, customers, streams.get("scenarios.priority")
        )
        expected = priority_mm1_waits(lams, mu)
        for cls, (got, want) in enumerate(zip(measured, expected)):
            result.checks.append(
                Check.within(
                    f"priority.wait.class{cls}", got, want, 0.15,
                    detail="Cobham nonpreemptive-priority closed form",
                )
            )
        result.checks.append(
            Check.at_least(
                "priority.starvation_ratio",
                measured[1] / measured[0] if measured[0] else 0.0,
                (expected[1] / expected[0]) * 0.6,
                detail="low class waits ~5x the high class at ρ=0.8",
            )
        )
