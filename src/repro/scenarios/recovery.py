"""Crash-recovery validation: manager failover against closed-form bounds.

A manager crash with the checkpoint/lease/WAL stack enabled admits exact
expectations, not just "it eventually works":

* **Lease conservation** — with a lease generous enough to outlive the
  outage, reconciliation must re-adopt *every* lease open at the crash:
  ``readopted == leases_at_crash`` and nothing expires, nothing is a
  zombie, nothing survives reconciliation unleased.
* **Work preservation** — re-adopted executors keep their running
  attempts, so the recovery requeues zero tasks and no task ever
  completes twice (pinned record-by-record from the timeline).
* **Recovery-duration identity** — the coordinator resumes allocation
  exactly ``outage + reconciliation_window`` after the crash; the
  measured duration is deterministic, not merely bounded.
* **Bounded JCT inflation** — a stalled control plane can delay any job
  by at most the time it was stalled, so mean JCT and makespan inflate by
  at most ``outage + reconciliation_window`` over the fault-free run (the
  crash arm replays the baseline's trace: common-trace methodology).

The scenario is engine-sensitive: the validate CLI repeats it under both
network engines and both allocation engines, so the recovery machinery
obeys the same bounds on the optimized and the reference stacks.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.config import ExperimentConfig
from repro.faults.plan import FaultPlan, ManagerCrash
from repro.scenarios.base import (
    Check,
    ScenarioProfile,
    ScenarioResult,
    ValidationScenario,
    register,
)

__all__ = ["RecoveryScenario"]


@register
class RecoveryScenario(ValidationScenario):
    """Manager crash: lease conservation, work preservation, bounded inflation."""

    name = "recovery"
    title = "Crash-recovery: lease conservation and bounded JCT inflation"
    engine_sensitive = True

    NODES = 10
    CRASH_AT = 20.0
    OUTAGE = 25.0
    RECONCILIATION_WINDOW = 2.0
    #: long enough that no lease can expire across the outage — the
    #: precondition for the exact conservation check
    LEASE_DURATION = 600.0

    def _config(self, profile: ScenarioProfile) -> ExperimentConfig:
        return ExperimentConfig(
            manager="custody",
            workload="wordcount",
            num_nodes=self.NODES,
            num_apps=2,
            jobs_per_app=profile.scaled(4, 3),
            seed=profile.seed,
            network_engine=profile.network_engine,
            alloc_engine=profile.alloc_engine,
            timeline_enabled=True,
            manager_recovery=True,
            lease_duration=self.LEASE_DURATION,
            lease_renew_interval=5.0,
            checkpoint_interval=15.0,
            reconciliation_window=self.RECONCILIATION_WINDOW,
        )

    def _crash_plan(self) -> FaultPlan:
        plan = FaultPlan()
        plan.add(ManagerCrash(at=self.CRASH_AT, duration=self.OUTAGE))
        return plan

    @staticmethod
    def _finish_counts(result) -> dict:
        counts: dict = {}
        for record in result.timeline:
            if record.kind == "task.finish":
                counts[record.subject] = counts.get(record.subject, 0) + 1
        return counts

    def build(self, profile: ScenarioProfile, result: ScenarioResult) -> None:
        from repro.experiments.runner import run_experiment

        config = self._config(profile)
        stall = self.OUTAGE + self.RECONCILIATION_WINDOW
        result.params = {
            "nodes": self.NODES,
            "jobs_per_app": config.jobs_per_app,
            "crash_at": self.CRASH_AT,
            "outage": self.OUTAGE,
            "reconciliation_window": self.RECONCILIATION_WINDOW,
            "stall": stall,
        }

        baseline = run_experiment(config)
        crashed = run_experiment(config, fault_plan=self._crash_plan())

        result.checks.append(
            Check.that(
                "recovery.finished",
                baseline.metrics.unfinished_jobs == 0
                and crashed.metrics.unfinished_jobs == 0,
                detail="both arms drain every job",
            )
        )

        rec = crashed.recovery
        assert rec is not None
        result.checks.append(
            Check.that(
                "recovery.completed",
                rec.manager_crashes == 1 and rec.recoveries == 1,
                detail="the injected crash recovered exactly once",
            )
        )
        result.params["leases_at_crash"] = rec.leases_at_crash
        result.checks.append(
            Check.that(
                "recovery.lease_conservation",
                rec.leases_at_crash > 0
                and rec.leases_readopted == rec.leases_at_crash
                and rec.leases_expired == 0
                and rec.zombies_reclaimed == 0
                and rec.zombies_surviving == 0,
                detail=(
                    f"all {rec.leases_at_crash} leases open at the crash "
                    "re-adopted; none expired, no zombies"
                ),
            )
        )
        result.checks.append(
            Check.that(
                "recovery.work_preserving",
                rec.tasks_requeued == 0,
                detail="re-adoption kept every running attempt alive",
            )
        )

        base_counts = self._finish_counts(baseline)
        crash_counts = self._finish_counts(crashed)
        result.checks.append(
            Check.that(
                "recovery.no_duplicate_completions",
                crash_counts and max(crash_counts.values()) == 1,
                detail="no task recorded more than one completion",
            )
        )
        result.checks.append(
            Check.that(
                "recovery.same_tasks_completed",
                set(crash_counts) == set(base_counts),
                detail="the crash arm completed exactly the baseline's tasks",
            )
        )

        durations = rec.recovery_durations
        result.checks.append(
            Check.within(
                "recovery.duration_identity",
                durations[0] if durations else float("inf"),
                stall,
                0.01,
                detail="crash-to-resumed == outage + reconciliation window",
            )
        )

        assert baseline.metrics.avg_jct and crashed.metrics.avg_jct
        jct_delta = crashed.metrics.avg_jct - baseline.metrics.avg_jct
        result.params["jct_delta"] = jct_delta
        result.checks.append(
            Check.at_least(
                "recovery.jct_floor",
                jct_delta,
                0.0,
                slack=0.5,
                detail=(
                    "a stall cannot meaningfully speed jobs up (revocations "
                    "pause too, so apps keep idle executors across the "
                    "outage — hence the small negative slack)"
                ),
            )
        )
        result.checks.append(
            Check.at_most(
                "recovery.jct_inflation_bounded",
                jct_delta,
                stall,
                slack=1e-6,
                detail="mean JCT inflates by at most the stalled interval",
            )
        )
        assert baseline.metrics.makespan and crashed.metrics.makespan
        result.checks.append(
            Check.at_most(
                "recovery.makespan_inflation_bounded",
                crashed.metrics.makespan - baseline.metrics.makespan,
                stall,
                slack=1e-6,
                detail="makespan inflates by at most the stalled interval",
            )
        )

        # The no-crash control: the full recovery stack enabled but no
        # fault plan must replay the seed trajectory record-for-record.
        plain = run_experiment(replace(config, manager_recovery=False))
        plain_records = [r.as_dict() for r in plain.timeline]
        base_records = [r.as_dict() for r in baseline.timeline]
        result.checks.append(
            Check.that(
                "recovery.lockstep_without_crash",
                plain_records == base_records,
                detail="recovery stack is trajectory-invisible until a crash",
            )
        )
