"""Scenario diversity: trace replay, diurnal load, and elastic churn.

The queueing and locality scenarios pin the simulator to closed forms;
these three pin it to *workload shapes* the synthetic common schedule
never exercises — a real cluster trace replayed through the stack, a
nonhomogeneous (diurnal) arrival process, and spot-style node churn.
Each runs end-to-end through :func:`repro.experiments.runner.run_experiment`
with a fixed seed and asserts structural invariants: every submitted job
finishes, a repeated run reproduces the same metrics bit-for-bit, and
the workload generator actually produced the shape it advertises
(losslessly round-tripping CSV, a daytime arrival peak, faults injected
without losing data).
"""

from __future__ import annotations

from repro.common.rng import RngStreams
from repro.experiments.config import ExperimentConfig
from repro.scenarios.base import (
    Check,
    ScenarioProfile,
    ScenarioResult,
    ValidationScenario,
    register,
)
from repro.workload.arrivals import diurnal_schedule
from repro.workload.replay import TraceColumns, read_cluster_trace

__all__ = [
    "TraceReplayScenario",
    "DiurnalScenario",
    "ElasticChurnScenario",
    "SAMPLE_TRACE_CSV",
]

#: A miniature Google-style job-events extract: (time, user) rows, out of
#: order and in "microseconds" so the adapter's sorting/scaling paths are
#: exercised.  Kept inline so the scenario is self-contained.
SAMPLE_TRACE_CSV = """\
time,user
12000000,alice
0,bob
30000000,carol
21000000,alice
45000000,dave
38000000,bob
52000000,alice
60000000,erin
74000000,carol
68000000,dave
83000000,bob
90000000,frank
"""


def _metrics_signature(result) -> dict:
    """The bitwise-comparable projection of a run's metrics."""
    return result.metrics.as_dict()


@register
class TraceReplayScenario(ValidationScenario):
    """Replay a cluster-trace extract end-to-end, deterministically."""

    name = "trace_replay"
    title = "Cluster-trace replay through the full stack"
    engine_sensitive = True

    def build(self, profile: ScenarioProfile, result: ScenarioResult) -> None:
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            manager="custody",
            workload="wordcount",
            num_nodes=8,
            num_apps=2,
            jobs_per_app=6,  # upper bound; the trace decides the real count
            seed=profile.seed,
            network_engine=profile.network_engine,
            alloc_engine=profile.alloc_engine,
        )
        trace = read_cluster_trace(
            SAMPLE_TRACE_CSV.splitlines(),
            config.app_ids,
            columns=TraceColumns(time="time", entity="user"),
            time_scale=1e-6 * 100.0,  # μs → s, then compress 100×
        )
        result.params = {
            "jobs": len(trace),
            "horizon": trace.horizon,
            "apps": sorted({e.app_id for e in trace}),
        }
        result.checks.append(
            Check.that(
                "replay.adapter",
                len(trace) == 12 and trace.events[0].time == 0.0,
                detail="all rows adapted, timeline shifted to zero",
            )
        )
        result.checks.append(
            Check.that(
                "replay.csv_roundtrip",
                type(trace).from_csv(trace.to_csv()).to_records()
                == trace.to_records(),
                detail="SubmissionTrace → CSV → SubmissionTrace is lossless",
            )
        )

        run = run_experiment(config, trace=trace)
        rerun = run_experiment(config, trace=trace)
        result.checks.append(
            Check.that(
                "replay.all_jobs_finish",
                run.metrics.finished_jobs == len(trace)
                and run.metrics.unfinished_jobs == 0,
                detail=f"{run.metrics.finished_jobs}/{len(trace)} jobs finished",
            )
        )
        result.checks.append(
            Check.that(
                "replay.deterministic",
                _metrics_signature(run) == _metrics_signature(rerun),
                detail="same (seed, trace) → identical metrics",
            )
        )


@register
class DiurnalScenario(ValidationScenario):
    """Thinned nonhomogeneous arrivals: the generator peaks when told to."""

    name = "diurnal"
    title = "Diurnal load curve via Lewis–Shedler thinning"
    engine_sensitive = False

    #: short "day" so even the smoke trace spans multiple cycles — the
    #: peak/trough check must discriminate, not hold vacuously
    PERIOD = 24.0

    def build(self, profile: ScenarioProfile, result: ScenarioResult) -> None:
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            manager="custody",
            workload="wordcount",
            num_nodes=8,
            num_apps=2,
            jobs_per_app=profile.scaled(10, 6),
            seed=profile.seed,
            network_engine=profile.network_engine,
            alloc_engine=profile.alloc_engine,
        )
        rng = RngStreams(seed=profile.seed).get("scenarios.diurnal")
        # Zero phase: sin is positive on each period's first half, so the
        # rate sits above base exactly in the "daytime" window.
        trace = diurnal_schedule(
            config.app_ids,
            config.jobs_per_app,
            rng,
            mean_interarrival=10.0,
            amplitude=0.9,
            period=self.PERIOD,
            phase=0.0,
        )
        half = self.PERIOD / 2.0
        peak = sum(1 for e in trace if (e.time % self.PERIOD) < half)
        trough = len(trace) - peak
        result.params = {
            "jobs": len(trace),
            "horizon": trace.horizon,
            "peak_half_arrivals": peak,
            "trough_half_arrivals": trough,
        }
        result.checks.append(
            Check.that(
                "diurnal.peaked",
                peak > trough,
                detail=(
                    f"{peak} arrivals in peak half-periods vs {trough} in "
                    "trough halves"
                ),
            )
        )
        run = run_experiment(config, trace=trace)
        result.checks.append(
            Check.that(
                "diurnal.all_jobs_finish",
                run.metrics.finished_jobs == len(trace)
                and run.metrics.unfinished_jobs == 0,
                detail=f"{run.metrics.finished_jobs}/{len(trace)} jobs finished",
            )
        )


@register
class ElasticChurnScenario(ValidationScenario):
    """Spot-style node churn composed with the fault machinery."""

    name = "elastic_churn"
    title = "Elastic node churn without data loss"
    engine_sensitive = True

    def build(self, profile: ScenarioProfile, result: ScenarioResult) -> None:
        from repro.experiments.runner import run_experiment
        from repro.faults.elastic import build_churn_plan

        config = ExperimentConfig(
            manager="custody",
            workload="wordcount",
            num_nodes=10,
            num_apps=2,
            jobs_per_app=profile.scaled(6, 4),
            seed=profile.seed,
            replication=3,
            network_engine=profile.network_engine,
            alloc_engine=profile.alloc_engine,
        )
        rng = RngStreams(seed=profile.seed).get("scenarios.elastic_churn")
        plan = build_churn_plan(
            config.num_nodes,
            rng,
            events=profile.scaled(6, 4),
            horizon=250.0,
            min_alive_fraction=0.6,
        )
        result.params = {"churn_events": len(plan)}
        run = run_experiment(config, fault_plan=plan)
        rerun = run_experiment(
            config,
            fault_plan=build_churn_plan(
                config.num_nodes,
                RngStreams(seed=profile.seed).get("scenarios.elastic_churn"),
                events=profile.scaled(6, 4),
                horizon=250.0,
                min_alive_fraction=0.6,
            ),
        )
        assert run.faults is not None
        result.params["injected"] = run.faults.injected
        result.params["replicas_lost"] = run.faults.replicas_lost
        result.params["replicas_restored"] = run.faults.replicas_restored
        result.checks.append(
            Check.that(
                "churn.injected",
                run.faults.injected >= 1,
                detail=f"{run.faults.injected} churn events fired",
            )
        )
        result.checks.append(
            Check.that(
                "churn.all_jobs_finish",
                run.metrics.unfinished_jobs == 0,
                detail=(
                    f"{run.metrics.finished_jobs} jobs finished, "
                    f"{run.metrics.unfinished_jobs} wedged"
                ),
            )
        )
        result.checks.append(
            Check.that(
                "churn.no_data_loss",
                run.faults.data_loss_tasks == 0 and run.faults.blocks_lost == 0,
                detail=(
                    "3-way replication + capacity floor keeps every block "
                    "readable through churn"
                ),
            )
        )
        result.checks.append(
            Check.that(
                "churn.deterministic",
                _metrics_signature(run) == _metrics_signature(rerun),
                detail="same (seed, plan) → identical metrics",
            )
        )
