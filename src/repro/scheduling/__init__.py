"""In-application task scheduling.

Custody deliberately leaves the task scheduler untouched: every application
runs standard **delay scheduling** [22] on whatever executors the cluster
manager gave it (§V: "all the applications use the standard delay scheduling
of Spark to accept resource offers and schedule tasks").  The manager's job
is to raise the *upper bound* locality the task scheduler can reach.

* :class:`DelayScheduler` — wait up to a locality-wait budget for a local
  slot before accepting a non-local one.
* :class:`LocalityFirstScheduler` / :class:`FifoScheduler` — the two
  degenerate policies (infinite wait / zero wait) used in ablations.
* :class:`ApplicationDriver` — the Spark-driver analogue: receives jobs,
  walks their stage DAGs, launches tasks into owned executors via the task
  scheduler, and reports executor idleness to the cluster manager.
"""

from repro.scheduling.policies import (
    DelayScheduler,
    FifoScheduler,
    HintedDelayScheduler,
    LocalityFirstScheduler,
    TaskScheduler,
)
from repro.scheduling.driver import ApplicationDriver

__all__ = [
    "ApplicationDriver",
    "DelayScheduler",
    "FifoScheduler",
    "HintedDelayScheduler",
    "LocalityFirstScheduler",
    "TaskScheduler",
]
