"""ApplicationDriver: the Spark-driver analogue.

One driver per application.  It receives jobs from the submission trace,
walks each job's stage chain, and launches tasks into the executors the
cluster manager has granted it, consulting its :class:`TaskScheduler`
(delay scheduling by default) for every free slot.  It reports job
submission/completion and executor idleness to the manager — the hooks
Custody's reallocation listens on (§V).

Execution model per task *attempt*:

* **input task** — if the hosting node holds the block on disk or in cache,
  stream it locally; otherwise fetch it over the network from a replica
  holder (remote read = no locality) and cache it if caching is enabled.
* **shuffle task** — fetch the aggregated upstream output; the source node
  rotates deterministically over the nodes that ran the previous stage.
  (Approximation: one aggregate flow per reduce task instead of one flow
  per map-reduce pair — preserves volume and NIC contention, drops
  per-flow fan-in.)
* then burn the task's CPU time (scaled by any active node slowdown) and
  release the slot.

Tasks run as interruptible **attempts** so two mechanisms compose:

* **speculative execution** (straggler mitigation, [26][27] in the paper's
  §IV-B): once most of a stage has finished, a running task that exceeds
  ``speculation_multiplier`` × the stage's median completed duration gets a
  clone on a free slot; the first finisher wins and the loser is killed.
* **executor failure** (fault injection): all attempts on a failed executor
  are killed and their tasks requeued.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.executor import Executor
from repro.common.errors import AllocationError, TransferFailedError
from repro.hdfs.filesystem import HDFS
from repro.network.fabric import NetworkFabric
from repro.obs.events import BreakerTransition, HedgeLaunch, JobSpan, TaskAttempt
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.scheduling.policies import TaskScheduler
from repro.scheduling.robustness import CLOSED, CircuitBreakerBoard, RetryBudget
from repro.simulation.engine import EventHandle, Simulation
from repro.simulation.process import AllOf, Interrupt, Process, Timeout
from repro.simulation.timeline import Timeline
from repro.workload.application import Application
from repro.workload.job import Job
from repro.workload.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.managers.base import ClusterManager

__all__ = ["ApplicationDriver"]


class _Attempt:
    """One execution attempt of a task on an executor."""

    __slots__ = (
        "task", "executor", "process", "speculative", "hedge",
        "started_at", "transfers",
    )

    def __init__(
        self,
        task: Task,
        executor: Executor,
        speculative: bool,
        started_at: float,
        hedge: bool = False,
    ):
        self.task = task
        self.executor = executor
        self.process: Optional[Process] = None
        self.speculative = speculative
        #: a hedged backup (suspicion-triggered, distinct from speculation)
        self.hedge = hedge
        self.started_at = started_at
        #: in-flight transfers owned by this attempt (for kill-time cleanup)
        self.transfers: List = []


class ApplicationDriver:
    """Runs one application's jobs on its granted executors."""

    def __init__(
        self,
        sim: Simulation,
        app: Application,
        cluster: Cluster,
        hdfs: HDFS,
        fabric: NetworkFabric,
        scheduler: TaskScheduler,
        timeline: Optional[Timeline] = None,
        *,
        speculation: bool = False,
        speculation_quantile: float = 0.75,
        speculation_multiplier: float = 1.5,
        fault_injector: Optional["FaultInjector"] = None,
        shuffle_fanout: int = 1,
        max_task_attempts: int = 8,
        retry_backoff: float = 1.0,
        blacklist_threshold: int = 3,
        blacklist_window: float = 60.0,
        blacklist_timeout: float = 60.0,
        retry_jitter_rng=None,
        retry_budget: Optional[int] = None,
        retry_refill: float = 0.0,
        submission_retry_limit: int = 6,
        circuit_breaker: bool = False,
        hedging: bool = False,
        hedge_quantile: float = 0.95,
        hedge_multiplier: float = 1.5,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if not (0.0 < speculation_quantile <= 1.0):
            raise ValueError(
                f"speculation_quantile must be in (0, 1], got {speculation_quantile}"
            )
        if speculation_multiplier < 1.0:
            raise ValueError(
                f"speculation_multiplier must be >= 1, got {speculation_multiplier}"
            )
        if shuffle_fanout < 1:
            raise ValueError(f"shuffle_fanout must be >= 1, got {shuffle_fanout}")
        if max_task_attempts < 1:
            raise ValueError(f"max_task_attempts must be >= 1, got {max_task_attempts}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        if blacklist_threshold < 1:
            raise ValueError(
                f"blacklist_threshold must be >= 1, got {blacklist_threshold}"
            )
        if blacklist_window <= 0 or blacklist_timeout <= 0:
            raise ValueError("blacklist window/timeout must be positive")
        if retry_budget is not None and retry_budget < 1:
            raise ValueError(f"retry_budget must be >= 1, got {retry_budget}")
        if retry_refill < 0:
            raise ValueError(f"retry_refill must be >= 0, got {retry_refill}")
        if submission_retry_limit < 1:
            raise ValueError(
                f"submission_retry_limit must be >= 1, got {submission_retry_limit}"
            )
        if not (0.0 < hedge_quantile <= 1.0):
            raise ValueError(f"hedge_quantile must be in (0, 1], got {hedge_quantile}")
        if hedge_multiplier < 1.0:
            raise ValueError(f"hedge_multiplier must be >= 1, got {hedge_multiplier}")
        self.sim = sim
        self.app = app
        self.cluster = cluster
        self.hdfs = hdfs
        self.fabric = fabric
        self.scheduler = scheduler
        self.timeline = timeline
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.speculation = speculation
        self.speculation_quantile = speculation_quantile
        self.speculation_multiplier = speculation_multiplier
        self.fault_injector = fault_injector
        self.shuffle_fanout = shuffle_fanout
        self.max_task_attempts = max_task_attempts
        self.retry_backoff = retry_backoff
        self.blacklist_threshold = blacklist_threshold
        self.blacklist_window = blacklist_window
        self.blacklist_timeout = blacklist_timeout
        self.retry_jitter_rng = retry_jitter_rng
        self.retry_budget_tokens = retry_budget
        self.retry_refill = retry_refill
        self.submission_retry_limit = submission_retry_limit
        self.hedging = hedging
        self.hedge_quantile = hedge_quantile
        self.hedge_multiplier = hedge_multiplier
        #: per-node circuit breakers (None = legacy sliding-window blacklist)
        self.breakers: Optional[CircuitBreakerBoard] = None
        if circuit_breaker:
            self.breakers = CircuitBreakerBoard(
                threshold=blacklist_threshold,
                window=blacklist_window,
                cooldown=blacklist_timeout,
                on_transition=self._on_breaker_transition,
            )
        self.manager: Optional["ClusterManager"] = None
        #: Demand epoch: bumped whenever this driver's allocation-relevant
        #: state changes (runnable input tasks, owned executors, task
        #: starts/finishes).  The manager's incremental demand index caches
        #: a driver's AppDemand keyed on this number — any mutation here
        #: forces a rebuild, so over-bumping is safe and under-bumping is
        #: the only correctness hazard.
        self.demand_epoch = 0
        self.speculative_launches = 0
        self.speculative_wins = 0
        self.requeued_tasks = 0
        self.failed_attempts = 0
        self.abandoned_tasks = 0
        self.data_loss_tasks = 0
        self.blacklist_events = 0
        self.hedges_launched = 0
        self.hedges_won = 0
        self.hedges_lost = 0
        self.retries_denied = 0
        self.submissions_buffered = 0
        self.submission_retries = 0
        #: jobs accepted locally while the manager was down; the manager
        #: notification is delivered by retry or by the recovery flush
        self._pending_submissions: List[Job] = []
        self._executors: Dict[str, Executor] = {}
        self._runnable: List[Task] = []
        self._attempts: Dict[str, List[_Attempt]] = {}
        self._stage_remaining: Dict[Tuple[str, int], int] = {}
        self._stage_durations: Dict[Tuple[str, int], List[float]] = {}
        self._stage_nodes: Dict[Tuple[str, int], List[str]] = {}
        self._shuffle_rotation: Dict[Tuple[str, int], int] = {}
        self._jobs: Dict[str, Job] = {}
        #: job id → retry token bucket (created lazily when budgets are on)
        self._job_budgets: Dict[str, RetryBudget] = {}
        self._wakeup: Optional[EventHandle] = None
        self._spec_wakeup: Optional[EventHandle] = None
        self._hedge_wakeup: Optional[EventHandle] = None
        # Pre-bound metric instruments (no-ops when metering is off).  All
        # of these only *read* driver state — enabling metrics cannot
        # change a trajectory.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        app_label = app.app_id
        self._m_job_arrivals = self.metrics.counter(
            "job_arrivals_total", "Jobs submitted to a driver.", ("app",)
        ).labels(app=app_label)
        self._m_job_completions = self.metrics.counter(
            "job_completions_total", "Jobs that reached completion.", ("app",)
        ).labels(app=app_label)
        self._m_jct = self.metrics.histogram(
            "job_completion_seconds",
            "Job completion time (submit to last stage done), sim seconds.",
            ("app",),
        ).labels(app=app_label)
        _launches = self.metrics.counter(
            "task_launches_total",
            "Task attempts started, by kind (primary / speculative / hedge).",
            ("app", "kind"),
        )
        self._m_launch_primary = _launches.labels(app=app_label, kind="primary")
        self._m_launch_speculative = _launches.labels(app=app_label, kind="speculative")
        self._m_launch_hedge = _launches.labels(app=app_label, kind="hedge")
        self._m_retries = self.metrics.counter(
            "task_retries_total", "Failed tasks requeued for another attempt.", ("app",)
        ).labels(app=app_label)
        self._m_retries_denied = self.metrics.counter(
            "task_retries_denied_total",
            "Retries refused by an exhausted per-job token budget.",
            ("app",),
        ).labels(app=app_label)
        self._m_failed_attempts = self.metrics.counter(
            "task_attempt_failures_total", "Attempts that died mid-flight.", ("app",)
        ).labels(app=app_label)
        self._m_abandoned = self.metrics.counter(
            "task_abandoned_total",
            "Tasks permanently given up, by reason.",
            ("app", "reason"),
        )
        self._m_breaker = self.metrics.counter(
            "breaker_transitions_total",
            "Circuit-breaker state transitions, by target state.",
            ("app", "state"),
        )
        _hedges = self.metrics.counter(
            "hedges_total",
            "Hedged backup attempts by outcome (launched / won / lost).",
            ("app", "outcome"),
        )
        self._m_hedges_launched = _hedges.labels(app=app_label, outcome="launched")
        self._m_hedges_won = _hedges.labels(app=app_label, outcome="won")
        self._m_hedges_lost = _hedges.labels(app=app_label, outcome="lost")
        self._m_speculative_wins = self.metrics.counter(
            "speculative_wins_total",
            "Speculative clones that beat their primary attempt.",
            ("app",),
        ).labels(app=app_label)
        self._m_queue_depth = self.metrics.gauge(
            "runnable_queue_depth", "Tasks waiting for a slot right now.", ("app",)
        ).labels(app=app_label)
        self._m_submissions_buffered = self.metrics.counter(
            "driver_submissions_buffered_total",
            "Job submissions accepted locally while the manager was down.",
            ("app",),
        ).labels(app=app_label)
        #: task id → failed attempt count (drives backoff and the budget)
        self._failure_counts: Dict[str, int] = {}
        #: node id → recent attempt-failure timestamps (blacklist window)
        self._node_failures: Dict[str, List[float]] = {}
        #: node id → blacklist expiry time
        self._blacklist: Dict[str, float] = {}

    # ------------------------------------------------------------- inspection
    @property
    def app_id(self) -> str:
        """Owning application's id."""
        return self.app.app_id

    @property
    def executors(self) -> List[Executor]:
        """Executors currently granted to this application (id order)."""
        return [self._executors[k] for k in sorted(self._executors)]

    @property
    def executor_count(self) -> int:
        """ζ_i — executors currently held."""
        return len(self._executors)

    @property
    def runnable_tasks(self) -> List[Task]:
        """Tasks ready to run, FIFO order."""
        return list(self._runnable)

    @property
    def running_count(self) -> int:
        """Tasks with at least one active attempt."""
        return len(self._attempts)

    @property
    def outstanding_tasks(self) -> int:
        """Runnable + running task count (the manager's capacity signal)."""
        return len(self._runnable) + len(self._attempts)

    def owned_nodes(self) -> List[str]:
        """Distinct node ids hosting this app's executors."""
        return sorted({e.node_id for e in self._executors.values()})

    # ------------------------------------------------------------ job intake
    def submit_job(self, job: Job) -> None:
        """Accept a new job: record it, enqueue its input stage, dispatch."""
        now = self.sim.now
        job.submitted_at = now
        self._jobs[job.job_id] = job
        self.app.add_job(job)
        self._m_job_arrivals.inc()
        self._enqueue_stage(job, 0)
        if self.timeline is not None:
            self.timeline.record(
                "job.submit", job.job_id, app=self.app_id, inputs=job.num_input_tasks
            )
        if self.manager is not None:
            recovery = self.manager.recovery
            if recovery is not None and not recovery.accepting_submissions:
                # The control plane is down: the job is accepted locally
                # (it can run on already-owned executors) and the manager
                # notification is retried with bounded backoff.
                self._buffer_submission(job)
            else:
                if recovery is not None:
                    recovery.note_job_submitted(self.app_id, job.job_id)
                self.manager.on_job_submitted(self, job)
        self._dispatch_or_defer()

    def _buffer_submission(self, job: Job) -> None:
        """Queue a manager notification the dead control plane missed."""
        self._pending_submissions.append(job)
        self.submissions_buffered += 1
        self._m_submissions_buffered.inc()
        if self.timeline is not None:
            self.timeline.record("job.submit.buffered", job.job_id, app=self.app_id)
        self.tracer.instant(
            "job.submit.buffered", "driver", track=self.app_id, job=job.job_id
        )
        self._schedule_submission_retry(job, 1)

    def _schedule_submission_retry(self, job: Job, attempt: int) -> None:
        """Full-jitter exponential backoff, same shape as task retries."""
        delay = min(self.retry_backoff * (2.0 ** (attempt - 1)), 60.0)
        if self.retry_jitter_rng is not None and delay > 0:
            delay = float(self.retry_jitter_rng.uniform(0.0, delay))
        self.sim.schedule(delay, self._retry_submission, job, attempt)

    def _retry_submission(self, job: Job, attempt: int) -> None:
        if job not in self._pending_submissions:
            return  # already delivered by the recovery flush
        manager = self.manager
        if manager is None:
            return
        recovery = manager.recovery
        if recovery is None or recovery.accepting_submissions:
            self._pending_submissions.remove(job)
            self.submission_retries += 1
            if recovery is not None:
                recovery.note_job_submitted(self.app_id, job.job_id)
            manager.on_job_submitted(self, job)
            return
        if attempt >= self.submission_retry_limit:
            # Bounded: give up retrying; the coordinator's post-recovery
            # flush delivers whatever is still pending.
            return
        self.submission_retries += 1
        self._schedule_submission_retry(job, attempt + 1)

    def flush_pending_submissions(self) -> None:
        """Recovery hook: deliver every buffered submission to the manager."""
        if self.manager is None or not self._pending_submissions:
            return
        pending, self._pending_submissions = self._pending_submissions, []
        recovery = self.manager.recovery
        for job in pending:
            if recovery is not None:
                recovery.note_job_submitted(self.app_id, job.job_id)
            self.manager.on_job_submitted(self, job)

    def _enqueue_stage(self, job: Job, stage_index: int) -> None:
        stage = job.stages[stage_index]
        now = self.sim.now
        self.demand_epoch += 1
        key = (job.job_id, stage_index)
        # KMN quorum: the input stage barrier fires after K of N tasks.
        if stage_index == 0:
            self._stage_remaining[key] = job.input_quorum
        else:
            self._stage_remaining[key] = len(stage.tasks)
        self._stage_durations[key] = []
        self._stage_nodes[key] = []
        for task in stage.tasks:
            task.submitted_at = now
            self._runnable.append(task)
        self._m_queue_depth.set(len(self._runnable))

    # -------------------------------------------------------- executor churn
    def attach_executor(self, executor: Executor) -> None:
        """Manager grant: the executor now belongs to this app."""
        if executor.owner != self.app_id:
            raise AllocationError(
                f"{executor.executor_id} owned by {executor.owner!r}, "
                f"cannot attach to {self.app_id!r}"
            )
        self._executors[executor.executor_id] = executor
        self.demand_epoch += 1
        self._dispatch()

    def detach_executor(self, executor: Executor) -> None:
        """Manager revocation; only idle executors may be detached."""
        if executor.running_tasks:
            raise AllocationError(
                f"{executor.executor_id} is busy; cannot detach from {self.app_id}"
            )
        self._executors.pop(executor.executor_id, None)
        self.demand_epoch += 1

    def consider_offer(self, executor: Executor) -> bool:
        """Mesos-style offer: would this app use a slot on that node now?"""
        if self._blacklisted(executor.node_id):
            return False
        return self.scheduler.accepts_offer(
            self._runnable, executor.node_id, self.sim.now, self.hdfs.namenode
        )

    def set_task_hints(self, mapping: Dict[str, str]) -> None:
        """Forward Custody's task→executor suggestions to a hint-aware
        scheduler (no-op for schedulers without ``set_hints``)."""
        setter = getattr(self.scheduler, "set_hints", None)
        if setter is not None:
            setter(mapping)

    def on_executor_failure(self, executor: Executor) -> int:
        """Fault hook: kill every attempt on ``executor``, requeue the tasks.

        Returns the number of tasks requeued synchronously (a task's first
        failure requeues at once; repeat failures back off exponentially and
        can exhaust the attempt budget — see :meth:`_handle_task_failure`).
        The executor itself is detached; ownership/release is the fault
        injector's business.
        """
        victims = [
            attempt
            for attempts in self._attempts.values()
            for attempt in attempts
            if attempt.executor is executor
        ]
        requeued = 0
        for attempt in victims:
            task = attempt.task
            self._kill_attempt(attempt)
            if not self._attempts.get(task.task_id):
                # No surviving attempt: hand the task to the retry machinery.
                self._attempts.pop(task.task_id, None)
                if task.cancelled or task.finished_at is not None:
                    continue
                if self._handle_task_failure(task, executor.node_id, "executor-lost"):
                    requeued += 1
        self._executors.pop(executor.executor_id, None)
        self.demand_epoch += 1
        self._dispatch()
        return requeued

    def reclaim_executor(self, executor: Executor) -> int:
        """Recovery hook: the restarted manager reclaimed ``executor``
        (expired lease or zombie).  Kills its attempts and requeues the
        tasks immediately — a control-plane action, so unlike
        :meth:`on_executor_failure` the node is not penalised (no
        blacklist/breaker signal, no failure count, no retry-budget spend).
        """
        victims = [
            attempt
            for attempts in self._attempts.values()
            for attempt in attempts
            if attempt.executor is executor
        ]
        requeued = 0
        for attempt in victims:
            task = attempt.task
            self._kill_attempt(attempt)
            if not self._attempts.get(task.task_id):
                self._attempts.pop(task.task_id, None)
                if task.cancelled or task.finished_at is not None:
                    continue
                task.started_at = None
                task.executor_id = None
                task.node_id = None
                task.was_local = None
                task.read_time = None
                self._requeue_task(task, executor.node_id, dispatch=False)
                requeued += 1
        self._executors.pop(executor.executor_id, None)
        self.demand_epoch += 1
        self._dispatch()
        return requeued

    # ------------------------------------------------------- retry / blacklist
    def _blacklisted(self, node_id: str) -> bool:
        """True while ``node_id`` is excluded from scheduling.

        With circuit breakers enabled the breaker's read-only predicate
        subsumes the timed blacklist (HALF_OPEN admits exactly one probe;
        recovery is verified by traffic, not assumed on expiry).
        """
        if self.breakers is not None:
            return not self.breakers.breaker(node_id).would_allow(self.sim.now)
        expiry = self._blacklist.get(node_id)
        if expiry is None:
            return False
        if self.sim.now >= expiry:
            del self._blacklist[node_id]
            return False
        return True

    def _on_breaker_transition(self, node_id: str, prev: str, state: str) -> None:
        """Board hook: record every breaker state change."""
        if state == "open":
            self.blacklist_events += 1
        self._m_breaker.labels(app=self.app_id, state=state).inc()
        if self.timeline is not None:
            self.timeline.record(
                "node.breaker", node_id, app=self.app_id, state=state, prev=prev
            )
        if self.tracer.enabled:
            self.tracer.emit(
                BreakerTransition(
                    self.sim.now,
                    track=node_id,
                    attrs={"node": node_id, "state": state, "prev": prev,
                           "app": self.app_id},
                )
            )

    def _note_node_failure(self, node_id: str) -> None:
        """Count an attempt failure against a node; blacklist on threshold."""
        now = self.sim.now
        if self.breakers is not None:
            self.breakers.breaker(node_id).on_failure(now)
            return
        recent = [
            t
            for t in self._node_failures.get(node_id, [])
            if now - t <= self.blacklist_window
        ]
        recent.append(now)
        self._node_failures[node_id] = recent
        if len(recent) >= self.blacklist_threshold and not self._blacklisted(node_id):
            self._blacklist[node_id] = now + self.blacklist_timeout
            self.blacklist_events += 1
            if self.timeline is not None:
                self.timeline.record(
                    "node.blacklist",
                    node_id,
                    app=self.app_id,
                    until=self._blacklist[node_id],
                    failures=len(recent),
                )
            self.tracer.instant(
                "node.blacklist",
                "driver",
                track=node_id,
                app=self.app_id,
                until=self._blacklist[node_id],
                failures=len(recent),
            )

    def _budget_for(self, job_id: str) -> RetryBudget:
        """The job's retry token bucket (budgets enabled)."""
        budget = self._job_budgets.get(job_id)
        if budget is None:
            assert self.retry_budget_tokens is not None
            budget = RetryBudget(self.retry_budget_tokens, self.retry_refill)
            self._job_budgets[job_id] = budget
        return budget

    def _handle_task_failure(self, task: Task, node_id: str, reason: str) -> bool:
        """Route a failed task through retry/backoff/abandon.

        Returns True when the task was requeued synchronously (its first
        failure — the behaviour schedulers and tests rely on); later
        failures requeue after exponential backoff.  A task whose input data
        no longer exists anywhere is abandoned as data loss; one that burns
        its whole attempt budget is abandoned as exhausted.
        """
        self._note_node_failure(node_id)
        count = self._failure_counts.get(task.task_id, 0) + 1
        self._failure_counts[task.task_id] = count
        if (
            task.is_input
            and task.block is not None
            and not self.hdfs.namenode.serving_locations(task.block.block_id)
        ):
            self.data_loss_tasks += 1
            self._abandon_task(task, "data-loss")
            return False
        if count >= self.max_task_attempts:
            self._abandon_task(task, "attempts-exhausted")
            return False
        if self.retry_budget_tokens is not None:
            # Every retry spends one job token; a drained bucket sheds the
            # task instead of feeding the failure loop more attempts.
            if not self._budget_for(task.job_id).try_spend(self.sim.now):
                self.retries_denied += 1
                self._m_retries_denied.inc()
                self.tracer.instant(
                    "task.retry_denied",
                    "driver",
                    track=self.app_id,
                    task=task.task_id,
                    job=task.job_id,
                )
                self._abandon_task(task, "retry-budget-exhausted")
                return False
        task.started_at = None
        task.executor_id = None
        task.node_id = None
        task.was_local = None
        task.read_time = None
        if count == 1:
            # Synchronous requeue without dispatching: the caller dispatches
            # once after the whole failure is processed (dispatching here
            # could launch tasks onto an executor that is mid-teardown).
            self._requeue_task(task, node_id, dispatch=False)
            return True
        delay = min(self.retry_backoff * (2.0 ** (count - 2)), 60.0)
        if self.retry_jitter_rng is not None and delay > 0:
            # Full jitter (uniform over [0, cap]): correlated failures then
            # de-synchronise instead of retrying in lockstep waves.
            delay = float(self.retry_jitter_rng.uniform(0.0, delay))
        self.tracer.instant(
            "task.retry",
            "driver",
            track=self.app_id,
            task=task.task_id,
            count=count,
            delay=delay,
            reason=reason,
        )
        if delay <= 0:
            self._requeue_task(task, node_id, dispatch=False)
            return True
        self.sim.schedule(delay, self._requeue_task, task, node_id)
        return False

    def _requeue_task(self, task: Task, node_id: str, dispatch: bool = True) -> None:
        """Put a failed task back on the runnable queue (possibly delayed)."""
        if task.cancelled or task.finished_at is not None:
            return  # cancelled (KMN surplus) or finished meanwhile
        if task in self._runnable or task.task_id in self._attempts:
            return
        self._runnable.append(task)
        self.demand_epoch += 1
        self.requeued_tasks += 1
        self._m_retries.inc()
        self._m_queue_depth.set(len(self._runnable))
        if self.timeline is not None:
            self.timeline.record(
                "task.requeue", task.task_id, app=self.app_id, node=node_id
            )
        if dispatch:
            self._dispatch()
            if (
                task in self._runnable
                and not self._attempts
                and self.manager is not None
                and not any(
                    e.free_slots > 0
                    and e.healthy
                    and not self._blacklisted(e.node_id)
                    for e in self._executors.values()
                )
            ):
                # The backoff window hid this task from outstanding_tasks, so
                # the manager may have reclaimed every executor meanwhile.
                # With nothing running (no future finish to trigger dispatch)
                # and no usable slot, only a fresh allocation round can
                # un-strand the task.
                self.manager.on_demand_changed(self)

    def _abandon_task(self, task: Task, reason: str) -> None:
        """Give up on a task permanently, keeping stage accounting live.

        The abandoned task counts toward its stage barrier so the job still
        completes (degraded) instead of hanging forever — the task itself is
        recorded as ``task.abandon`` and tallied in ``abandoned_tasks``.
        """
        task.cancelled = True
        self.demand_epoch += 1
        self.abandoned_tasks += 1
        self._m_abandoned.labels(app=self.app_id, reason=reason).inc()
        if self.timeline is not None:
            self.timeline.record(
                "task.abandon", task.task_id, app=self.app_id, reason=reason
            )
        self.tracer.instant(
            "task.abandon", "driver", track=self.app_id, task=task.task_id, reason=reason
        )
        key = (task.job_id, task.stage_index)
        remaining = self._stage_remaining.get(key, 0)
        if remaining <= 0:
            return  # stage barrier already fired (e.g. KMN quorum met)
        self._stage_remaining[key] = remaining - 1
        if self._stage_remaining[key] == 0:
            job = self._jobs[task.job_id]
            if task.stage_index == 0 and job.input_quorum < job.num_input_tasks:
                self._cancel_surplus_inputs(job)
            self._on_stage_done(job, task.stage_index)

    # --------------------------------------------------------------- dispatch
    def _dispatch_or_defer(self) -> None:
        """Dispatch now — unless an allocation round is coalesced at this
        instant, in which case dispatch *after* it in the same flush.

        With round coalescing the manager defers its round to the end of
        the instant; dispatching immediately would launch tasks onto the
        pre-round executor set, whereas a synchronous manager grants first
        and dispatches second.  Deferring the dispatch behind the pending
        round (``defer`` preserves registration order) restores that
        ordering for single-boundary instants.
        """
        manager = self.manager
        if manager is not None and manager.round_pending:
            self.sim.defer(("driver.dispatch", self.app_id), self._dispatch)
        else:
            self._dispatch()

    def _dispatch(self) -> None:
        """Greedily match runnable tasks to free slots, then arm the wakeup."""
        namenode = self.hdfs.namenode
        now = self.sim.now
        progressed = True
        while progressed and self._runnable:
            progressed = False
            for executor in self.executors:
                if (
                    executor.free_slots <= 0
                    or not executor.healthy
                    or self._blacklisted(executor.node_id)
                ):
                    continue
                task = self.scheduler.pick_task(
                    self._runnable,
                    executor.node_id,
                    now,
                    namenode,
                    executor_id=executor.executor_id,
                )
                if task is None:
                    continue
                self._runnable.remove(task)
                self._start_attempt(task, executor, speculative=False)
                progressed = True
                if not self._runnable:
                    break
        self._m_queue_depth.set(len(self._runnable))
        if self.speculation:
            self._launch_speculative_attempts()
        if self.hedging:
            self._launch_hedges()
        self._arm_wakeup()

    def _arm_wakeup(self) -> None:
        if self._wakeup is not None:
            self._wakeup.cancel()
            self._wakeup = None
        if not self._runnable:
            return
        free = [e for e in self._executors.values() if e.free_slots > 0]
        if not free:
            return
        usable = [e for e in free if not self._blacklisted(e.node_id)]
        if not usable:
            # Every free slot sits on an excluded node: wake up when the
            # earliest blacklist expiry / breaker probe admits one again.
            if self.breakers is not None:
                times = [
                    self.breakers.breaker(e.node_id).next_probe_time() for e in free
                ]
                expiry = min((t for t in times if t is not None), default=float("inf"))
            else:
                expiry = min(
                    self._blacklist.get(e.node_id, float("inf")) for e in free
                )
            if expiry > self.sim.now and expiry != float("inf"):
                self._wakeup = self.sim.schedule_at(expiry, self._dispatch)
            return
        when = self.scheduler.next_wakeup(self._runnable, self.sim.now)
        if when is not None and when > self.sim.now:
            self._wakeup = self.sim.schedule_at(when, self._dispatch)
            self.tracer.instant(
                "driver.delay_wait",
                "driver",
                track=self.app_id,
                until=when,
                queued=len(self._runnable),
            )

    # ------------------------------------------------------------ speculation
    def _launch_speculative_attempts(self) -> None:
        """Clone stragglers onto free slots (one clone per task at a time).

        Also arms a timer at the earliest moment a currently-running
        singleton attempt will cross its straggler threshold, so clones
        launch even when the cluster is otherwise quiet.
        """
        if self._spec_wakeup is not None:
            self._spec_wakeup.cancel()
            self._spec_wakeup = None
        free = [
            e
            for e in self.executors
            if e.free_slots > 0 and not self._blacklisted(e.node_id)
        ]
        if not free:
            return
        now = self.sim.now
        next_check: Optional[float] = None
        for task_id, attempts in list(self._attempts.items()):
            if not free:
                break
            if len(attempts) != 1:
                continue  # already cloned (or being finalised)
            attempt = attempts[0]
            threshold = self._speculation_threshold(attempt.task)
            if threshold is None:
                continue
            eligible_at = attempt.started_at + threshold
            if now < eligible_at:
                if next_check is None or eligible_at < next_check:
                    next_check = eligible_at
                continue
            # Prefer a local executor for the clone; else first free slot.
            executor = self._pick_clone_slot(attempt.task, free)
            if executor is None:
                continue
            self._start_attempt(attempt.task, executor, speculative=True)
            self.speculative_launches += 1
            self._m_launch_speculative.inc()
            if executor.free_slots <= 0:
                free.remove(executor)
        if next_check is not None and next_check > now:
            self._spec_wakeup = self.sim.schedule_at(next_check, self._dispatch)

    def _speculation_threshold(self, task: Task) -> Optional[float]:
        """Duration beyond which ``task`` counts as a straggler, or None."""
        key = (task.job_id, task.stage_index)
        durations = self._stage_durations.get(key)
        total = len(self._jobs[task.job_id].stages[task.stage_index].tasks)
        if not durations or len(durations) < self.speculation_quantile * total:
            return None
        ordered = sorted(durations)
        median = ordered[len(ordered) // 2]
        return self.speculation_multiplier * median

    def _pick_clone_slot(self, task: Task, free: List[Executor]) -> Optional[Executor]:
        running_on = {a.executor.executor_id for a in self._attempts[task.task_id]}
        candidates = [e for e in free if e.executor_id not in running_on]
        if not candidates:
            return None
        if task.is_input and task.block is not None:
            serving = set(self.hdfs.namenode.serving_locations(task.block.block_id))
            local = [e for e in candidates if e.node_id in serving]
            if local:
                return local[0]
        return candidates[0]

    # --------------------------------------------------------------- hedging
    def _node_suspected(self, node_id: str) -> bool:
        """Suspicion signal feeding hedges: detector gray-zone belief or a
        breaker that is not fully CLOSED (recovering / tripping node)."""
        injector = self.fault_injector
        if injector is not None and injector.detector is not None:
            if injector.detector.is_suspected(node_id):
                return True
        if self.breakers is not None:
            return self.breakers.breaker(node_id).state != CLOSED
        return False

    def _hedge_threshold(self, task: Task) -> Optional[float]:
        """Adaptive percentile bar a running attempt must cross to hedge."""
        key = (task.job_id, task.stage_index)
        durations = self._stage_durations.get(key)
        if not durations or len(durations) < 3:
            return None  # not enough history for a meaningful percentile
        ordered = sorted(durations)
        idx = min(len(ordered) - 1, max(0, int(self.hedge_quantile * len(ordered))))
        return self.hedge_multiplier * ordered[idx]

    def _launch_hedges(self) -> None:
        """Back up slow attempts running on suspected nodes.

        A hedge generalises speculation: instead of waiting for most of the
        stage to finish, it fires as soon as (a) the attempt's runtime
        crosses an adaptive percentile of the stage's completed durations
        and (b) the hosting node is *suspected* — the detector's gray zone
        or a non-closed breaker.  The backup always lands on a different
        node; first finisher wins, the loser is killed.
        """
        if self._hedge_wakeup is not None:
            self._hedge_wakeup.cancel()
            self._hedge_wakeup = None
        free = [
            e
            for e in self.executors
            if e.free_slots > 0 and not self._blacklisted(e.node_id)
        ]
        if not free:
            return
        now = self.sim.now
        next_check: Optional[float] = None
        for task_id, attempts in list(self._attempts.items()):
            if not free:
                break
            if len(attempts) != 1:
                continue  # already backed up (hedge or speculation)
            attempt = attempts[0]
            node_id = attempt.executor.node_id
            if not self._node_suspected(node_id):
                continue
            threshold = self._hedge_threshold(attempt.task)
            if threshold is None:
                continue
            eligible_at = attempt.started_at + threshold
            if now < eligible_at:
                if next_check is None or eligible_at < next_check:
                    next_check = eligible_at
                continue
            executor = self._pick_hedge_slot(attempt.task, free, node_id)
            if executor is None:
                continue
            self.hedges_launched += 1
            self._m_hedges_launched.inc()
            self._m_launch_hedge.inc()
            if self.timeline is not None:
                self.timeline.record(
                    "task.hedge",
                    attempt.task.task_id,
                    app=self.app_id,
                    primary=node_id,
                    hedge=executor.node_id,
                )
            if self.tracer.enabled:
                self.tracer.emit(
                    HedgeLaunch(
                        now,
                        track=executor.node_id,
                        attrs={
                            "task": attempt.task.task_id,
                            "app": self.app_id,
                            "primary_node": node_id,
                            "hedge_node": executor.node_id,
                            "elapsed": now - attempt.started_at,
                        },
                    )
                )
            self._start_attempt(attempt.task, executor, speculative=True, hedge=True)
            if executor.free_slots <= 0:
                free.remove(executor)
        if next_check is not None and next_check > now:
            self._hedge_wakeup = self.sim.schedule_at(next_check, self._dispatch)

    def _pick_hedge_slot(
        self, task: Task, free: List[Executor], primary_node: str
    ) -> Optional[Executor]:
        """A free slot off the primary's node, preferring unsuspected hosts."""
        candidates = [e for e in free if e.node_id != primary_node]
        if not candidates:
            return None
        trusted = [e for e in candidates if not self._node_suspected(e.node_id)]
        pool = trusted or candidates
        if task.is_input and task.block is not None:
            serving = set(self.hdfs.namenode.serving_locations(task.block.block_id))
            local = [e for e in pool if e.node_id in serving]
            if local:
                return local[0]
        return pool[0]

    # ---------------------------------------------------------------- attempts
    def _trace_attempt(
        self, attempt: _Attempt, outcome: str, read_time: Optional[float] = None
    ) -> None:
        """Emit the attempt's lifetime as a TaskAttempt span (tracing only).

        The span covers launch→now on the executor's lane; successful
        attempts carry the queue→input→run phase split and the locality
        tag, failed/killed ones just the outcome.
        """
        if not self.tracer.enabled:
            return
        task, executor = attempt.task, attempt.executor
        now = self.sim.now
        attrs = {
            "task": task.task_id,
            "app": self.app_id,
            "outcome": outcome,
            "speculative": attempt.speculative,
        }
        if task.submitted_at is not None:
            attrs["queue"] = attempt.started_at - task.submitted_at
        if outcome == "success":
            if read_time is not None:
                attrs["input"] = read_time
                attrs["run"] = (now - attempt.started_at) - read_time
            if task.locality_level is not None:
                attrs["locality"] = task.locality_level
        self.tracer.emit(
            TaskAttempt(
                attempt.started_at,
                dur=now - attempt.started_at,
                track=executor.node_id,
                lane=executor.executor_id,
                attrs=attrs,
            )
        )

    def _start_attempt(
        self, task: Task, executor: Executor, *, speculative: bool, hedge: bool = False
    ) -> None:
        now = self.sim.now
        if self.breakers is not None:
            # Consume the breaker grant (an OPEN breaker past cooldown
            # transitions to HALF_OPEN here — this launch IS the probe).
            self.breakers.breaker(executor.node_id).allows_launch(now)
        executor.start_task(task.task_id)
        attempt = _Attempt(task, executor, speculative, now, hedge)
        self._attempts.setdefault(task.task_id, []).append(attempt)
        if not speculative:
            task.started_at = now
            task.executor_id = executor.executor_id
            task.node_id = executor.node_id
            self.demand_epoch += 1
            self._m_launch_primary.inc()
        if self.timeline is not None:
            self.timeline.record(
                "task.start" if not speculative else ("task.hedge.start" if hedge else "task.speculate"),
                task.task_id,
                app=self.app_id,
                executor=executor.executor_id,
                node=executor.node_id,
            )
        attempt.process = Process(
            self.sim,
            self._attempt_proc(attempt),
            name=f"run:{task.task_id}@{executor.executor_id}",
        )

    def _kill_attempt(self, attempt: _Attempt) -> None:
        """Kill an attempt, releasing its slot before returning.

        The immediate interrupt runs the attempt generator's cleanup
        (cancel in-flight transfer, free the executor slot) synchronously;
        if the process has not reached its first yield yet the slot is
        freed here and the late interrupt lands harmlessly.
        """
        attempts = self._attempts.get(attempt.task.task_id)
        if attempts and attempt in attempts:
            attempts.remove(attempt)
        self._trace_attempt(attempt, "killed")
        if attempt.process is not None and attempt.process.alive:
            attempt.process.interrupt("killed", immediate=True)
        # A not-yet-started process takes the async interrupt path: its
        # generator may still run once at this instant (and even start a
        # transfer) before the interrupt lands, so sweep leftovers here too.
        for transfer in attempt.transfers:
            self.fabric.cancel_transfer(transfer)
        attempt.transfers.clear()
        if attempt.task.task_id in attempt.executor.running_tasks:
            attempt.executor.finish_task(attempt.task.task_id)

    # -------------------------------------------------------------- execution
    def _attempt_proc(self, attempt: _Attempt):
        task, executor = attempt.task, attempt.executor
        node = executor.node
        transfers = attempt.transfers
        read_started = self.sim.now
        try:
            was_local: Optional[bool] = None
            if task.is_input:
                assert task.block is not None
                if self.hdfs.can_serve_locally(task.block.block_id, node.node_id):
                    was_local = True
                    yield Timeout(self.hdfs.local_read_time(task.block, node.node_id))
                else:
                    was_local = False
                    src = self._pick_fetch_source(task.block.block_id, node.node_id)
                    if src is None:
                        # Every replica is gone (or unreachable with none
                        # better known): fail the attempt instead of crashing.
                        self._fail_attempt(attempt, "no-replicas")
                        return
                    transfers.append(
                        self.fabric.start_transfer(src, node.node_id, task.block.size)
                    )
                    yield transfers[0].done
                    transfers.clear()
                    # Cache-on-remote-read: later scans of this hot dataset
                    # become local (§II, §VII).
                    if self.hdfs.caching_enabled:
                        self.hdfs.cache_block(node.node_id, task.block)
            elif task.shuffle_bytes > 0:
                sources = self._shuffle_sources(task)
                if not sources:
                    yield Timeout(node.local_read_time(task.shuffle_bytes))
                else:
                    per_source = task.shuffle_bytes / len(sources)
                    waits: List = []
                    for src in sources:
                        if src == node.node_id:
                            waits.append(Timeout(node.local_read_time(per_source)))
                        else:
                            transfer = self.fabric.start_transfer(
                                src, node.node_id, per_source
                            )
                            transfers.append(transfer)
                            waits.append(transfer.done)
                    yield AllOf(waits)
                    transfers.clear()
            read_time = self.sim.now - read_started
            cpu = task.cpu_time * self._cpu_factor(node.node_id)
            if cpu > 0:
                yield Timeout(cpu)
        except Interrupt:
            for transfer in transfers:
                self.fabric.cancel_transfer(transfer)
            transfers.clear()
            if task.task_id in executor.running_tasks:
                executor.finish_task(task.task_id)
            return
        except TransferFailedError as exc:
            self._fail_attempt(attempt, exc.cause)
            return
        self._finish_attempt(attempt, was_local, read_time)

    def _pick_fetch_source(self, block_id: str, reader_node: str) -> Optional[str]:
        """Replica holder a remote read fetches from, fault-aware.

        Without a fault injector this is exactly
        :meth:`~repro.hdfs.namenode.NameNode.pick_source`.  Under faults the
        driver filters holders through its (possibly stale) view — the
        failure detector's belief when one exists, else ground-truth
        reachability — and falls back to the unfiltered pick when the view
        rejects every holder (the fetch then fails and retries normally).
        Returns None when no replica exists at all.
        """
        namenode = self.hdfs.namenode
        holders = namenode.locations(block_id)
        if not holders:
            return None
        injector = self.fault_injector
        if injector is not None:
            detector = getattr(injector, "detector", None)
            if detector is not None:
                live = [h for h in holders if detector.is_alive(h)]
            else:
                live = [h for h in holders if injector.node_reachable(h)]
            if live:
                holders = live
        for node in holders:
            if node != reader_node:
                return node
        return holders[0]

    def _fail_attempt(self, attempt: _Attempt, reason: str) -> None:
        """An attempt died mid-flight (fetch failed / data gone): clean up
        its slot and route the task through the retry machinery."""
        task, executor = attempt.task, attempt.executor
        self.failed_attempts += 1
        self._m_failed_attempts.inc()
        self.demand_epoch += 1
        for transfer in attempt.transfers:
            self.fabric.cancel_transfer(transfer)
        attempt.transfers.clear()
        if task.task_id in executor.running_tasks:
            executor.finish_task(task.task_id)
        attempts = self._attempts.get(task.task_id)
        known = attempts is not None and attempt in attempts
        if known:
            attempts.remove(attempt)
        if self.timeline is not None:
            self.timeline.record(
                "attempt.fail",
                task.task_id,
                app=self.app_id,
                executor=executor.executor_id,
                reason=reason,
            )
        self._trace_attempt(attempt, reason)
        if known and not attempts:
            self._attempts.pop(task.task_id, None)
            if not task.cancelled and task.finished_at is None:
                self._handle_task_failure(task, executor.node_id, reason)
        if (
            not executor.running_tasks
            and executor.owner == self.app_id
            and executor.healthy
            and self.manager is not None
        ):
            self.manager.on_executor_idle(self, executor)
        self._dispatch()

    def _cpu_factor(self, node_id: str) -> float:
        if self.fault_injector is None:
            return 1.0
        return self.fault_injector.cpu_factor(node_id)

    def _remote_locality_level(self, task: Task, executor: Executor) -> str:
        """Rack-level classification of a non-node-local input task."""
        assert task.block is not None
        topology = self.cluster.topology
        rack = topology.rack_of(executor.node_id)
        holders = self.hdfs.namenode.serving_locations(task.block.block_id)
        if any(topology.rack_of(h) == rack for h in holders):
            return "rack"
        return "any"

    def _shuffle_sources(self, task: Task) -> List[str]:
        """Source nodes for one shuffle fetch.

        Deterministic rotation over the nodes that ran the upstream stage,
        taking up to ``shuffle_fanout`` *distinct* nodes per fetch.  Fan-out
        1 (default) reproduces the single-aggregate-flow model; higher
        values approach the real all-to-all fetch at proportional event
        cost.
        """
        key = (task.job_id, task.stage_index - 1)
        upstream = self._stage_nodes.get(key)
        if not upstream:
            return []
        distinct: List[str] = []
        for node in upstream:
            if node not in distinct:
                distinct.append(node)
        take = min(self.shuffle_fanout, len(distinct))
        idx = self._shuffle_rotation.get(key, 0)
        self._shuffle_rotation[key] = idx + take
        return [distinct[(idx + i) % len(distinct)] for i in range(take)]

    def _finish_attempt(
        self, attempt: _Attempt, was_local: Optional[bool], read_time: float
    ) -> None:
        task, executor = attempt.task, attempt.executor
        now = self.sim.now
        executor.finish_task(task.task_id)
        if self.breakers is not None:
            self.breakers.breaker(executor.node_id).on_success(now)
        attempts = self._attempts.pop(task.task_id, [])
        if attempt in attempts:
            attempts.remove(attempt)
        for loser in attempts:
            if loser.hedge:
                self.hedges_lost += 1
                self._m_hedges_lost.inc()
            self._kill_attempt(loser)
        if attempt.hedge:
            self.hedges_won += 1
            self._m_hedges_won.inc()
        elif attempt.speculative:
            self.speculative_wins += 1
            self._m_speculative_wins.inc()
        # The winning attempt defines the task's recorded outcome.
        task.finished_at = now
        task.executor_id = executor.executor_id
        task.node_id = executor.node_id
        task.was_local = was_local
        task.read_time = read_time
        self.demand_epoch += 1
        if task.is_input and was_local is not None:
            task.locality_level = (
                "node" if was_local else self._remote_locality_level(task, executor)
            )
        if self.timeline is not None:
            self.timeline.record(
                "task.finish",
                task.task_id,
                app=self.app_id,
                local=task.was_local,
                duration=task.duration,
                speculative=attempt.speculative,
            )
        self._trace_attempt(attempt, "success", read_time)
        job = self._jobs[task.job_id]
        if task.is_input and was_local is not None:
            # Feed the O(1) locality history the incremental demand index
            # reads (mirrors the fraction-property scans exactly).
            self.app.note_input_decided(job, was_local)
        key = (task.job_id, task.stage_index)
        self._stage_nodes[key].append(executor.node_id)
        self._stage_durations[key].append(now - attempt.started_at)
        self._stage_remaining[key] -= 1
        if self._stage_remaining[key] == 0:
            if task.stage_index == 0 and job.input_quorum < job.num_input_tasks:
                self._cancel_surplus_inputs(job)
            self._on_stage_done(job, task.stage_index)
        # The stage-done hook above may have triggered a reallocation that
        # already revoked (and even re-granted) this executor; only report
        # idleness while we still own it.
        if (
            not executor.running_tasks
            and executor.owner == self.app_id
            and self.manager is not None
        ):
            self.manager.on_executor_idle(self, executor)
        self._dispatch_or_defer()

    def _cancel_surplus_inputs(self, job: Job) -> None:
        """KMN: the quorum is met — cancel this job's surplus input tasks."""
        self.demand_epoch += 1
        for task in job.input_tasks:
            if task.finished_at is not None or task.cancelled:
                continue
            attempts = self._attempts.pop(task.task_id, None)
            if attempts:
                for attempt in list(attempts):
                    self._kill_attempt(attempt)
            elif task in self._runnable:
                self._runnable.remove(task)
            task.cancelled = True
            if self.timeline is not None:
                self.timeline.record("task.cancel", task.task_id, app=self.app_id)

    def _on_stage_done(self, job: Job, stage_index: int) -> None:
        if stage_index + 1 < len(job.stages):
            self._enqueue_stage(job, stage_index + 1)
            return
        job.finished_at = self.sim.now
        self._m_job_completions.inc()
        if job.submitted_at is not None:
            self._m_jct.observe(self.sim.now - job.submitted_at)
        if self.timeline is not None:
            self.timeline.record(
                "job.finish",
                job.job_id,
                app=self.app_id,
                jct=job.completion_time,
                local_job=job.is_local_job,
            )
        if self.tracer.enabled and job.submitted_at is not None:
            self.tracer.emit(
                JobSpan(
                    job.submitted_at,
                    dur=self.sim.now - job.submitted_at,
                    track=self.app_id,
                    lane=job.job_id,
                    attrs={
                        "job": job.job_id,
                        "app": self.app_id,
                        "local_job": job.is_local_job,
                        "inputs": job.num_input_tasks,
                    },
                )
            )
        if self.manager is not None:
            self.manager.on_job_finished(self, job)
