"""Task scheduling policies: which runnable task takes a free slot.

The scheduler answers one question, posed by the driver each time a slot on
executor *E* becomes available: *which runnable task (if any) should run on
E right now?*  Returning None leaves the slot idle — the delay-scheduling
bet that a local task will claim it soon.

Policies also expose :meth:`next_wakeup`, the earliest future time at which
a currently-ineligible task would become eligible (its locality wait
expiring), so the driver can re-dispatch exactly then.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from repro.cluster.topology import Topology
from repro.hdfs.namenode import NameNode
from repro.workload.task import Task

__all__ = [
    "TaskScheduler",
    "DelayScheduler",
    "HintedDelayScheduler",
    "LocalityFirstScheduler",
    "FifoScheduler",
]


class TaskScheduler(abc.ABC):
    """Strategy interface for in-application task placement."""

    @abc.abstractmethod
    def pick_task(
        self,
        runnable: Sequence[Task],
        node_id: str,
        now: float,
        namenode: NameNode,
        executor_id: Optional[str] = None,
    ) -> Optional[Task]:
        """Choose the task to launch on a free slot at ``node_id``, or None.

        ``executor_id`` identifies the specific executor offering the slot —
        only hint-aware policies use it; locality is node-level.
        """

    def next_wakeup(
        self, runnable: Sequence[Task], now: float
    ) -> Optional[float]:
        """Earliest future time a scheduling decision could change, or None."""
        return None

    def accepts_offer(
        self,
        runnable: Sequence[Task],
        node_id: str,
        now: float,
        namenode: NameNode,
    ) -> bool:
        """Offer-model hook (Mesos): would this app use a slot on ``node_id``?"""
        return self.pick_task(runnable, node_id, now, namenode) is not None


def _is_local(task: Task, node_id: str, namenode: NameNode) -> bool:
    """Node-level locality test for an input task (disk or cached copy)."""
    assert task.block is not None
    return node_id in namenode.serving_locations(task.block.block_id)


class DelayScheduler(TaskScheduler):
    """Delay scheduling [22] with Spark's locality-wait ladder.

    FIFO over runnable tasks.  An input task prefers a **node-local** slot;
    with ``rack_wait`` and a topology configured it accepts a **rack-local**
    slot after waiting ``wait`` seconds since submission, and **any** slot
    after ``wait + rack_wait``.  Without a topology the ladder collapses to
    the two-level node→any scheme (any slot after ``wait``).  Shuffle tasks
    carry no locality preference and run anywhere immediately.  ``wait``
    defaults to 3 s — Spark's ``spark.locality.wait``.
    """

    def __init__(
        self,
        wait: float = 3.0,
        *,
        rack_wait: Optional[float] = None,
        topology: Optional[Topology] = None,
    ):
        if wait < 0:
            raise ValueError(f"wait must be >= 0, got {wait}")
        if rack_wait is not None and rack_wait < 0:
            raise ValueError(f"rack_wait must be >= 0, got {rack_wait}")
        if rack_wait is not None and topology is None:
            raise ValueError("rack_wait requires a topology")
        self.wait = wait
        self.rack_wait = rack_wait
        self.topology = topology

    def _is_rack_local(self, task: Task, node_id: str, namenode: NameNode) -> bool:
        assert task.block is not None and self.topology is not None
        rack = self.topology.rack_of(node_id)
        return any(
            self.topology.rack_of(holder) == rack
            for holder in namenode.serving_locations(task.block.block_id)
        )

    def pick_task(
        self,
        runnable: Sequence[Task],
        node_id: str,
        now: float,
        namenode: NameNode,
        executor_id: Optional[str] = None,
    ) -> Optional[Task]:
        rack_fallback: Optional[Task] = None
        any_fallback: Optional[Task] = None
        laddered = self.rack_wait is not None and self.topology is not None
        for task in runnable:
            if not task.is_input:
                if any_fallback is None:
                    any_fallback = task
                continue
            if _is_local(task, node_id, namenode):
                return task
            if task.submitted_at is None:
                continue
            waited = now - task.submitted_at
            if laddered:
                if (
                    rack_fallback is None
                    and waited >= self.wait
                    and self._is_rack_local(task, node_id, namenode)
                ):
                    rack_fallback = task
                if any_fallback is None and waited >= self.wait + self.rack_wait:
                    any_fallback = task
            elif any_fallback is None and waited >= self.wait:
                any_fallback = task
        return rack_fallback if rack_fallback is not None else any_fallback

    def next_wakeup(self, runnable: Sequence[Task], now: float) -> Optional[float]:
        laddered = self.rack_wait is not None and self.topology is not None
        earliest: Optional[float] = None
        for task in runnable:
            if task.is_input and task.submitted_at is not None:
                for expiry in (
                    task.submitted_at + self.wait,
                    task.submitted_at + self.wait + (self.rack_wait or 0.0)
                    if laddered
                    else None,
                ):
                    if expiry is not None and expiry > now:
                        if earliest is None or expiry < earliest:
                            earliest = expiry
        return earliest


class LocalityFirstScheduler(TaskScheduler):
    """Hard locality constraint: input tasks only ever run locally.

    The Sparrow-style [23] constraint policy; used in ablations to measure
    the best locality any scheduler could reach on a given executor set (it
    may deadlock a job whose data the app's executors simply do not hold, so
    production use pairs it with a manager that guarantees coverage).
    """

    def pick_task(
        self,
        runnable: Sequence[Task],
        node_id: str,
        now: float,
        namenode: NameNode,
        executor_id: Optional[str] = None,
    ) -> Optional[Task]:
        for task in runnable:
            if not task.is_input or _is_local(task, node_id, namenode):
                return task
        return None


class HintedDelayScheduler(DelayScheduler):
    """Delay scheduling that honours Custody's per-task executor hints.

    Custody's allocator knows which executor it granted *for* which task
    (the z^u_ijk assignments); §V notes the suggestions could be submitted
    alongside the executor list.  This policy enforces them: a task hinted
    to executor *E* runs on E when E offers a slot, and other executors
    leave it alone until its delay wait expires (the hint acts as a
    reservation with the usual delay-scheduling escape hatch).
    """

    def __init__(
        self,
        wait: float = 3.0,
        *,
        rack_wait: Optional[float] = None,
        topology: Optional[Topology] = None,
    ):
        super().__init__(wait, rack_wait=rack_wait, topology=topology)
        self.hints: dict = {}

    def set_hints(self, mapping: dict) -> None:
        """Merge task-id → executor-id hints from the latest allocation."""
        self.hints.update(mapping)

    def _reserved_elsewhere(self, task: Task, executor_id: Optional[str], now: float) -> bool:
        hint = self.hints.get(task.task_id)
        if hint is None or hint == executor_id:
            return False
        # Reserved for another executor; the reservation lapses with the wait.
        if task.submitted_at is None:
            return True
        return now - task.submitted_at < self.wait

    def pick_task(
        self,
        runnable: Sequence[Task],
        node_id: str,
        now: float,
        namenode: NameNode,
        executor_id: Optional[str] = None,
    ) -> Optional[Task]:
        if executor_id is not None:
            for task in runnable:
                if self.hints.get(task.task_id) == executor_id:
                    return task
        eligible = [
            t for t in runnable if not self._reserved_elsewhere(t, executor_id, now)
        ]
        return super().pick_task(eligible, node_id, now, namenode, executor_id)


class FifoScheduler(TaskScheduler):
    """Zero-wait FIFO: take the oldest runnable task, locality be damned."""

    def pick_task(
        self,
        runnable: Sequence[Task],
        node_id: str,
        now: float,
        namenode: NameNode,
        executor_id: Optional[str] = None,
    ) -> Optional[Task]:
        return runnable[0] if runnable else None
