"""Retry budgets and circuit breakers — the driver's overload valves.

Unbounded retry loops are how a degraded cluster turns into a thrashing
one: every failure respawns work against the same sick node, retries
synchronise, and goodput collapses exactly when capacity is scarcest.
Two classic primitives bound that feedback:

* :class:`RetryBudget` — a per-job token bucket.  Every retry spends a
  token; tokens refill at a steady rate up to a cap.  A burst of failures
  drains the bucket and later retries are *denied* (the task is abandoned
  as shed work) instead of amplifying the incident.
* :class:`CircuitBreaker` — a per-node launch gate with the canonical
  three-state machine: CLOSED (normal) trips OPEN after enough failures in
  a sliding window; after a cooldown the breaker admits exactly one
  HALF_OPEN probe; the probe's outcome closes the breaker or re-opens it.
  Unlike the fixed blacklist it subsumes, a breaker *verifies* recovery
  with real traffic instead of trusting a timer.

Both are plain deterministic state machines driven by the simulation
clock passed into every call — they schedule nothing and draw no
randomness, so enabling them cannot perturb event ordering elsewhere.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.common.errors import ConfigurationError

__all__ = ["CircuitBreaker", "CircuitBreakerBoard", "RetryBudget"]

#: Breaker states (string-valued for cheap tracing).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class RetryBudget:
    """Token bucket bounding how many retries a job may spend.

    ``capacity`` tokens are available up front; tokens refill continuously
    at ``refill_rate`` per second (0 = a hard total budget).  The bucket
    never holds more than ``capacity``.
    """

    __slots__ = ("capacity", "refill_rate", "_tokens", "_updated",
                 "spent", "denied")

    def __init__(self, capacity: int, refill_rate: float = 0.0):
        if capacity < 1:
            raise ConfigurationError(f"retry budget must be >= 1, got {capacity}")
        if refill_rate < 0:
            raise ConfigurationError(
                f"refill_rate must be >= 0, got {refill_rate}"
            )
        self.capacity = capacity
        self.refill_rate = refill_rate
        self._tokens = float(capacity)
        self._updated = 0.0
        self.spent = 0
        self.denied = 0

    def tokens(self, now: float) -> float:
        """Tokens available at ``now`` (read-only)."""
        elapsed = max(0.0, now - self._updated)
        return min(float(self.capacity), self._tokens + elapsed * self.refill_rate)

    def try_spend(self, now: float) -> bool:
        """Spend one token if available; False means the retry is denied."""
        self._tokens = self.tokens(now)
        self._updated = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False


class CircuitBreaker:
    """Per-node launch gate: CLOSED → OPEN → HALF_OPEN → CLOSED.

    Failures are counted in a sliding ``window``; ``threshold`` recent
    failures trip the breaker OPEN for ``cooldown`` seconds.  The first
    ``allows_launch`` after the cooldown transitions to HALF_OPEN and
    admits exactly one probe; the next outcome on the node resolves it
    (success closes, failure re-opens).  The machine never skips
    HALF_OPEN on the way back to CLOSED — that invariant is what makes
    recovery *verified* rather than assumed.
    """

    __slots__ = ("threshold", "window", "cooldown", "state", "_failures",
                 "_opened_at", "_probe_inflight", "opens", "probes", "closes",
                 "_on_transition")

    def __init__(
        self,
        *,
        threshold: int = 3,
        window: float = 60.0,
        cooldown: float = 60.0,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
        if window <= 0 or cooldown <= 0:
            raise ConfigurationError("window and cooldown must be positive")
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        self.state = CLOSED
        self._failures: Deque[float] = deque()
        self._opened_at = 0.0
        self._probe_inflight = False
        self.opens = 0
        self.probes = 0
        self.closes = 0
        self._on_transition = on_transition

    def _transition(self, state: str) -> None:
        prev, self.state = self.state, state
        if self._on_transition is not None:
            self._on_transition(prev, state)

    def _trim(self, now: float) -> None:
        while self._failures and now - self._failures[0] > self.window:
            self._failures.popleft()

    def would_allow(self, now: float) -> bool:
        """Read-only probe-preserving form of :meth:`allows_launch`.

        Schedulers filter candidate nodes far more often than they launch;
        this predicate answers without consuming the half-open probe (or
        transitioning OPEN → HALF_OPEN), so only a real launch does.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            return now - self._opened_at >= self.cooldown
        return not self._probe_inflight

    def allows_launch(self, now: float) -> bool:
        """May the driver place an attempt on this node right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self._opened_at >= self.cooldown:
                self._transition(HALF_OPEN)
                self._probe_inflight = True
                self.probes += 1
                return True  # the single half-open probe
            return False
        # HALF_OPEN: only the one outstanding probe may run.
        if not self._probe_inflight:
            self._probe_inflight = True
            self.probes += 1
            return True
        return False

    def on_failure(self, now: float) -> None:
        """An attempt on the node failed (launch error or task failure)."""
        if self.state == HALF_OPEN:
            self._probe_inflight = False
            self._failures.clear()
            self._opened_at = now
            self.opens += 1
            self._transition(OPEN)
            return
        if self.state == OPEN:
            return  # already tripped; nothing new to learn
        self._failures.append(now)
        self._trim(now)
        if len(self._failures) >= self.threshold:
            self._failures.clear()
            self._opened_at = now
            self.opens += 1
            self._transition(OPEN)

    def next_probe_time(self) -> Optional[float]:
        """When an OPEN breaker will admit its probe (None otherwise).

        HALF_OPEN with the probe in flight resolves on the probe's outcome
        — an event, not a time — so there is nothing to wake up for.
        """
        if self.state == OPEN:
            return self._opened_at + self.cooldown
        return None

    def on_success(self, now: float) -> None:
        """An attempt on the node completed: a half-open probe closes it."""
        if self.state == HALF_OPEN:
            self._probe_inflight = False
            self._failures.clear()
            self.closes += 1
            self._transition(CLOSED)


class CircuitBreakerBoard:
    """One breaker per node, created on demand with shared parameters."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        window: float = 60.0,
        cooldown: float = 60.0,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ):
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._on_transition = on_transition

    def breaker(self, node_id: str) -> CircuitBreaker:
        """The (created-on-demand) breaker guarding one node."""
        breaker = self._breakers.get(node_id)
        if breaker is None:
            hook = None
            if self._on_transition is not None:
                callback = self._on_transition
                hook = lambda prev, state: callback(node_id, prev, state)  # noqa: E731
            breaker = CircuitBreaker(
                threshold=self.threshold,
                window=self.window,
                cooldown=self.cooldown,
                on_transition=hook,
            )
            self._breakers[node_id] = breaker
        return breaker

    def __iter__(self):
        return iter(self._breakers.items())

    def open_count(self) -> int:
        """Breakers not currently CLOSED (OPEN or HALF_OPEN)."""
        return sum(1 for b in self._breakers.values() if b.state != CLOSED)

    def totals(self) -> Dict[str, int]:
        """Aggregate transition counters across all nodes."""
        return {
            "opens": sum(b.opens for b in self._breakers.values()),
            "probes": sum(b.probes for b in self._breakers.values()),
            "closes": sum(b.closes for b in self._breakers.values()),
        }
