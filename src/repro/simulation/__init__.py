"""Deterministic discrete-event simulation engine.

A small, SimPy-flavoured core purpose-built for the Custody reproduction:

* :class:`Simulation` — event heap + virtual clock, callback timers.
* :class:`Process` / :class:`Signal` / :class:`Timeout` — generator-based
  cooperative processes for modelling drivers, executors and transfers.
* :class:`Store` and :class:`CountingResource` — queued hand-off and counted
  capacity primitives.
* :class:`Timeline` — an append-only trace of simulation events used by the
  determinism property tests and for debugging.

Design goals: zero global state (everything hangs off one ``Simulation``),
strict determinism (ties broken by insertion sequence number), and clear
failure on misuse (scheduling in the past raises, running twice raises).
"""

from repro.simulation.engine import EventHandle, Simulation
from repro.simulation.process import AllOf, AnyOf, Interrupt, Process, Signal, Timeout
from repro.simulation.resources import CountingResource, Store
from repro.simulation.timeline import Timeline, TimelineRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "CountingResource",
    "EventHandle",
    "Interrupt",
    "Process",
    "Signal",
    "Simulation",
    "Store",
    "Timeline",
    "TimelineRecord",
]
