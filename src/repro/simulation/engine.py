"""The event loop: a virtual clock driving a binary-heap event queue.

The engine is intentionally minimal — time, ordered callbacks, cancellation —
with the process/wait machinery layered on top in :mod:`repro.simulation.process`.
Determinism is absolute: events at equal times fire in scheduling order
(monotone sequence numbers break ties), and nothing reads the wall clock.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError

__all__ = ["EventHandle", "Simulation"]


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    Instances are created by :meth:`Simulation.schedule`; user code only ever
    cancels or inspects them.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulation"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> bool:
        """Prevent the callback from running.  Returns False if it already ran."""
        if self.fired:
            return False
        if not self.cancelled:
            self.cancelled = True
            self.callback = None  # free references early
            self.args = ()
            if self._sim is not None:
                self._sim._note_cancelled()
        return True

    @property
    def pending(self) -> bool:
        """True while the event is queued and will still fire."""
        return not self.fired and not self.cancelled

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<EventHandle t={self.time:.6g} seq={self.seq} {state}>"


class Simulation:
    """Virtual-time event loop.

    >>> sim = Simulation()
    >>> out = []
    >>> _ = sim.schedule(2.0, out.append, "b")
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> sim.run()
    >>> out, sim.now
    (['a', 'b'], 2.0)
    """

    #: Compaction trigger: rebuild the heap once cancelled handles both
    #: exceed this count and make up more than half the queue (the lazy
    #: deletion strategy asyncio's event loop uses for its timer heap).
    _COMPACT_MIN_DEAD = 32

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[EventHandle] = []
        self._deferred: Dict[Any, Tuple[Callable[..., Any], tuple]] = {}
        self._running = False
        self._finished = False
        self.events_processed = 0
        self.deferred_flushes = 0
        #: live (pending) events in the queue — maintained, not scanned
        self._live = 0
        #: cancelled handles still sitting in the heap
        self._dead = 0
        self.heap_compactions = 0

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulation t={self._now:.6g} pending={len(self._queue)}>"

    # -------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6g}s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6g} (now is t={self._now:.6g})"
            )
        handle = EventHandle(time, self._seq, callback, args, self)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        self._live += 1
        return handle

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback`` at the current time, after already-queued events
        at this time."""
        return self.schedule(0.0, callback, *args)

    def defer(self, key: Any, callback: Callable[..., Any], *args: Any) -> None:
        """Coalesce ``callback`` to run once before virtual time next advances.

        The event-batch hook: components that react to *every* change at an
        instant (e.g. the network fabric recomputing fair rates on each flow
        arrival) register one deferred callback per ``key`` instead.  All
        events at the current instant fire first; the deferred callbacks then
        run (in registration order) before the clock moves, so N same-time
        changes cost one recompute.  Re-registering an existing ``key``
        before the flush is a no-op, preserving the original order.

        Deferred callbacks may schedule new events at the current instant
        and may re-defer; the loop drains both before advancing time.
        """
        if key not in self._deferred:
            self._deferred[key] = (callback, args)

    # ---------------------------------------------------------------- stepping
    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None when the queue is empty.

        Pending deferred callbacks count as work at the current instant.
        """
        self._drop_dead_events()
        if self._queue:
            return min(self._queue[0].time, self._now) if self._deferred else self._queue[0].time
        return self._now if self._deferred else None

    def step(self) -> bool:
        """Fire the single next event.  Returns False when nothing is pending.

        Deferred callbacks (see :meth:`defer`) flush — as one step — when the
        queue is empty or its head lies beyond the current instant.
        """
        self._drop_dead_events()
        if self._deferred and (not self._queue or self._queue[0].time > self._now):
            deferred, self._deferred = self._deferred, {}
            for callback, args in deferred.values():
                callback(*args)
            self.events_processed += 1
            self.deferred_flushes += 1
            return True
        if not self._queue:
            return False
        handle = heapq.heappop(self._queue)
        self._now = handle.time
        handle.fired = True
        self._live -= 1
        callback, args = handle.callback, handle.args
        handle.callback, handle.args = None, ()
        assert callback is not None
        self.events_processed += 1
        callback(*args)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue, optionally stopping the clock at ``until``.

        Returns the final virtual time.  With ``until`` given, all events at
        ``t <= until`` fire and the clock is then advanced to exactly
        ``until`` even if the queue drained earlier, so repeated
        ``run(until=...)`` calls compose.
        """
        if self._running:
            raise SimulationError("simulation is already running (re-entrant run())")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until:.6g}, already at t={self._now:.6g}"
            )
        self._running = True
        try:
            while True:
                nxt = self.peek()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                self.step()
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled, unfired) events in the queue.

        O(1): the count is maintained on schedule/fire/cancel, so obs
        samplers can poll it every interval without scanning the heap.
        """
        return self._live

    @property
    def deferred_count(self) -> int:
        """Coalesced end-of-instant callbacks waiting to flush."""
        return len(self._deferred)

    def stats(self) -> Dict[str, Any]:
        """Read-only event-loop counters for observability probes.

        Everything here is maintained on existing paths (no extra hot-path
        bookkeeping); a trace sampler can poll this at any frequency without
        perturbing the run.
        """
        return {
            "now": self._now,
            "events_processed": self.events_processed,
            "events_scheduled": self._seq,
            "deferred_flushes": self.deferred_flushes,
            "pending_events": self.pending_events,
            "deferred_pending": len(self._deferred),
            "heap_size": len(self._queue),
            "cancelled_in_heap": self._dead,
            "heap_compactions": self.heap_compactions,
        }

    def _note_cancelled(self) -> None:
        """Bookkeeping callback from :meth:`EventHandle.cancel`."""
        self._live -= 1
        self._dead += 1

    def _drop_dead_events(self) -> None:
        """Purge cancelled events: pop from the top, compact when bloated.

        Cancelled handles deep in the heap (driver retry timers, detector
        heartbeats) cannot be popped lazily until their time arrives; once
        they outnumber the live events the whole heap is rebuilt in one
        O(n) pass so every push/pop stops paying for dead weight.
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
            self._dead -= 1
        if self._dead > self._COMPACT_MIN_DEAD and self._dead * 2 > len(queue):
            self._queue = [h for h in queue if not h.cancelled]
            heapq.heapify(self._queue)
            self._dead = 0
            self.heap_compactions += 1
