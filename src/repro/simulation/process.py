"""Generator-based cooperative processes on top of the event loop.

A process is a Python generator that ``yield``s *waitables*:

* :class:`Timeout` — resume after a virtual-time delay;
* :class:`Signal` — a one-shot event another component triggers with a value;
* another :class:`Process` — resume when it finishes (receiving its return
  value, or re-raising its exception);
* :class:`AllOf` / :class:`AnyOf` — composite waits.

Example::

    def worker(sim, inbox):
        while True:
            item = yield inbox.get()          # Store.get() returns a Signal
            yield Timeout(item.service_time)

Processes may be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupt` inside the generator at its current yield point — used to
model task preemption and executor decommissioning.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from repro.common.errors import SimulationError
from repro.simulation.engine import EventHandle, Simulation

__all__ = ["Timeout", "Signal", "Process", "Interrupt", "AllOf", "AnyOf"]


class Interrupt(Exception):
    """Raised inside a process generator when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Waitable:
    """Interface of things a process may ``yield``.

    Subclasses implement :meth:`_subscribe`, registering a resume callback
    invoked as ``callback(value, exception)`` exactly once, and
    :meth:`_unsubscribe` to withdraw interest (used by AnyOf and interrupts).
    """

    def _subscribe(self, sim: Simulation, callback) -> None:
        raise NotImplementedError

    def _unsubscribe(self, callback) -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Resume the yielding process after ``delay`` seconds, yielding ``value``."""

    __slots__ = ("delay", "value", "_handle", "_callback")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = delay
        self.value = value
        self._handle: Optional[EventHandle] = None
        self._callback = None

    def _subscribe(self, sim: Simulation, callback) -> None:
        self._callback = callback
        self._handle = sim.schedule(self.delay, self._fire)

    def _fire(self) -> None:
        cb, self._callback = self._callback, None
        if cb is not None:
            cb(self.value, None)

    def _unsubscribe(self, callback) -> None:
        if self._handle is not None:
            self._handle.cancel()
        self._callback = None


class Signal(Waitable):
    """A one-shot event carrying a value (or an exception).

    Multiple processes may wait on the same signal; all are resumed when it
    triggers.  Triggering twice raises.  Waiting on an already-triggered
    signal resumes immediately (on the next event-loop tick).
    """

    __slots__ = ("sim", "name", "_callbacks", "_triggered", "_value", "_exception")

    def __init__(self, sim: Simulation, name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: List[Any] = []
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        """True once :meth:`trigger` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the signal was triggered with (None before triggering)."""
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the signal, resuming all waiters with ``value``."""
        self._resolve(value, None)

    def fail(self, exception: BaseException) -> None:
        """Fire the signal exceptionally; waiters re-raise ``exception``."""
        self._resolve(None, exception)

    def _resolve(self, value: Any, exception: Optional[BaseException]) -> None:
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.call_soon(cb, value, exception)

    def _subscribe(self, sim: Simulation, callback) -> None:
        if self._triggered:
            sim.call_soon(callback, self._value, self._exception)
        else:
            self._callbacks.append(callback)

    def _unsubscribe(self, callback) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass


class Process(Waitable):
    """Drives a generator, resuming it when whatever it yielded completes.

    Completion (StopIteration) records the generator's return value; an
    uncaught exception is stored and re-raised in any process waiting on this
    one — or escapes to the event loop if nothing ever waits (fail-fast).
    """

    def __init__(self, sim: Simulation, generator: Generator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self._done = Signal(sim, name=f"{self.name}.done")
        self._current: Optional[Waitable] = None
        self._alive = True
        sim.call_soon(self._resume, None, None)

    # -------------------------------------------------------------- inspection
    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    @property
    def done(self) -> Signal:
        """Signal triggered with the generator's return value on completion."""
        return self._done

    @property
    def value(self) -> Any:
        """Return value of the finished generator (None while alive)."""
        return self._done.value

    # ----------------------------------------------------------------- control
    def interrupt(self, cause: Any = None, *, immediate: bool = False) -> None:
        """Raise :class:`Interrupt` inside the process at its current yield.

        By default the interrupt is delivered on the next event-loop tick.
        With ``immediate=True`` and the process suspended at a yield, the
        exception is thrown synchronously — the process's cleanup code runs
        before this call returns (used when a caller must observe released
        resources right away, e.g. killing task attempts).  A process that
        has not yet started falls back to the asynchronous path.
        """
        if not self._alive:
            return
        if self._current is not None:
            self._current._unsubscribe(self._resume)
            self._current = None
            if immediate:
                self._step(lambda: self._gen.throw(Interrupt(cause)))
                return
        self.sim.call_soon(self._resume_with_interrupt, cause)

    def _resume_with_interrupt(self, cause: Any) -> None:
        if not self._alive:
            return
        # The process may have started waiting on something between the
        # interrupt request and its delivery (e.g. it had not reached its
        # first yield yet): withdraw that subscription so no dead timer
        # lingers in the event queue.
        if self._current is not None:
            self._current._unsubscribe(self._resume)
            self._current = None
        self._step(lambda: self._gen.throw(Interrupt(cause)))

    def _resume(self, value: Any, exception: Optional[BaseException]) -> None:
        if not self._alive:
            return
        self._current = None
        if exception is not None:
            self._step(lambda: self._gen.throw(exception))
        else:
            self._step(lambda: self._gen.send(value))

    def _step(self, advance) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self._alive = False
            self._done.trigger(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its interrupt: treat as termination.
            self._alive = False
            self._done.trigger(None)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate re-dispatch
            self._alive = False
            if self._done._callbacks or self._done.triggered:
                self._done.fail(exc)
            else:
                # No waiters: store it, but also surface loudly.
                self._done.fail(exc)
                raise
            return
        if not isinstance(target, Waitable):
            self._alive = False
            err = SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )
            self._done.fail(err)
            raise err
        self._current = target
        target._subscribe(self.sim, self._resume)

    # ---------------------------------------------------------------- waitable
    def _subscribe(self, sim: Simulation, callback) -> None:
        self._done._subscribe(sim, callback)

    def _unsubscribe(self, callback) -> None:
        self._done._unsubscribe(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state}>"


class AllOf(Waitable):
    """Resume when every child waitable has completed.

    Resumes with the list of child values (in construction order).  The first
    child failure propagates immediately.
    """

    def __init__(self, children: Iterable[Waitable]):
        self._children = list(children)
        self._values: List[Any] = [None] * len(self._children)
        self._remaining = len(self._children)
        self._callback = None
        self._failed = False

    def _subscribe(self, sim: Simulation, callback) -> None:
        self._callback = callback
        if self._remaining == 0:
            sim.call_soon(callback, [], None)
            return
        for i, child in enumerate(self._children):
            child._subscribe(sim, self._make_child_callback(i))

    def _make_child_callback(self, index: int):
        def on_child(value: Any, exception: Optional[BaseException]) -> None:
            if self._failed or self._callback is None:
                return
            if exception is not None:
                self._failed = True
                cb, self._callback = self._callback, None
                cb(None, exception)
                return
            self._values[index] = value
            self._remaining -= 1
            if self._remaining == 0:
                cb, self._callback = self._callback, None
                cb(list(self._values), None)

        return on_child

    def _unsubscribe(self, callback) -> None:
        self._callback = None


class AnyOf(Waitable):
    """Resume when the first child completes, with ``(index, value)``."""

    def __init__(self, children: Iterable[Waitable]):
        self._children = list(children)
        if not self._children:
            raise SimulationError("AnyOf requires at least one child")
        self._callback = None
        self._done = False
        self._child_callbacks: List[Any] = []

    def _subscribe(self, sim: Simulation, callback) -> None:
        self._callback = callback
        for i, child in enumerate(self._children):
            cb = self._make_child_callback(i)
            self._child_callbacks.append((child, cb))
            child._subscribe(sim, cb)

    def _make_child_callback(self, index: int):
        def on_child(value: Any, exception: Optional[BaseException]) -> None:
            if self._done or self._callback is None:
                return
            self._done = True
            for child, cb in self._child_callbacks:
                if cb is not on_child:
                    child._unsubscribe(cb)
            callback, self._callback = self._callback, None
            if exception is not None:
                callback(None, exception)
            else:
                callback((index, value), None)

        return on_child

    def _unsubscribe(self, callback) -> None:
        self._callback = None
        for child, cb in self._child_callbacks:
            child._unsubscribe(cb)
