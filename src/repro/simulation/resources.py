"""Queued hand-off and counted-capacity primitives for processes.

:class:`Store` is an unbounded FIFO mailbox (producer/consumer hand-off, used
for driver inboxes and offer queues).  :class:`CountingResource` is a counted
semaphore with FIFO waiters (used for CPU-core slots and admission control).
Both return :class:`~repro.simulation.process.Signal` objects so processes
simply ``yield store.get()``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.common.errors import CapacityError, SimulationError
from repro.simulation.engine import Simulation
from repro.simulation.process import Signal

__all__ = ["Store", "CountingResource"]


class Store:
    """Unbounded FIFO store of items with signal-based ``get``.

    Items put while getters are waiting are handed to the longest-waiting
    getter; otherwise they queue.  ``get`` order is strictly FIFO, which the
    determinism tests rely on.
    """

    def __init__(self, sim: Simulation, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        """Number of processes blocked in :meth:`get`."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:  # skip abandoned waits
                getter.trigger(item)
                return
        self._items.append(item)

    def get(self) -> Signal:
        """A signal that resolves with the next item (immediately if queued)."""
        signal = Signal(self.sim, name=f"{self.name}.get")
        if self._items:
            signal.trigger(self._items.popleft())
        else:
            self._getters.append(signal)
        return signal

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: the next item, or None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def drain(self) -> list:
        """Remove and return all queued items (does not touch waiters)."""
        items = list(self._items)
        self._items.clear()
        return items


class CountingResource:
    """``capacity`` identical units with FIFO acquisition.

    >>> sim = Simulation()
    >>> cores = CountingResource(sim, capacity=2, name="cores")
    >>> grant = cores.acquire()     # Signal; triggers when a unit is free
    """

    def __init__(self, sim: Simulation, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise CapacityError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Signal] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units free for immediate acquisition."""
        return self.capacity - self._in_use

    @property
    def queued(self) -> int:
        """Processes waiting for a unit."""
        return len(self._waiters)

    def acquire(self) -> Signal:
        """A signal that resolves (with this resource) once a unit is held."""
        signal = Signal(self.sim, name=f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            signal.trigger(self)
        else:
            self._waiters.append(signal)
        return signal

    def try_acquire(self) -> bool:
        """Non-blocking acquire. True on success."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Return one unit, granting it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.trigger(self)  # unit passes directly to the waiter
                return
        self._in_use -= 1
