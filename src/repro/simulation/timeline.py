"""Append-only trace of simulation events.

Components record `(time, kind, subject, detail)` tuples as the simulation
runs.  The timeline serves three purposes:

1. **Determinism tests** — two runs from the same seed must produce
   byte-identical timelines (hypothesis property in
   ``tests/property/test_determinism.py``).
2. **Metrics** — the metrics collector derives locality and timing figures
   from timeline records rather than by instrumenting every component twice.
3. **Debugging** — ``timeline.tail()`` gives a readable account of what the
   cluster did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["TimelineRecord", "Timeline"]


@dataclass(frozen=True)
class TimelineRecord:
    """One event in the trace."""

    time: float
    kind: str
    subject: str
    detail: Tuple[Tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        """Look up a detail field by name."""
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        """Record as a flat dict (for reporting)."""
        d: Dict[str, Any] = {"time": self.time, "kind": self.kind, "subject": self.subject}
        d.update(self.detail)
        return d

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.detail)
        return f"[{self.time:12.4f}] {self.kind:<24} {self.subject} {fields}".rstrip()


class Timeline:
    """Ordered collection of :class:`TimelineRecord`.

    Recording can be disabled (``enabled=False``) for large benchmark sweeps
    where only the aggregated metrics matter; the ``record`` call then costs
    one attribute check.
    """

    def __init__(self, clock: Callable[[], float], enabled: bool = True):
        self._clock = clock
        self.enabled = enabled
        self._records: List[TimelineRecord] = []

    def record(self, kind: str, subject: str, **detail: Any) -> None:
        """Append a record stamped with the current virtual time."""
        if not self.enabled:
            return
        self._records.append(
            TimelineRecord(self._clock(), kind, subject, tuple(sorted(detail.items())))
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TimelineRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TimelineRecord:
        return self._records[index]

    def of_kind(self, *kinds: str) -> List[TimelineRecord]:
        """All records whose kind is one of ``kinds``, in time order."""
        wanted = set(kinds)
        return [r for r in self._records if r.kind in wanted]

    def about(self, subject: str) -> List[TimelineRecord]:
        """All records concerning ``subject``."""
        return [r for r in self._records if r.subject == subject]

    def first(self, kind: str, subject: Optional[str] = None) -> Optional[TimelineRecord]:
        """Earliest record of ``kind`` (optionally for ``subject``)."""
        for r in self._records:
            if r.kind == kind and (subject is None or r.subject == subject):
                return r
        return None

    def tail(self, n: int = 20) -> str:
        """The last ``n`` records rendered for humans."""
        return "\n".join(str(r) for r in self._records[-n:])

    def fingerprint(self) -> int:
        """Order-sensitive hash of the whole trace (determinism checks)."""
        return hash(tuple(self._records))
