"""Workload model: applications, jobs, stages, tasks, generators, traces.

The paper's evaluation (§VI-A2) drives the cluster with three workloads —
PageRank (network-heavy, iterative, 1 GB inputs), WordCount (network-light,
4–8 GB inputs) and Sort (compute- and network-heavy, 1–8 GB inputs) — with
job inter-arrival times roughly exponential with a 14 s mean (Facebook
trace [22]), 4 applications x 30 jobs each, and a common submission schedule
shared by every compared policy.

Structure mirrors Spark: an *application* owns a sequence of *jobs*; each
job is a DAG of *stages*; the first stage's tasks are *input tasks*, one per
HDFS block; downstream stages read shuffle output over the network and are
deliberately excluded from locality accounting (§III-A).
"""

from repro.workload.application import Application
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind
from repro.workload.generators import (
    PAGERANK,
    SORT,
    WORDCOUNT,
    JobFactory,
    WorkloadProfile,
    profile_by_name,
)
from repro.workload.trace import SubmissionEvent, SubmissionTrace, common_schedule

__all__ = [
    "Application",
    "Job",
    "JobFactory",
    "PAGERANK",
    "SORT",
    "Stage",
    "SubmissionEvent",
    "SubmissionTrace",
    "Task",
    "TaskKind",
    "WORDCOUNT",
    "WorkloadProfile",
    "common_schedule",
    "profile_by_name",
]
