"""Application: a long-lived framework instance submitting jobs over time.

Carries the locality bookkeeping Algorithm 1 sorts on: the percentage of
local *jobs* (primary key) and local *tasks* (tie-breaker) the application
has achieved so far.  The definition follows §IV-A: percentages are over
jobs/tasks whose locality outcome is already decided; applications with no
decided jobs rank as 0% local so newcomers get executors first.
"""

from __future__ import annotations

from typing import List, Optional

from repro.workload.job import Job
from repro.workload.task import Task

__all__ = ["Application"]


class Application:
    """A named tenant owning a sequence of jobs."""

    def __init__(self, app_id: str, *, executor_quota: Optional[int] = None):
        self.app_id = app_id
        #: σ_i — the cap on simultaneously-held executors (None = unlimited).
        self.executor_quota = executor_quota
        self.jobs: List[Job] = []
        # Live locality history, maintained through note_input_decided():
        # O(1) mirrors of the local_job_fraction / local_task_fraction scans
        # for the manager's incremental demand index.
        self.decided_job_count = 0
        self.local_job_count = 0
        self.decided_task_count = 0
        self.local_task_count = 0

    def add_job(self, job: Job) -> None:
        """Attach a job (its ``app_id`` must match)."""
        if job.app_id != self.app_id:
            raise ValueError(
                f"job {job.job_id} belongs to {job.app_id!r}, not {self.app_id!r}"
            )
        self.jobs.append(job)

    # -------------------------------------------------------------- structure
    @property
    def num_jobs(self) -> int:
        """ρ_i — total jobs submitted so far."""
        return len(self.jobs)

    @property
    def input_tasks(self) -> List[Task]:
        """τ_i's members: every input task of every job."""
        return [t for job in self.jobs for t in job.input_tasks]

    @property
    def active_jobs(self) -> List[Job]:
        """Jobs submitted but not yet finished."""
        return [j for j in self.jobs if j.submitted_at is not None and not j.finished]

    @property
    def pending_jobs(self) -> List[Job]:
        """Jobs not yet submitted."""
        return [j for j in self.jobs if j.submitted_at is None]

    # ---------------------------------------------------------------- locality
    @property
    def local_job_fraction(self) -> float:
        """Percentage of decided jobs that achieved perfect locality.

        Algorithm 1's primary sort key.  Jobs whose input tasks have not all
        run yet are excluded; an application with nothing decided scores 0.
        """
        decided = [j for j in self.jobs if j.is_local_job is not None]
        if not decided:
            return 0.0
        return sum(1 for j in decided if j.is_local_job) / len(decided)

    @property
    def local_task_fraction(self) -> float:
        """Percentage of decided input tasks that ran locally (tie-breaker)."""
        decided = [t for t in self.input_tasks if t.was_local is not None]
        if not decided:
            return 0.0
        return sum(1 for t in decided if t.was_local) / len(decided)

    def locality_key(self) -> tuple:
        """Sort key for Algorithm 1: (local-job %, local-task %, app id).

        The app id makes ordering total and deterministic.
        """
        return (self.local_job_fraction, self.local_task_fraction, self.app_id)

    def note_input_decided(self, job: Job, was_local: bool) -> None:
        """Fold one input task's locality outcome into the live history.

        The driver calls this exactly once per decided input task, right
        after setting ``task.was_local``; ``job`` must be the task's owning
        job.  Task counters bump directly; job counters move by the
        transition deltas the job reports (handling the KMN False→True
        flip).  The counters then equal what the fraction-property scans
        would recount from scratch.
        """
        d_decided, d_local = job.note_input_decided(was_local)
        self.decided_task_count += 1
        if was_local:
            self.local_task_count += 1
        self.decided_job_count += d_decided
        self.local_job_count += d_local

    def reset_runtime(self) -> None:
        """Clear runtime state on all jobs (policy-comparison replays)."""
        self.decided_job_count = 0
        self.local_job_count = 0
        self.decided_task_count = 0
        self.local_task_count = 0
        for job in self.jobs:
            job.reset_runtime()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Application {self.app_id} jobs={len(self.jobs)}>"
