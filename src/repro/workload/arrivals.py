"""Time-varying arrival processes: diurnal load via Poisson thinning.

The paper's common schedule (:func:`repro.workload.trace.common_schedule`)
is a *homogeneous* Poisson stream — fine for §VI's steady-state figures,
useless for the bursty/congested regimes the related reservation and
joint-scheduling work evaluates on.  This module generates
nonhomogeneous Poisson submission traces with the Lewis–Shedler thinning
algorithm: candidate arrivals are drawn at a dominating constant rate and
accepted with probability ``rate(t) / rate_max``, which samples the
target intensity exactly.

The canonical shape is :func:`diurnal_rate` — a day/night sinusoid — but
any callable ``rate(t) -> float`` bounded by ``rate_max`` works (spiky
flash-crowd profiles, trace-fitted curves, ...).
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workload.trace import SubmissionEvent, SubmissionTrace

__all__ = ["diurnal_rate", "thinned_schedule", "diurnal_schedule"]

RateFunction = Callable[[float], float]


def diurnal_rate(
    base_rate: float,
    amplitude: float = 0.8,
    period: float = 1200.0,
    phase: float = 0.0,
) -> RateFunction:
    """A day/night sinusoid: ``λ(t) = base · (1 + A·sin(2π(t+φ)/T))``.

    ``amplitude`` in [0, 1] keeps the rate nonnegative; the peak rate is
    ``base · (1 + A)`` (use it as ``rate_max`` when thinning).  ``period``
    is the full day length in sim-seconds — compressed from 86 400 s so a
    few "days" fit inside one experiment horizon.
    """
    if base_rate <= 0:
        raise ConfigurationError(f"base_rate must be positive, got {base_rate}")
    if not (0.0 <= amplitude <= 1.0):
        raise ConfigurationError(f"amplitude must be in [0, 1], got {amplitude}")
    if period <= 0:
        raise ConfigurationError(f"period must be positive, got {period}")

    def rate(t: float) -> float:
        return base_rate * (1.0 + amplitude * math.sin(2.0 * math.pi * (t + phase) / period))

    return rate


def thinned_schedule(
    app_ids: Sequence[str],
    jobs_per_app: int,
    rng: np.random.Generator,
    rate: RateFunction,
    rate_max: float,
) -> SubmissionTrace:
    """Per-app nonhomogeneous Poisson streams via Lewis–Shedler thinning.

    Each application gets an independent stream of ``jobs_per_app``
    accepted arrivals; ``rate_max`` must dominate ``rate(t)`` everywhere
    (checked at every candidate point — a violation raises rather than
    silently under-sampling the peak).
    """
    if jobs_per_app < 1:
        raise ConfigurationError(f"jobs_per_app must be >= 1, got {jobs_per_app}")
    if rate_max <= 0:
        raise ConfigurationError(f"rate_max must be positive, got {rate_max}")
    if len(set(app_ids)) != len(app_ids):
        raise ConfigurationError(f"duplicate app ids in {list(app_ids)!r}")
    events: List[SubmissionEvent] = []
    for app_id in app_ids:
        t = 0.0
        accepted = 0
        while accepted < jobs_per_app:
            t += float(rng.exponential(1.0 / rate_max))
            lam = float(rate(t))
            if lam < 0:
                raise ConfigurationError(f"rate({t:.3f}) is negative: {lam}")
            if lam > rate_max * (1.0 + 1e-9):
                raise ConfigurationError(
                    f"rate({t:.3f}) = {lam:.6g} exceeds rate_max {rate_max:.6g}; "
                    "thinning would under-sample the peak"
                )
            if rng.uniform() * rate_max < lam:
                events.append(SubmissionEvent(t, app_id, accepted))
                accepted += 1
    return SubmissionTrace(events)


def diurnal_schedule(
    app_ids: Sequence[str],
    jobs_per_app: int,
    rng: np.random.Generator,
    *,
    mean_interarrival: float = 14.0,
    amplitude: float = 0.8,
    period: float = 1200.0,
    phase: float = 0.0,
) -> SubmissionTrace:
    """The common schedule's diurnal sibling.

    ``mean_interarrival`` sets the *time-averaged* per-app rate (matching
    :func:`~repro.workload.trace.common_schedule`'s knob); the sinusoid
    swings the instantaneous rate around it, so jobs bunch in the "day"
    half of each period and thin out at "night".
    """
    if mean_interarrival <= 0:
        raise ConfigurationError(
            f"mean_interarrival must be positive, got {mean_interarrival}"
        )
    base = 1.0 / mean_interarrival
    rate = diurnal_rate(base, amplitude=amplitude, period=period, phase=phase)
    return thinned_schedule(
        app_ids, jobs_per_app, rng, rate, rate_max=base * (1.0 + amplitude)
    )
