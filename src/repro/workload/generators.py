"""Workload generators for the paper's three applications.

Each :class:`WorkloadProfile` captures the characteristics §VI-A2 describes:

* **PageRank** — graph algorithm on a slice of the 32 GB Wiki dump; 1 GB
  input per job; *iterative* (multiple shuffle rounds), so network-heavy and
  least sensitive to input-stage speedups (§VI-B).
* **WordCount** — 4–8 GB inputs; intermediate data is tiny relative to the
  input ("network-light"); one map stage plus a very short reduce.
* **Sort** — 1–8 GB inputs; shuffle volume equals input volume; compute- and
  network-heavy.

We do not process real bytes: a job's behaviour is fully determined by its
block count, per-task CPU demand and shuffle volume, which the profiles
synthesise with deterministic, seeded noise.  Input files are drawn from a
per-workload *pool* (each job reads "a subset of the dump"), so popular
files create the contended hot executors §IV-A argues about.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import IdFactory
from repro.common.units import GB, MB
from repro.hdfs.filesystem import HDFS
from repro.hdfs.namenode import FileEntry
from repro.workload.job import Job, Stage
from repro.workload.task import Task, TaskKind

__all__ = [
    "WorkloadProfile",
    "PAGERANK",
    "WORDCOUNT",
    "SORT",
    "profile_by_name",
    "JobFactory",
]


@dataclass(frozen=True)
class WorkloadProfile:
    """Static description of one workload family.

    ``cpu_secs_per_mb_*`` are the deterministic CPU demand of map/reduce
    work per MB processed; per-task noise is multiplicative lognormal with
    ``cpu_noise_sigma``.  ``shuffle_fraction`` is bytes of intermediate data
    produced per input byte *per iteration*; ``iterations`` is the number of
    shuffle rounds after the input stage (PageRank > 1).
    ``reduce_fanin`` sets the reduce-task count as a fraction of the map-task
    count (Spark defaults to fewer reducers than mappers).
    """

    name: str
    input_size_min: float
    input_size_max: float
    shuffle_fraction: float
    iterations: int
    cpu_secs_per_mb_map: float
    cpu_secs_per_mb_reduce: float
    reduce_fanin: float = 0.5
    cpu_noise_sigma: float = 0.2

    def __post_init__(self) -> None:
        if self.input_size_min <= 0 or self.input_size_max < self.input_size_min:
            raise ConfigurationError(f"{self.name}: invalid input size range")
        if self.iterations < 1:
            raise ConfigurationError(f"{self.name}: iterations must be >= 1")
        if not (0 < self.reduce_fanin <= 1):
            raise ConfigurationError(f"{self.name}: reduce_fanin must be in (0, 1]")
        if self.shuffle_fraction < 0:
            raise ConfigurationError(f"{self.name}: shuffle_fraction must be >= 0")


#: Graph workload: fixed 1 GB inputs, 5 shuffle iterations, shuffle ≈ input.
PAGERANK = WorkloadProfile(
    name="pagerank",
    input_size_min=1 * GB,
    input_size_max=1 * GB,
    shuffle_fraction=1.0,
    iterations=5,
    cpu_secs_per_mb_map=0.020,
    cpu_secs_per_mb_reduce=0.020,
)

#: Aggregation workload: 4–8 GB inputs, intermediate data ~2% of input.
WORDCOUNT = WorkloadProfile(
    name="wordcount",
    input_size_min=4 * GB,
    input_size_max=8 * GB,
    shuffle_fraction=0.02,
    iterations=1,
    cpu_secs_per_mb_map=0.015,
    cpu_secs_per_mb_reduce=0.010,
)

#: Sort: 1–8 GB inputs, shuffle volume equals input volume.
SORT = WorkloadProfile(
    name="sort",
    input_size_min=1 * GB,
    input_size_max=8 * GB,
    shuffle_fraction=1.0,
    iterations=1,
    cpu_secs_per_mb_map=0.025,
    cpu_secs_per_mb_reduce=0.025,
)

_PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p for p in (PAGERANK, WORDCOUNT, SORT)
}


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up a built-in profile ("pagerank", "wordcount", "sort")."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {sorted(_PROFILES)}"
        ) from None


class JobFactory:
    """Builds jobs of a given profile against a given HDFS instance.

    Input files are drawn from a pool of ``pool_size`` pre-ingested files per
    profile, sampled with a Zipf-like distribution (exponent
    ``popularity_skew``) so some datasets are hot — the contention scenario
    that makes inter-application coordination matter.  ``pool_size=None``
    (default) sizes the pool at half the job count.
    """

    def __init__(
        self,
        hdfs: HDFS,
        rng: np.random.Generator,
        *,
        pool_size: Optional[int] = None,
        popularity_skew: float = 1.2,
    ):
        self.hdfs = hdfs
        self.rng = rng
        self.pool_size = pool_size
        self.popularity_skew = popularity_skew
        self._ids = IdFactory(width=4)
        self._pools: Dict[str, List[FileEntry]] = {}

    # ------------------------------------------------------------------- pools
    def _pool(self, profile: WorkloadProfile, expected_jobs: int) -> List[FileEntry]:
        pool = self._pools.get(profile.name)
        if pool is not None:
            return pool
        size = self.pool_size or max(1, expected_jobs // 2)
        pool = []
        for i in range(size):
            file_size = float(
                self.rng.uniform(profile.input_size_min, profile.input_size_max)
            )
            path = f"/data/{profile.name}/part-{i:04d}"
            # Popularity rank follows the pool index (rank 0 hottest); the
            # Scarlett placement policy consumes this as a replica multiplier.
            popularity = (size / (i + 1.0)) ** 0.5 if size > 1 else 1.0
            pool.append(self.hdfs.ingest(path, file_size, popularity=popularity))
        self._pools[profile.name] = pool
        return pool

    def _draw_file(self, profile: WorkloadProfile, expected_jobs: int) -> FileEntry:
        pool = self._pool(profile, expected_jobs)
        ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
        weights = ranks**-self.popularity_skew
        weights /= weights.sum()
        return pool[int(self.rng.choice(len(pool), p=weights))]

    # -------------------------------------------------------------------- jobs
    def build_job(
        self,
        app_id: str,
        profile: WorkloadProfile,
        *,
        expected_jobs: int = 30,
        file_entry: Optional[FileEntry] = None,
        input_fraction: Optional[float] = None,
    ) -> Job:
        """Create one job: input stage over a pooled file + shuffle rounds.

        ``input_fraction`` < 1 builds a KMN-style approximation job ([10])
        that only needs that fraction of its input blocks (rounded up,
        minimum one) — the driver cancels the surplus once the quorum lands.
        """
        if input_fraction is not None and not (0.0 < input_fraction <= 1.0):
            raise ConfigurationError(
                f"input_fraction must be in (0, 1], got {input_fraction}"
            )
        entry = file_entry or self._draw_file(profile, expected_jobs)
        job_id = self._ids.next(f"job-{app_id}")
        input_tasks: List[Task] = []
        for block in entry.blocks:
            cpu = (
                profile.cpu_secs_per_mb_map
                * (block.size / MB)
                * float(self.rng.lognormal(0.0, profile.cpu_noise_sigma))
            )
            input_tasks.append(
                Task(
                    f"{job_id}/s0/t{len(input_tasks):04d}",
                    job_id=job_id,
                    app_id=app_id,
                    stage_index=0,
                    kind=TaskKind.INPUT,
                    cpu_time=cpu,
                    block=block,
                )
            )
        stages = [Stage(0, input_tasks)]
        num_maps = len(input_tasks)
        num_reduces = max(1, int(round(num_maps * profile.reduce_fanin)))
        shuffle_total = entry.size * profile.shuffle_fraction
        for it in range(1, profile.iterations + 1):
            per_task_bytes = shuffle_total / num_reduces
            tasks = []
            for t in range(num_reduces):
                cpu = (
                    profile.cpu_secs_per_mb_reduce
                    * (per_task_bytes / MB)
                    * float(self.rng.lognormal(0.0, profile.cpu_noise_sigma))
                )
                tasks.append(
                    Task(
                        f"{job_id}/s{it}/t{t:04d}",
                        job_id=job_id,
                        app_id=app_id,
                        stage_index=it,
                        kind=TaskKind.SHUFFLE,
                        cpu_time=cpu,
                        shuffle_bytes=per_task_bytes,
                    )
                )
            stages.append(Stage(it, tasks))
        required = None
        if input_fraction is not None and input_fraction < 1.0:
            required = max(1, math.ceil(input_fraction * num_maps))
        return Job(
            job_id, app_id, stages, workload=profile.name, required_inputs=required
        )
