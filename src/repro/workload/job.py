"""Job and Stage: the DAG a user request compiles into.

A job is a linear chain of stages (sufficient for the paper's three
workloads: map → [shuffle]*; PageRank's iterations become successive shuffle
stages).  Stage *k+1* becomes runnable when every task of stage *k* has
finished — the synchronous stage barrier of the BSP execution model, and the
reason a single straggler delays the whole job (§III-C).
"""

from __future__ import annotations

from typing import List, Optional

from repro.workload.task import Task, TaskKind

__all__ = ["Job", "Stage"]


class Stage:
    """A set of independent tasks with a barrier at the end."""

    def __init__(self, index: int, tasks: List[Task]):
        if not tasks:
            raise ValueError(f"stage {index} has no tasks")
        self.index = index
        self.tasks = tasks

    @property
    def is_input_stage(self) -> bool:
        """True when every task reads an HDFS block."""
        return all(t.kind is TaskKind.INPUT for t in self.tasks)

    @property
    def finished(self) -> bool:
        """True once every task has completed or been cancelled (KMN)."""
        return all(t.finished or t.cancelled for t in self.tasks) and any(
            t.finished for t in self.tasks
        )

    @property
    def finish_time(self) -> Optional[float]:
        """Barrier time: the last non-cancelled task's completion."""
        if not self.finished:
            return None
        return max(t.finished_at for t in self.tasks if t.finished_at is not None)

    @property
    def start_time(self) -> Optional[float]:
        """Earliest task launch in the stage."""
        starts = [t.started_at for t in self.tasks if t.started_at is not None]
        return min(starts) if starts else None

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "input" if self.is_input_stage else "shuffle"
        return f"<Stage {self.index} {kind} tasks={len(self.tasks)}>"


class Job:
    """A user request: a chain of stages, submitted at a point in time.

    ``required_inputs`` enables KMN-style approximation analytics ([10] in
    the paper): the input stage completes once any *K* of its N tasks have
    finished and the rest are cancelled.  None (default) requires all.
    """

    def __init__(
        self,
        job_id: str,
        app_id: str,
        stages: List[Stage],
        *,
        workload: str = "",
        required_inputs: Optional[int] = None,
    ):
        if not stages:
            raise ValueError(f"job {job_id} has no stages")
        if not stages[0].is_input_stage:
            raise ValueError(f"job {job_id}: stage 0 must be the input stage")
        if required_inputs is not None and not (
            1 <= required_inputs <= len(stages[0].tasks)
        ):
            raise ValueError(
                f"job {job_id}: required_inputs={required_inputs} out of range "
                f"[1, {len(stages[0].tasks)}]"
            )
        self.job_id = job_id
        self.app_id = app_id
        self.stages = stages
        self.workload = workload
        self.required_inputs = required_inputs
        self.submitted_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        # Live locality counters mirroring :attr:`is_local_job`'s scan.
        # Maintained through :meth:`note_input_decided` (the driver calls it
        # once per decided input task) so the manager's incremental demand
        # index reads job locality in O(1) instead of rescanning all tasks.
        self._decided_inputs = 0
        self._local_inputs = 0
        self._counted_local: Optional[bool] = None

    # -------------------------------------------------------------- structure
    @property
    def input_stage(self) -> Stage:
        """The first stage (one task per HDFS block)."""
        return self.stages[0]

    @property
    def input_tasks(self) -> List[Task]:
        """All input tasks — the µ_ij tasks of the paper's formulation."""
        return list(self.input_stage.tasks)

    @property
    def all_tasks(self) -> List[Task]:
        """Every task in every stage."""
        return [t for stage in self.stages for t in stage.tasks]

    @property
    def num_input_tasks(self) -> int:
        """µ_ij — the job's input-task count."""
        return len(self.input_stage.tasks)

    @property
    def input_quorum(self) -> int:
        """Input tasks that must finish for the stage barrier (K of N)."""
        return self.required_inputs or self.num_input_tasks

    # ---------------------------------------------------------------- locality
    @property
    def unsatisfied_input_tasks(self) -> List[Task]:
        """Input tasks not yet guaranteed locality (Algorithm 2's sort key).

        Before execution this is "tasks without a promised local executor";
        the allocator tracks promises separately, so here it means input
        tasks that have not yet *run locally* — used for post-hoc accounting.
        """
        return [t for t in self.input_tasks if t.was_local is not True]

    @property
    def local_input_fraction(self) -> Optional[float]:
        """Fraction of finished input tasks that ran locally (None if unrun)."""
        done = [t for t in self.input_tasks if t.was_local is not None]
        if not done:
            return None
        return sum(1 for t in done if t.was_local) / len(done)

    @property
    def is_local_job(self) -> Optional[bool]:
        """U_ij — True when *every counted* input task achieved locality.

        For a full job that is all N input tasks (§III-C).  For a KMN job
        (``required_inputs`` = K) the job is local when at least K input
        tasks ran locally — the remaining tasks were cancelled by design.
        """
        decided = [t for t in self.input_tasks if t.was_local is not None]
        if self.required_inputs is not None:
            if len(decided) < self.required_inputs:
                return None
            return sum(1 for t in decided if t.was_local) >= self.required_inputs
        if len(decided) < self.num_input_tasks:
            return None
        return all(t.was_local for t in decided)

    @property
    def counted_local_state(self) -> Optional[bool]:
        """O(1) view of :attr:`is_local_job` from the live counters.

        Equals the scanning property whenever every locality decision went
        through :meth:`note_input_decided`; the incremental allocation
        engine reads this instead of rescanning ``input_tasks``.
        """
        return self._counted_local

    def note_input_decided(self, was_local: bool) -> "tuple[int, int]":
        """Record one input task's locality outcome; return the job deltas.

        Returns ``(d_decided_jobs, d_local_jobs)`` — how this decision moved
        the job between the undecided/decided and non-local/local states.  A
        KMN job can flip False→True after quorum (more of its N tasks decide
        locally), which is why the transition is computed from the
        before/after counter state rather than assumed monotone.
        """
        before = self._counted_local
        self._decided_inputs += 1
        if was_local:
            self._local_inputs += 1
        after = self._local_state_from_counts()
        self._counted_local = after
        d_decided = int(after is not None) - int(before is not None)
        d_local = int(after is True) - int(before is True)
        return d_decided, d_local

    def _local_state_from_counts(self) -> Optional[bool]:
        """Counter-based mirror of :attr:`is_local_job`'s decision rule."""
        if self.required_inputs is not None:
            if self._decided_inputs < self.required_inputs:
                return None
            return self._local_inputs >= self.required_inputs
        if self._decided_inputs < self.num_input_tasks:
            return None
        return self._local_inputs == self._decided_inputs

    # ------------------------------------------------------------------ timing
    @property
    def finished(self) -> bool:
        """True when all stages are complete."""
        return self.finished_at is not None

    @property
    def completion_time(self) -> Optional[float]:
        """Submission-to-finish duration — the paper's JCT metric (Fig. 8)."""
        if self.submitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def input_stage_time(self) -> Optional[float]:
        """Input-stage start-to-barrier duration — Fig. 9's metric."""
        stage = self.input_stage
        if stage.start_time is None or stage.finish_time is None:
            return None
        return stage.finish_time - stage.start_time

    def reset_runtime(self) -> None:
        """Clear all runtime state for replay under a different policy."""
        self.submitted_at = None
        self.finished_at = None
        self._decided_inputs = 0
        self._local_inputs = 0
        self._counted_local = None
        for task in self.all_tasks:
            task.reset_runtime()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Job {self.job_id} app={self.app_id} stages={len(self.stages)} "
            f"inputs={self.num_input_tasks}>"
        )
